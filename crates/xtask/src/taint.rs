//! Rule **T1** — interprocedural determinism taint.
//!
//! Input: the per-function summaries and call sites harvested by
//! [`crate::callgraph`], plus the manifest DAG. Output: every call
//! chain by which a nondeterminism *source* (env read, wall clock,
//! thread-width query, pointer-address cast, hash iteration, entropy)
//! can reach a *sink* in a simulation crate (a write through `self`,
//! or an output/digest emission) — each rendered as an explicit
//! source→sink witness for the text report, the `titan-lint/4`
//! `t1_paths` JSON array, and SARIF `codeFlows`.
//!
//! The propagation is a fixed point over the call graph: a function is
//! tainted when its body reads a source directly, or when it calls a
//! tainted function through an unhatched call site. Each tainted
//! function keeps its best witness chain — shortest first, then
//! lexicographically smallest by (fn path, line) — so reruns and
//! shuffled file orders produce byte-identical reports. Chains only
//! ever improve in that well-founded order, so the loop terminates;
//! the pass bound is the classic Bellman–Ford `n` rounds.
//!
//! Site-level overlap: D1/D2/D5 already flag wall-clock, entropy, and
//! hash containers *inside* sim/engine scope, so T1 reports those
//! kinds only when laundered across a call boundary. Env reads,
//! thread-width queries, and pointer-address casts have no site rule
//! and are reported intra-function too.

use std::collections::BTreeMap;

use crate::callgraph::{FnDecl, SinkKind, SourceKind};
use crate::layering::CrateManifest;
use crate::symbols::{self, Callable, CallableIndex};

/// One hop of a T1 witness chain, source→sink order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1Step {
    /// Fully-qualified fn path (`titan_sim::engine::Engine::step`).
    pub path: String,
    /// Workspace-relative file of the fn.
    pub file: String,
    /// 1-based line: the source read for the first step, the call site
    /// into the previous step's fn for intermediate steps, and the sink
    /// statement for the last step.
    pub line: usize,
}

/// One complete source→sink taint path.
#[derive(Debug, Clone)]
pub struct T1Path {
    /// The sink-holding fn.
    pub sink_fn: String,
    /// Its file — where the finding anchors.
    pub file: String,
    /// Anchor line in `file`: the call site importing the taint, or the
    /// source read itself for an intra-fn path.
    pub line: usize,
    /// Package the sink fn lives in (the `[t1]` ratchet key).
    pub crate_name: String,
    pub sink_kind: SinkKind,
    /// Line of the representative sink statement in `file`.
    pub sink_line: usize,
    pub source_kind: SourceKind,
    /// The source read as written (`env::var("TITAN_NUM_THREADS")`).
    pub source_desc: String,
    pub source_file: String,
    pub source_line: usize,
    /// The full witness, source read → ... → sink statement.
    pub steps: Vec<T1Step>,
}

/// The message a T1 path reports. Shared by the finding text and the
/// SARIF layer (which rematches findings to paths by (file, line,
/// message) to attach `codeFlows`).
pub fn t1_message(p: &T1Path) -> String {
    let mut chain = String::new();
    let mut last = "";
    for s in &p.steps {
        if s.path != last {
            if !chain.is_empty() {
                chain.push_str(" -> ");
            }
            chain.push_str(&s.path);
            last = &s.path;
        }
    }
    format!(
        "nondeterministic {} `{}` ({}:{}) reaches {} at line {} via {}",
        p.source_kind.as_str(),
        p.source_desc,
        p.source_file,
        p.source_line,
        p.sink_kind.as_str(),
        p.sink_line,
        chain
    )
}

/// A tainted fn's witness: source→…→self, as (fn index, line) hops.
type Chain = Vec<(usize, usize)>;

/// Runs the analysis: returns every T1 path (sorted by file, line,
/// sink fn, then message) and the per-package path counts for every
/// package that owns at least one harvested fn.
pub fn analyze(
    fns: &[FnDecl],
    manifests: &[CrateManifest],
) -> (Vec<T1Path>, BTreeMap<String, usize>) {
    // Input order must not matter: sort the graph nodes first.
    let mut fns: Vec<FnDecl> = fns.to_vec();
    fns.sort_by(|a, b| {
        (a.path.as_str(), a.file.as_str(), a.line)
            .cmp(&(b.path.as_str(), b.file.as_str(), b.line))
    });

    let index = CallableIndex::new(
        fns.iter()
            .map(|f| Callable {
                path: f.path.clone(),
                name: f.name.clone(),
                owner: f.owner.clone(),
                pkg: f.pkg.clone(),
            })
            .collect(),
    );
    let reach = symbols::reachable(manifests);

    // Resolve call sites to edges caller → callee.
    struct Edge {
        callee: usize,
        line: usize,
        hatched: bool,
    }
    let edges: Vec<Vec<Edge>> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut out: Vec<Edge> = Vec::new();
            for c in &f.calls {
                for callee in
                    index.resolve(&f.pkg, f.owner.as_deref(), &c.name, &c.quals, c.method, &reach)
                {
                    if callee == i {
                        continue; // recursion adds no new taint
                    }
                    if !out.iter().any(|e| {
                        e.callee == callee && e.line == c.line && e.hatched == c.hatched
                    }) {
                        out.push(Edge { callee, line: c.line, hatched: c.hatched });
                    }
                }
            }
            out.sort_by_key(|e| (e.line, e.callee));
            out
        })
        .collect();

    // Seed: a fn with a direct source is tainted with a one-step chain.
    // The representative source is the earliest (line, kind) read.
    let best_source: Vec<Option<usize>> = fns
        .iter()
        .map(|f| {
            (0..f.sources.len())
                .min_by_key(|&s| (f.sources[s].line, f.sources[s].kind))
        })
        .collect();
    let mut chains: Vec<Option<Chain>> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| best_source[i].map(|s| vec![(i, f.sources[s].line)]))
        .collect();

    // `a` is a better witness than `b`: shorter, then lexicographically
    // smaller by (fn path, line) per hop.
    let better = |a: &Chain, b: &Chain| -> bool {
        let key = |c: &Chain| -> Vec<(&str, usize)> {
            c.iter().map(|&(i, l)| (fns[i].path.as_str(), l)).collect()
        };
        (a.len(), key(a)) < (b.len(), key(b))
    };

    // Fixed point: relax every unhatched edge until nothing improves.
    for _round in 0..=fns.len() {
        let mut changed = false;
        for i in 0..fns.len() {
            for e in &edges[i] {
                if e.hatched {
                    continue;
                }
                let Some(callee_chain) = chains[e.callee].clone() else { continue };
                let mut cand = callee_chain;
                cand.push((i, e.line));
                if chains[i].as_ref().is_none_or(|cur| better(&cand, cur)) {
                    chains[i] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Findings: sim-scope fns that hold a sink.
    let mut paths: Vec<T1Path> = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if !f.sim_scope || f.sinks.is_empty() {
            continue;
        }
        let sink = f
            .sinks
            .iter()
            .min_by_key(|s| (s.line, s.kind))
            .expect("non-empty");
        let emit = |paths: &mut Vec<T1Path>, chain: &Chain, anchor: usize| {
            let (src_fn, src_line) = chain[0];
            let Some(s) = best_source[src_fn] else { return };
            let src = &fns[src_fn].sources[s];
            debug_assert_eq!(src.line, src_line);
            let mut steps: Vec<T1Step> = chain
                .iter()
                .map(|&(k, l)| T1Step {
                    path: fns[k].path.clone(),
                    file: fns[k].file.clone(),
                    line: l,
                })
                .collect();
            steps.push(T1Step { path: f.path.clone(), file: f.file.clone(), line: sink.line });
            paths.push(T1Path {
                sink_fn: f.path.clone(),
                file: f.file.clone(),
                line: anchor,
                crate_name: f.pkg.clone(),
                sink_kind: sink.kind,
                sink_line: sink.line,
                source_kind: src.kind,
                source_desc: src.desc.clone(),
                source_file: fns[src_fn].file.clone(),
                source_line: src.line,
                steps,
            });
        };

        // Intra-fn: only the kinds no site rule covers — D1/D2/D5
        // already police the others inside sim/engine scope.
        let mut kinds_done: Vec<SourceKind> = Vec::new();
        for (s, src) in f.sources.iter().enumerate() {
            if src.kind.site_rule_covered() || kinds_done.contains(&src.kind) {
                continue;
            }
            kinds_done.push(src.kind);
            // A one-hop chain rooted at this specific source.
            let chain = vec![(i, src.line)];
            let (src_fn, _) = chain[0];
            if best_source[src_fn] == Some(s) {
                emit(&mut paths, &chain, src.line);
            } else {
                // Not the representative source: build the path by hand
                // so each uncovered kind still gets one witness.
                let steps = vec![
                    T1Step { path: f.path.clone(), file: f.file.clone(), line: src.line },
                    T1Step { path: f.path.clone(), file: f.file.clone(), line: sink.line },
                ];
                paths.push(T1Path {
                    sink_fn: f.path.clone(),
                    file: f.file.clone(),
                    line: src.line,
                    crate_name: f.pkg.clone(),
                    sink_kind: sink.kind,
                    sink_line: sink.line,
                    source_kind: src.kind,
                    source_desc: src.desc.clone(),
                    source_file: f.file.clone(),
                    source_line: src.line,
                    steps,
                });
            }
        }

        // Interprocedural: one path per distinct tainted callee, at its
        // lowest call line (edges are line-sorted already).
        let mut callees_done: Vec<usize> = Vec::new();
        for e in &edges[i] {
            if e.hatched || callees_done.contains(&e.callee) {
                continue;
            }
            let Some(callee_chain) = &chains[e.callee] else { continue };
            callees_done.push(e.callee);
            let mut chain = callee_chain.clone();
            chain.push((i, e.line));
            emit(&mut paths, &chain, e.line);
        }
    }

    paths.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.sink_fn.as_str(), t1_message(a))
            .cmp(&(b.file.as_str(), b.line, b.sink_fn.as_str(), t1_message(b)))
    });

    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in &fns {
        if f.sim_scope {
            counts.entry(f.pkg.clone()).or_insert(0);
        }
    }
    for p in &paths {
        *counts.entry(p.crate_name.clone()).or_insert(0) += 1;
    }
    (paths, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::harvest_file;
    use crate::layering::parse_manifest;

    fn manifests() -> Vec<CrateManifest> {
        vec![
            parse_manifest(
                "stats",
                "crates/stats/Cargo.toml",
                "[package]\nname = \"fix-stats\"\n[dependencies]\n",
            ),
            parse_manifest(
                "simulator",
                "crates/simulator/Cargo.toml",
                "[package]\nname = \"fix-sim\"\n[dependencies]\nfix-stats = {}\n",
            ),
        ]
    }

    fn stats_fns(src: &str) -> Vec<FnDecl> {
        harvest_file("crates/stats/src/lib.rs", src, "fix_stats", "fix-stats", false)
    }

    fn sim_fns(src: &str) -> Vec<FnDecl> {
        harvest_file("crates/simulator/src/lib.rs", src, "fix_sim", "fix-sim", true)
    }

    #[test]
    fn two_helper_laundering_is_flagged_with_the_full_chain() {
        // The ISSUE 9 acceptance case: env read in another crate,
        // laundered through two helpers, written into sim state.
        let mut fns = stats_fns(
            "pub fn host_width_raw() -> usize {\n\
                 std::env::var(\"TITAN_NUM_THREADS\").map(|v| v.len()).unwrap_or(1)\n\
             }\n",
        );
        fns.extend(sim_fns(
            "fn width_hint() -> usize { fix_stats::host_width_raw() }\n\
             fn clamp_hint() -> usize { width_hint().min(64) }\n\
             pub struct Engine { width: usize }\n\
             impl Engine {\n\
                 pub fn apply_hint(&mut self) { self.width = clamp_hint(); }\n\
             }\n",
        ));
        let (paths, counts) = analyze(&fns, &manifests());
        assert_eq!(paths.len(), 1, "{paths:?}");
        let p = &paths[0];
        assert_eq!(p.sink_fn, "fix_sim::Engine::apply_hint");
        assert_eq!(p.source_kind, SourceKind::EnvRead);
        assert_eq!(p.source_desc, "env::var(\"TITAN_NUM_THREADS\")");
        assert_eq!(p.source_file, "crates/stats/src/lib.rs");
        let hops: Vec<&str> = p.steps.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            hops,
            vec![
                "fix_stats::host_width_raw",
                "fix_sim::width_hint",
                "fix_sim::clamp_hint",
                "fix_sim::Engine::apply_hint",
                "fix_sim::Engine::apply_hint", // sink statement
            ]
        );
        assert_eq!(counts["fix-sim"], 1);
        let msg = t1_message(p);
        assert!(msg.contains("env read"), "{msg}");
        assert!(msg.contains("fix_stats::host_width_raw -> fix_sim::width_hint"), "{msg}");
    }

    #[test]
    fn clean_chain_and_sink_free_taint_are_quiet() {
        let mut fns = stats_fns("pub fn fixed_width() -> usize { 8 }\n");
        fns.extend(sim_fns(
            "pub struct Engine { width: usize }\n\
             impl Engine {\n\
                 pub fn apply(&mut self) { self.width = fix_stats::fixed_width(); }\n\
             }\n\
             pub fn peek() -> usize { fix_stats::fixed_width() }\n",
        ));
        let (paths, counts) = analyze(&fns, &manifests());
        assert!(paths.is_empty(), "{paths:?}");
        assert_eq!(counts["fix-sim"], 0, "sim packages report zero explicitly");
    }

    #[test]
    fn call_site_hatch_severs_the_chain() {
        let mut fns = stats_fns(
            "pub fn host_width_raw() -> usize {\n\
                 std::env::var(\"W\").map(|v| v.len()).unwrap_or(1)\n\
             }\n",
        );
        fns.extend(sim_fns(
            "pub struct Engine { width: usize }\n\
             impl Engine {\n\
                 pub fn apply(&mut self) {\n\
                     // lint: allow(T1, clamped to the deterministic pool cap)\n\
                     self.width = fix_stats::host_width_raw();\n\
                 }\n\
             }\n",
        ));
        let (paths, _) = analyze(&fns, &manifests());
        assert!(paths.is_empty(), "{paths:?}");
    }

    #[test]
    fn intra_fn_env_read_is_reported_but_covered_kinds_are_not() {
        // env has no site rule: intra-fn T1. Entropy is D1's job.
        let fns = sim_fns(
            "pub struct Engine { width: usize, jitter: u64 }\n\
             impl Engine {\n\
                 pub fn tune(&mut self) {\n\
                     self.width = std::env::var(\"W\").map(|v| v.len()).unwrap_or(1);\n\
                 }\n\
                 pub fn shake(&mut self) { self.jitter = thread_rng().next_u64(); }\n\
             }\n",
        );
        let (paths, _) = analyze(&fns, &manifests());
        assert_eq!(paths.len(), 1, "{paths:?}");
        assert_eq!(paths[0].sink_fn, "fix_sim::Engine::tune");
        assert_eq!(paths[0].source_kind, SourceKind::EnvRead);
        assert_eq!(paths[0].steps.len(), 2);
    }

    #[test]
    fn analysis_crate_sources_taint_but_its_own_sinks_do_not_fire() {
        // A println in fix-stats is not a sim sink; the taint still
        // propagates upward into fix-sim.
        let mut fns = stats_fns(
            "pub fn stamp() -> u64 {\n\
                 let t = Instant::now();\n\
                 println!(\"at {t:?}\");\n\
                 7\n\
             }\n",
        );
        fns.extend(sim_fns(
            "pub struct Engine { t0: u64 }\n\
             impl Engine {\n\
                 pub fn mark(&mut self) { self.t0 = fix_stats::stamp(); }\n\
             }\n",
        ));
        let (paths, _) = analyze(&fns, &manifests());
        assert_eq!(paths.len(), 1, "{paths:?}");
        assert_eq!(paths[0].sink_fn, "fix_sim::Engine::mark");
        assert_eq!(paths[0].source_kind, SourceKind::WallClock);
    }

    #[test]
    fn taint_respects_the_dependency_direction() {
        // fix-stats cannot see fix-sim: a tainted fn named like a sim
        // helper must not create a downward edge.
        let mut fns = stats_fns(
            "pub fn helper() -> usize { std::env::var(\"W\").map(|v| v.len()).unwrap_or(0) }\n",
        );
        fns.extend(sim_fns(
            "pub fn helper() -> usize { 3 }\n\
             pub struct Engine { w: usize }\n\
             impl Engine {\n\
                 pub fn set(&mut self) { self.w = helper(); }\n\
             }\n",
        ));
        // `helper()` in fix-sim is a bare call: both the local clean fn
        // and the visible tainted fix-stats fn are candidates — the
        // over-approximation keeps the tainted one, so this *does*
        // fire. Restricting with a qualifier is the reviewed fix.
        let (paths, _) = analyze(&fns, &manifests());
        assert_eq!(paths.len(), 1);

        // Qualifying the call pins it to the clean local fn.
        let mut fns = stats_fns(
            "pub fn helper() -> usize { std::env::var(\"W\").map(|v| v.len()).unwrap_or(0) }\n",
        );
        fns.extend(sim_fns(
            "pub mod hints { pub fn helper() -> usize { 3 } }\n\
             pub struct Engine { w: usize }\n\
             impl Engine {\n\
                 pub fn set(&mut self) { self.w = hints::helper(); }\n\
             }\n",
        ));
        let (paths, _) = analyze(&fns, &manifests());
        assert!(paths.is_empty(), "{paths:?}");
    }

    #[test]
    fn output_is_independent_of_input_order() {
        let stats = stats_fns(
            "pub fn host_width_raw() -> usize {\n\
                 std::env::var(\"W\").map(|v| v.len()).unwrap_or(1)\n\
             }\n",
        );
        let sim = sim_fns(
            "fn width_hint() -> usize { fix_stats::host_width_raw() }\n\
             pub struct Engine { width: usize }\n\
             impl Engine {\n\
                 pub fn apply(&mut self) { self.width = width_hint(); }\n\
             }\n",
        );
        let mut fwd = stats.clone();
        fwd.extend(sim.clone());
        let mut rev = sim;
        rev.extend(stats);
        let (p1, c1) = analyze(&fwd, &manifests());
        let (p2, c2) = analyze(&rev, &manifests());
        let m1: Vec<String> = p1.iter().map(t1_message).collect();
        let m2: Vec<String> = p2.iter().map(t1_message).collect();
        assert_eq!(m1, m2);
        assert_eq!(c1, c2);
        assert_eq!(p1.len(), 1);
    }
}
