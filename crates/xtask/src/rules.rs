//! The structural rules: **P2** (per-function panic-surface ratchet),
//! **E1** (swallowed fallible results in sim crates), **D6** (RNG
//! draws in evaluation-order-unstable positions), plus the per-file
//! symbol harvest the **X1** dead-pub analysis in [`crate::symbols`]
//! consumes.
//!
//! All of them work over the [`crate::parser`] item tree instead of
//! raw token lines — the point of titan-lint v3. Token matching can
//! say "there is an `.unwrap()` on line 40"; only the tree can say it
//! belongs to `titan_sim::engine::Engine::run`, that a `.gen_range(`
//! sits *inside* a `sort_by` comparator, or that `pub fn retire_page`
//! is referenced by nothing the dependency DAG can reach.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, TokKind};
use crate::parser::{self, Item, ItemKind};
use crate::symbols::PubItem;
use crate::{hatch_lines, Finding, HatchLine, Rule};

/// Calls whose closure argument runs in an order/count the replay
/// contract does not pin: comparator-driven sorts/searches, retain and
/// dedup sweeps. A seeded draw inside one makes the RNG stream depend
/// on std's comparison schedule (rule D6).
pub const UNSTABLE_CTX: &[&str] = &[
    "binary_search_by",
    "binary_search_by_key",
    "dedup_by",
    "dedup_by_key",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "retain",
    "retain_mut",
    "sort_by",
    "sort_by_cached_key",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Draw methods of the vendored rand API (and the `RngStreams`
/// wrappers): any of these advances a seeded stream.
pub const DRAW_METHODS: &[&str] = &[
    "fill_bytes", "gen", "gen_bool", "gen_range", "next_u32", "next_u64", "sample",
];

/// Keywords that cannot be the *base* of an index expression — a `[`
/// after one of these opens a slice pattern, an array type, or an
/// array literal, not an indexing site.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// A statement-position call whose result is discarded (`foo(x);`,
/// `sim.step(dt);`). Only becomes an E1 finding when the callee is a
/// workspace `#[must_use]` sim API — that join happens in
/// [`crate::run_lint`], after every crate's APIs are collected.
#[derive(Debug, Clone)]
pub struct Discard {
    pub file: String,
    pub line: usize,
    /// The callee's unqualified name (`step`, not `Engine::step`).
    pub name: String,
}

/// Result of the structural scan of one file.
#[derive(Debug, Default)]
pub struct StructScan {
    /// Fully-qualified fn path → unhatched panic-surface site count
    /// (`.unwrap()`, `.expect(`, `panic!`, indexing). Non-test only.
    pub p2: BTreeMap<String, usize>,
    /// E1 (`let _ =` / bare `.ok();`) and D6 findings.
    pub findings: Vec<Finding>,
    /// E1 discarded-call candidates (sim scope, non-test, unhatched).
    pub discards: Vec<Discard>,
    /// `pub` items eligible for the X1 dead-pub analysis.
    pub pub_items: Vec<PubItem>,
    /// Names of `#[must_use]` fns (sim scope only).
    pub must_use_fns: BTreeSet<String>,
    /// Every code identifier in the file → occurrence count (feeds the
    /// X1 reference graph; test modules count as references).
    pub ident_counts: BTreeMap<String, usize>,
}

/// One attributable code region: a fn / const / static item's full
/// span. Regions never overlap — nested named fns are not split out by
/// the parser, and closures stay with their enclosing fn.
struct Region {
    start: usize,
    end: usize,
    path: String,
    cfg_test: bool,
}

/// Runs the structural rules over one file. `module_prefix` is the
/// [`crate::module_prefix`] of the file; inline `mod`s extend it.
pub fn scan_structure(
    rel: &str,
    src: &str,
    module_prefix: &str,
    sim_scope: bool,
    engine_scope: bool,
) -> StructScan {
    let toks = lex(src);
    let code: Vec<Tok> = toks.iter().filter(|t| !t.kind.is_trivia()).copied().collect();
    let items = parser::parse(src, &toks);
    let hatches = hatch_lines(src, &toks);
    let mut out = StructScan::default();

    // Symbol harvest: identifier counts, pub items, must_use APIs.
    for t in &code {
        if t.kind == TokKind::Ident {
            *out.ident_counts.entry(t.text(src).to_string()).or_insert(0) += 1;
        }
    }
    let mut regions = Vec::new();
    harvest(
        &items,
        module_prefix,
        rel,
        src,
        &code,
        &hatches,
        sim_scope,
        &mut regions,
        &mut out,
    );

    // P2: panic-surface sites attributed to their innermost region.
    scan_p2(src, &code, &regions, &hatches, &mut out.p2);

    // E1 legs (a), (b), and discard candidates for leg (c).
    if sim_scope {
        scan_e1(rel, src, &code, &regions, &hatches, &mut out);
    }

    // D6: draws in unstable-evaluation-order positions.
    if engine_scope {
        scan_d6(rel, src, &code, &items, &hatches, &mut out.findings);
    }

    out
}

fn allow(hatches: &[HatchLine], line: usize, rule: &str) -> bool {
    line >= 1
        && hatches
            .get(line - 1)
            .is_some_and(|h| h.allows.iter().any(|r| r == rule))
}

fn join(prefix: &str, name: &str) -> String {
    if name.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{name}")
    }
}

/// Walks the item tree once collecting P2 regions, X1 pub items, and
/// `#[must_use]` API names.
#[allow(clippy::too_many_arguments)]
fn harvest(
    items: &[Item],
    prefix: &str,
    rel: &str,
    src: &str,
    code: &[Tok],
    hatches: &[HatchLine],
    sim_scope: bool,
    regions: &mut Vec<Region>,
    out: &mut StructScan,
) {
    for it in items {
        // X1 candidates: plain-`pub` named definitions. `use`/`mod`
        // re-exports and impls are references, not definitions; `main`
        // and test-gated items are alive by construction.
        let x1_kind = matches!(
            it.kind,
            ItemKind::Fn
                | ItemKind::Struct
                | ItemKind::Enum
                | ItemKind::Union
                | ItemKind::Const
                | ItemKind::Static
                | ItemKind::TypeAlias
                | ItemKind::Trait
        );
        if it.vis_pub
            && !it.cfg_test
            && x1_kind
            && !it.name.is_empty()
            && it.name != "main"
            && !allow(hatches, it.line, "X1")
        {
            let self_refs = code
                .iter()
                .filter(|t| {
                    t.kind == TokKind::Ident
                        && t.start >= it.start
                        && t.end <= it.end
                        && t.text(src) == it.name
                })
                .count();
            out.pub_items.push(PubItem {
                file: rel.to_string(),
                line: it.line,
                path: join(prefix, &it.name),
                name: it.name.clone(),
                self_refs,
            });
        }
        if sim_scope && it.must_use && it.kind == ItemKind::Fn && !it.cfg_test {
            out.must_use_fns.insert(it.name.clone());
        }
        match it.kind {
            ItemKind::Fn | ItemKind::Const | ItemKind::Static => {
                regions.push(Region {
                    start: it.start,
                    end: it.end,
                    path: join(prefix, &it.name),
                    cfg_test: it.cfg_test,
                });
                // Closure children need no recursion here: their spans
                // lie inside this region and attribute to it.
            }
            ItemKind::Module | ItemKind::Impl | ItemKind::Trait => {
                let nested = join(prefix, &it.name);
                harvest(
                    &it.children,
                    &nested,
                    rel,
                    src,
                    code,
                    hatches,
                    sim_scope,
                    regions,
                    out,
                );
            }
            _ => {}
        }
    }
}

/// The innermost (only, since regions never overlap) region containing
/// byte `pos`.
fn region_at<'a>(regions: &'a [Region], pos: usize) -> Option<&'a Region> {
    regions.iter().find(|r| r.start <= pos && pos < r.end)
}

/// Counts P2 sites: `.unwrap()`, `.expect(`, `panic!`, and indexing
/// (`expr[...]` — a `[` whose base is an identifier, `)`, or `]`).
fn scan_p2(
    src: &str,
    code: &[Tok],
    regions: &[Region],
    hatches: &[HatchLine],
    p2: &mut BTreeMap<String, usize>,
) {
    let text = |i: usize| -> &str { code.get(i).map(|t| t.text(src)).unwrap_or("") };
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        let advance = if text(i) == "."
            && text(i + 1) == "unwrap"
            && text(i + 2) == "("
            && text(i + 3) == ")"
        {
            Some(4)
        } else if text(i) == "." && text(i + 1) == "expect" && text(i + 2) == "(" {
            Some(3)
        } else if t.kind == TokKind::Ident && text(i) == "panic" && text(i + 1) == "!" {
            Some(2)
        } else if text(i) == "[" && i > 0 && is_index_base(src, &code[i - 1]) {
            Some(1)
        } else {
            None
        };
        match advance {
            Some(adv) => {
                if !allow(hatches, t.line, "P2") {
                    if let Some(r) = region_at(regions, t.start) {
                        if !r.cfg_test {
                            *p2.entry(r.path.clone()).or_insert(0) += 1;
                        }
                    }
                }
                i += adv;
            }
            None => i += 1,
        }
    }
}

/// True when a `[` directly after this token opens an *index*
/// expression rather than a slice pattern / array type / literal.
fn is_index_base(src: &str, prev: &Tok) -> bool {
    match prev.kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(src)),
        TokKind::Punct => matches!(prev.text(src), ")" | "]"),
        _ => false,
    }
}

/// E1 legs (a) `let _ = expr;` and (b) bare `.ok();`, plus the
/// discarded-call candidates for leg (c).
fn scan_e1(
    rel: &str,
    src: &str,
    code: &[Tok],
    regions: &[Region],
    hatches: &[HatchLine],
    out: &mut StructScan,
) {
    let text = |i: usize| -> &str { code.get(i).map(|t| t.text(src)).unwrap_or("") };
    let in_live_region =
        |pos: usize| region_at(regions, pos).is_some_and(|r| !r.cfg_test);

    for i in 0..code.len() {
        let t = &code[i];
        // (a) `let _ = expr;` — except the idiomatic infallible
        // fmt-buffer writes (`let _ = write!(buf, ...)`): the
        // workspace's io writes live above the engine, so a write!
        // target here is a String.
        if t.kind == TokKind::Ident
            && text(i) == "let"
            && text(i + 1) == "_"
            && text(i + 2) == "="
        {
            let fmt_write = matches!(text(i + 3), "write" | "writeln") && text(i + 4) == "!";
            if !fmt_write && in_live_region(t.start) && !allow(hatches, t.line, "E1") {
                out.findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: Rule::E1,
                    message: "`let _ = ...` swallows a fallible outcome in simulation code"
                        .to_string(),
                    hint: "handle the Err (propagate with `?` or match on it) or justify \
                           with `// lint: allow(E1, reason)`; fmt-buffer `write!` is exempt"
                        .to_string(),
                });
            }
        }
        // (b) a statement that *ends* in `.ok();` with nothing binding
        // it: the error is dropped and the success value unread.
        if text(i) == "."
            && text(i + 1) == "ok"
            && text(i + 2) == "("
            && text(i + 3) == ")"
            && text(i + 4) == ";"
            && statement_discards(src, code, i)
            && in_live_region(t.start)
            && !allow(hatches, t.line, "E1")
        {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: Rule::E1,
                message: "bare `.ok();` drops an error without reading the success value"
                    .to_string(),
                hint: "if the error is impossible, unwrap it where the invariant lives; \
                       otherwise handle or log it — or justify with \
                       `// lint: allow(E1, reason)`"
                    .to_string(),
            });
        }
        // (c) candidates: `name(...);` / `recv.name(...);` in statement
        // position. The must_use join happens in run_lint.
        if text(i) == ";" && i >= 1 && text(i - 1) == ")" {
            if let Some((name_idx, name)) = call_name(src, code, i - 1) {
                if statement_discards(src, code, name_idx)
                    && in_live_region(code[name_idx].start)
                    && !allow(hatches, code[name_idx].line, "E1")
                {
                    out.discards.push(Discard {
                        file: rel.to_string(),
                        line: code[name_idx].line,
                        name,
                    });
                }
            }
        }
    }
}

/// For a `)` at index `close`, finds the matching `(` and returns the
/// callee identifier directly before it (if any).
fn call_name(src: &str, code: &[Tok], close: usize) -> Option<(usize, String)> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        match code[j].text(src) {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    let name_idx = j.checked_sub(1)?;
    let t = code.get(name_idx)?;
    if t.kind == TokKind::Ident && !NON_INDEX_KEYWORDS.contains(&t.text(src)) {
        Some((name_idx, t.text(src).to_string()))
    } else {
        None
    }
}

/// Walks backward from token `from` to the start of the enclosing
/// statement (`;`, `{`, or `}` at depth 0). Returns true when nothing
/// in between consumes the value: no `let`, no `=` (any assignment or
/// comparison — conservative), no `return`, no `?`, no leading `.`
/// chain off a previous expression... i.e. the expression's result is
/// discarded.
fn statement_discards(src: &str, code: &[Tok], from: usize) -> bool {
    let mut depth = 0usize;
    let mut j = from;
    while j > 0 {
        j -= 1;
        let t = &code[j];
        match t.text(src) {
            // Walking backward, a closer opens a group — except a `}`
            // at depth 0, which is the previous block's end and thus a
            // statement boundary.
            ")" | "]" => depth += 1,
            "}" => {
                if depth == 0 {
                    return true;
                }
                depth += 1;
            }
            "(" | "[" | "{" => {
                if depth == 0 {
                    return true; // statement starts inside this group
                }
                depth -= 1;
            }
            ";" if depth == 0 => return true,
            "=" | "?" if depth == 0 => return false,
            "let" | "return" if depth == 0 && t.kind == TokKind::Ident => return false,
            _ => {}
        }
    }
    true
}

/// D6: seeded-stream draws inside comparator/retain closures and
/// `Drop` impls, where evaluation order/count is not part of the
/// replay contract.
fn scan_d6(
    rel: &str,
    src: &str,
    code: &[Tok],
    items: &[Item],
    hatches: &[HatchLine],
    findings: &mut Vec<Finding>,
) {
    let mut spans: Vec<(usize, usize, String)> = Vec::new();
    collect_d6_spans(items, &mut spans);
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for (lo, hi, what) in &spans {
        let mut k = 0;
        while k + 1 < code.len() {
            let t = &code[k];
            if t.start >= *lo
                && t.end <= *hi
                && t.text(src) == "."
                && code[k + 1].kind == TokKind::Ident
                && DRAW_METHODS.contains(&code[k + 1].text(src))
                && matches!(code.get(k + 2).map(|n| n.text(src)), Some("(") | Some(":"))
            {
                let method = code[k + 1].text(src).to_string();
                let line = t.line;
                if !allow(hatches, line, "D6") && seen.insert((line, method.clone())) {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line,
                        rule: Rule::D6,
                        message: format!(
                            "seeded-stream draw `.{method}(...)` inside {what} — evaluation \
                             order there is not part of the replay contract"
                        ),
                        hint: "draw the values before entering the comparator/Drop and \
                               capture them; a draw count that depends on std's comparison \
                               schedule breaks cross-version replay — or justify with \
                               `// lint: allow(D6, reason)`"
                            .to_string(),
                    });
                }
                k += 2;
            } else {
                k += 1;
            }
        }
    }
}

/// Byte spans D6 polices: non-test closures passed to [`UNSTABLE_CTX`]
/// calls, and whole `impl Drop for ...` bodies.
fn collect_d6_spans(items: &[Item], out: &mut Vec<(usize, usize, String)>) {
    for it in items {
        if !it.cfg_test {
            match it.kind {
                ItemKind::Closure => {
                    if let Some(ctx) = it.ctx.as_deref() {
                        if UNSTABLE_CTX.contains(&ctx) {
                            out.push((it.start, it.end, format!("a `{ctx}` closure")));
                        }
                    }
                }
                ItemKind::Impl if it.trait_of.as_deref() == Some("Drop") => {
                    if let Some((lo, hi)) = it.body {
                        out.push((lo, hi, "a `Drop` impl".to_string()));
                    }
                }
                _ => {}
            }
        }
        collect_d6_spans(&it.children, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> StructScan {
        scan_structure("crates/simulator/src/engine.rs", src, "titan_sim::engine", true, true)
    }

    fn rules_of(scan: &StructScan) -> Vec<Rule> {
        scan.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn p2_attributes_sites_to_fully_qualified_fn_paths() {
        let src = "pub struct Engine;\n\
                   impl Engine {\n\
                       pub fn run(&mut self) { self.q.pop().unwrap(); }\n\
                       fn peek(&self) -> u32 { self.slots[0] }\n\
                   }\n\
                   fn free(x: Option<u32>) -> u32 { x.expect(\"set\") }\n\
                   fn clean() -> u32 { 7 }\n";
        let s = scan(src);
        assert_eq!(s.p2.get("titan_sim::engine::Engine::run"), Some(&1));
        assert_eq!(s.p2.get("titan_sim::engine::Engine::peek"), Some(&1), "{:?}", s.p2);
        assert_eq!(s.p2.get("titan_sim::engine::free"), Some(&1));
        assert_eq!(s.p2.get("titan_sim::engine::clean"), None, "zero paths stay absent");
    }

    #[test]
    fn p2_counts_panics_and_indexing_but_not_types_or_patterns() {
        let src = "fn f(v: &[u64], i: usize) -> u64 {\n\
                       let [a, b] = [1u64, 2];\n\
                       let w: &[u64] = v;\n\
                       let x = vec![0u64];\n\
                       if i > w.len() { panic!(\"oob\"); }\n\
                       v[i] + x[0] + a + b\n\
                   }\n";
        let s = scan(src);
        // panic! + v[i] + x[0]; the slice pattern, slice type, and
        // vec![] literal must not count.
        assert_eq!(s.p2.get("titan_sim::engine::f"), Some(&3), "{:?}", s.p2);
    }

    #[test]
    fn p2_skips_tests_and_hatched_lines() {
        let src = "fn live() { x.unwrap(); }\n\
                   fn hatched() {\n\
                       // lint: allow(P2, the queue is non-empty by construction)\n\
                       let v = q.pop().unwrap();\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { y.unwrap(); z[0]; panic!(); }\n\
                   }\n";
        let s = scan(src);
        assert_eq!(s.p2.get("titan_sim::engine::live"), Some(&1));
        assert_eq!(s.p2.get("titan_sim::engine::hatched"), None, "{:?}", s.p2);
        assert!(!s.p2.keys().any(|k| k.contains("tests")), "{:?}", s.p2);
    }

    #[test]
    fn e1_flags_let_underscore_but_exempts_fmt_writes() {
        let src = "use std::fmt::Write;\n\
                   fn f(r: Result<u32, String>, buf: &mut String) {\n\
                       let _ = r;\n\
                       let _ = writeln!(buf, \"ok\");\n\
                       let _ = write!(buf, \"ok\");\n\
                   }\n";
        let s = scan(src);
        assert_eq!(rules_of(&s), vec![Rule::E1], "{:?}", s.findings);
        assert_eq!(s.findings[0].line, 3);
    }

    #[test]
    fn e1_flags_bare_ok_but_not_bound_ok() {
        let src = "fn f(tx: Sender) {\n\
                       tx.send(1).ok();\n\
                       let got = tx.send(2).ok();\n\
                       if tx.send(3).ok().is_some() { }\n\
                       return tx.send(4).ok();\n\
                   }\n";
        let s = scan(src);
        assert_eq!(rules_of(&s), vec![Rule::E1], "{:?}", s.findings);
        assert_eq!(s.findings[0].line, 2);
    }

    #[test]
    fn e1_collects_discard_candidates_in_statement_position_only() {
        let src = "fn f(sim: &mut Sim) {\n\
                       sim.step(1.0);\n\
                       let out = sim.step(2.0);\n\
                       record(sim.step(3.0));\n\
                       helper();\n\
                   }\n";
        let s = scan(src);
        let names: Vec<&str> = s.discards.iter().map(|d| d.name.as_str()).collect();
        // `step` at line 2 and `record`/`helper` (also statements) are
        // candidates; bound and argument-position calls are not.
        assert_eq!(names, vec!["step", "record", "helper"], "{:?}", s.discards);
        assert_eq!(s.discards[0].line, 2);
    }

    #[test]
    fn e1_is_sim_scope_only_and_respects_tests_and_hatches() {
        let src = "fn f(r: Result<u32, u8>) { let _ = r; }\n";
        let outside =
            scan_structure("crates/stats/src/lib.rs", src, "titan_stats", false, false);
        assert!(outside.findings.is_empty());

        let test_mod = "#[cfg(test)]\nmod tests {\n    fn t(r: Result<u8, u8>) { let _ = r; }\n}\n";
        assert!(scan(test_mod).findings.is_empty());

        let hatched = "fn f(r: Result<u32, u8>) {\n\
                           // lint: allow(E1, poisoning is handled at the call site)\n\
                           let _ = r;\n\
                       }\n";
        assert!(scan(hatched).findings.is_empty());
    }

    #[test]
    fn d6_flags_draws_in_comparators_and_drop_impls() {
        let src = "fn shuffle(v: &mut Vec<Node>, rng: &mut StdRng) {\n\
                       v.sort_by(|a, b| rng.gen::<u64>().cmp(&b.key));\n\
                       v.retain(|n| rng.gen_bool(0.5));\n\
                   }\n\
                   struct Pool { rng: StdRng }\n\
                   impl Drop for Pool {\n\
                       fn drop(&mut self) { let t = self.rng.gen_range(0..4); }\n\
                   }\n";
        let s = scan(src);
        let lines: Vec<usize> =
            s.findings.iter().filter(|f| f.rule == Rule::D6).map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 7], "{:?}", s.findings);
    }

    #[test]
    fn d6_allows_draws_in_plain_code_and_map_closures() {
        let src = "fn roll(rng: &mut StdRng, v: &mut Vec<u64>) {\n\
                       let x = rng.gen_range(0..10);\n\
                       let ys: Vec<u64> = (0..4).map(|_| rng.gen()).collect();\n\
                       v.sort_by(|a, b| a.cmp(b));\n\
                   }\n";
        let s = scan(src);
        assert!(s.findings.iter().all(|f| f.rule != Rule::D6), "{:?}", s.findings);
    }

    #[test]
    fn d6_respects_the_hatch_and_engine_scope() {
        let src = "fn f(v: &mut Vec<u64>, rng: &mut StdRng) {\n\
                       // lint: allow(D6, single element: comparator runs zero times)\n\
                       v.sort_by(|a, b| rng.gen::<u64>().cmp(b));\n\
                   }\n";
        assert!(scan(src).findings.iter().all(|f| f.rule != Rule::D6));

        let bare = "fn f(v: &mut Vec<u64>, rng: &mut StdRng) {\n\
                        v.retain(|_| rng.gen_bool(0.5));\n\
                    }\n";
        let outside =
            scan_structure("crates/stats/src/lib.rs", bare, "titan_stats", false, false);
        assert!(outside.findings.is_empty(), "stats is not engine scope");
    }

    #[test]
    fn harvest_collects_pub_items_and_must_use() {
        let src = "pub fn api() {}\n\
                   pub(crate) fn internal() {}\n\
                   fn private() {}\n\
                   pub struct State;\n\
                   #[must_use]\n\
                   pub fn outcome() -> u32 { 1 }\n\
                   // lint: allow(X1, kept for the public API surface)\n\
                   pub fn hatched_api() {}\n\
                   #[cfg(test)]\n\
                   pub fn test_helper() {}\n";
        let s = scan(src);
        let paths: Vec<&str> = s.pub_items.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "titan_sim::engine::api",
                "titan_sim::engine::State",
                "titan_sim::engine::outcome"
            ],
            "{:?}",
            s.pub_items
        );
        assert!(s.must_use_fns.contains("outcome"));
        assert_eq!(s.pub_items[0].self_refs, 1, "own definition mentions the name once");
        assert!(s.ident_counts.get("api").copied().unwrap_or(0) >= 1);
    }
}
