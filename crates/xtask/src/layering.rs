//! Rule **L1** — the crate layering contract.
//!
//! The engine crates are the part of the workspace whose output must be
//! byte-identical for a given seed. A dependency edge from an engine
//! crate to the runner, the bench harness, or the CLI would let host
//! state (thread pools, wall clocks, argv) flow back into the
//! simulation, and an edge between engine crates outside the declared
//! DAG hides exactly the kind of cross-layer coupling that made Titan's
//! nvidia-smi DBE counts untrustworthy. L1 parses every
//! `crates/*/Cargo.toml` (plus the root façade manifest), rebuilds the
//! dependency graph, and checks it against [`LAYERS`], the committed
//! DAG (drawn in DETERMINISM.md).
//!
//! Only `[dependencies]` edges count: dev-dependencies are test-only
//! and may reach anywhere.

use std::collections::BTreeMap;
use std::path::Path;

use crate::{Finding, Rule, ENGINE_CRATE_DIRS};

/// The layering contract: crate dir → titan crate dirs it may list in
/// `[dependencies]`. Vendored stubs (serde, rand, bytes, ...) are not
/// constrained except `rayon`, which is banned from engine crates
/// outright (the manifest-level mirror of rule D4).
///
/// Leaf → root order; DETERMINISM.md renders the same table as a
/// diagram. `check_layering` verifies this table stays acyclic, so a
/// future edit cannot quietly legalize a cycle.
pub const LAYERS: &[(&str, &[&str])] = &[
    ("stats", &[]),
    ("topology", &[]),
    ("gpu", &[]),
    ("conlog", &["stats", "topology", "gpu"]),
    ("nvsmi", &["topology", "gpu"]),
    ("obs", &["conlog"]),
    ("workload", &["stats", "topology", "conlog"]),
    ("faults", &["stats", "topology", "gpu", "conlog"]),
    (
        "simulator",
        &["stats", "topology", "gpu", "faults", "workload", "conlog", "nvsmi", "obs"],
    ),
    ("analysis", &["stats", "topology", "gpu", "conlog", "nvsmi"]),
    (
        "core",
        &[
            "stats", "topology", "gpu", "faults", "workload", "simulator", "conlog", "nvsmi",
            "obs", "analysis",
        ],
    ),
    ("runner", &["core", "simulator", "stats", "conlog", "nvsmi", "obs"]),
    (
        "bench",
        &[
            "core", "simulator", "analysis", "conlog", "topology", "gpu", "faults", "workload",
            "stats", "nvsmi", "runner",
        ],
    ),
    // Build tooling: std-only by contract, and nothing depends on it.
    ("xtask", &[]),
];

/// One parsed crate manifest.
#[derive(Debug, Clone)]
pub struct CrateManifest {
    /// Directory name under `crates/` (`simulator`, `faults`, ...), or
    /// `.` for the root façade.
    pub dir: String,
    /// `[package] name` (`titan-sim`, ...).
    pub package: String,
    /// Manifest path relative to the workspace root.
    pub rel_path: String,
    /// `[dependencies]` package names with their 1-based manifest line.
    pub deps: Vec<(String, usize)>,
}

/// Parses one Cargo.toml: package name plus `[dependencies]` entries.
/// Dev-dependencies, build-dependencies, lints, and target tables are
/// all skipped.
pub fn parse_manifest(dir: &str, rel_path: &str, text: &str) -> CrateManifest {
    let mut package = String::new();
    let mut deps = Vec::new();
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        Other,
    }
    let mut section = Section::Other;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                _ => Section::Other,
            };
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = line.strip_prefix("name") {
                    if let Some(v) = rest.trim_start().strip_prefix('=') {
                        package = v.trim().trim_matches('"').to_string();
                    }
                }
            }
            Section::Deps => {
                if let Some((name, _)) = line.split_once('=') {
                    deps.push((name.trim().trim_matches('"').to_string(), i + 1));
                }
            }
            Section::Other => {}
        }
    }
    CrateManifest {
        dir: dir.to_string(),
        package,
        rel_path: rel_path.to_string(),
        deps,
    }
}

/// Reads every `crates/*/Cargo.toml` plus the root façade manifest,
/// sorted by directory for deterministic finding order.
pub fn read_manifests(root: &Path) -> std::io::Result<Vec<CrateManifest>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    for dir in dirs {
        let dirname = dir.file_name().unwrap_or_default().to_string_lossy().to_string();
        let rel = format!("crates/{dirname}/Cargo.toml");
        let text = std::fs::read_to_string(dir.join("Cargo.toml"))?;
        out.push(parse_manifest(&dirname, &rel, &text));
    }
    // The root façade manifest also declares [dependencies]; parse it
    // so its package name resolves, even though the façade itself may
    // depend on everything.
    if root.join("src").is_dir() {
        if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
            out.push(parse_manifest(".", "Cargo.toml", &text));
        }
    }
    Ok(out)
}

/// Checks the parsed manifests against [`LAYERS`]. Returns L1 findings.
pub fn check_layering(manifests: &[CrateManifest]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // The committed table itself must be a DAG: walk LAYERS in order
    // and require every allowed dep to be declared *earlier* (the table
    // is written leaf → root). This makes a cycle impossible by
    // construction and catches a bad future edit at lint time.
    let mut declared: Vec<&str> = Vec::new();
    for (dir, allowed) in LAYERS {
        for dep in *allowed {
            if !declared.contains(dep) {
                findings.push(Finding {
                    file: "crates/xtask/src/layering.rs".to_string(),
                    line: 0,
                    rule: Rule::L1,
                    message: format!(
                        "LAYERS is not in leaf→root order: `{dir}` allows `{dep}` before \
                         `{dep}` is declared — the table must stay an explicit DAG"
                    ),
                    hint: "reorder LAYERS so every allowed dependency appears above its \
                           dependents"
                        .to_string(),
                });
            }
        }
        declared.push(dir);
    }

    // Package name → crate dir, for resolving `titan-*` dep edges.
    let pkg_to_dir: BTreeMap<&str, &str> = manifests
        .iter()
        .filter(|m| !m.package.is_empty())
        .map(|m| (m.package.as_str(), m.dir.as_str()))
        .collect();

    for m in manifests {
        if m.dir == "." {
            continue; // the root façade (CLI) may depend on any crate
        }
        let Some((_, allowed)) = LAYERS.iter().find(|(d, _)| *d == m.dir) else {
            findings.push(Finding {
                file: m.rel_path.clone(),
                line: 0,
                rule: Rule::L1,
                message: format!(
                    "crate dir `{}` has no entry in the layering contract", m.dir
                ),
                hint: "add it to LAYERS in crates/xtask/src/layering.rs and to the DAG \
                       diagram in DETERMINISM.md"
                    .to_string(),
            });
            continue;
        };
        let engine = ENGINE_CRATE_DIRS.contains(&m.dir.as_str());
        for (dep, line) in &m.deps {
            if dep == "rayon" && engine {
                findings.push(Finding {
                    file: m.rel_path.clone(),
                    line: *line,
                    rule: Rule::L1,
                    message: format!(
                        "engine crate `{}` lists rayon in [dependencies]", m.dir
                    ),
                    hint: "engine crates must stay single-threaded (see D4); fan out whole \
                           runs via titan-runner instead"
                        .to_string(),
                });
                continue;
            }
            let Some(dep_dir) = pkg_to_dir.get(dep.as_str()) else {
                continue; // vendored stub (serde, rand, ...) — unconstrained
            };
            if *dep_dir == "." {
                findings.push(Finding {
                    file: m.rel_path.clone(),
                    line: *line,
                    rule: Rule::L1,
                    message: format!(
                        "crate `{}` depends on the root façade package `{dep}`", m.dir
                    ),
                    hint: "the CLI sits above every crate; invert the dependency".to_string(),
                });
                continue;
            }
            if !allowed.contains(dep_dir) {
                findings.push(Finding {
                    file: m.rel_path.clone(),
                    line: *line,
                    rule: Rule::L1,
                    message: format!(
                        "layering violation: `{}` depends on `{dep}` (crates/{dep_dir}), \
                         which the declared DAG forbids",
                        m.dir
                    ),
                    hint: "route the data through an allowed layer, or (for a genuine new \
                           edge) extend LAYERS and the DETERMINISM.md diagram in the same \
                           change"
                        .to_string(),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(dir: &str, package: &str, deps: &[&str]) -> CrateManifest {
        CrateManifest {
            dir: dir.to_string(),
            package: package.to_string(),
            rel_path: format!("crates/{dir}/Cargo.toml"),
            deps: deps.iter().enumerate().map(|(i, d)| (d.to_string(), i + 1)).collect(),
        }
    }

    #[test]
    fn committed_layers_table_is_a_dag() {
        assert!(check_layering(&[]).is_empty(), "LAYERS itself must verify");
    }

    #[test]
    fn parse_manifest_reads_only_dependencies() {
        let text = "[package]\nname = \"titan-faults\"\n\n[dependencies]\n\
                    titan-stats = { workspace = true }\nserde = { workspace = true }\n\n\
                    [dev-dependencies]\ntitan-runner = { workspace = true }\n\n\
                    [lints]\nworkspace = true\n";
        let m = parse_manifest("faults", "crates/faults/Cargo.toml", text);
        assert_eq!(m.package, "titan-faults");
        let names: Vec<&str> = m.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(names, vec!["titan-stats", "serde"], "dev-deps must not count");
    }

    #[test]
    fn forbidden_edge_is_flagged_with_manifest_line() {
        let ms = vec![
            manifest("stats", "titan-stats", &[]),
            manifest("runner", "titan-runner", &[]),
            manifest("simulator", "titan-sim", &["titan-stats", "titan-runner"]),
        ];
        let found = check_layering(&ms);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, Rule::L1);
        assert_eq!(found[0].file, "crates/simulator/Cargo.toml");
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains("titan-runner"));
    }

    #[test]
    fn engine_crates_may_not_list_rayon() {
        let ms = vec![manifest("faults", "titan-faults", &["rayon"])];
        let found = check_layering(&ms);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("rayon"));

        // The analysis side may.
        let ms = vec![manifest("analysis", "titan-analysis", &["rayon"])];
        assert!(check_layering(&ms).is_empty());
    }

    #[test]
    fn unknown_crate_dir_requires_a_layers_entry() {
        let ms = vec![manifest("newthing", "titan-newthing", &[])];
        let found = check_layering(&ms);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("no entry in the layering contract"));
    }

    #[test]
    fn engine_to_engine_edges_follow_the_dag() {
        // obs → conlog is a declared edge; conlog → obs is not.
        let ms = vec![
            manifest("conlog", "titan-conlog", &[]),
            manifest("obs", "titan-obs", &["titan-conlog"]),
        ];
        assert!(check_layering(&ms).is_empty());

        let ms = vec![
            manifest("conlog", "titan-conlog", &["titan-obs"]),
            manifest("obs", "titan-obs", &[]),
        ];
        let found = check_layering(&ms);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("declared DAG forbids"));
    }
}
