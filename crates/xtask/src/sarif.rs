//! SARIF 2.1.0 rendering (`--format sarif` / `--sarif FILE`).
//!
//! SARIF is the interchange format GitHub code scanning ingests, so CI
//! can upload the lint run and have findings appear in the Security /
//! Code scanning UI without a custom dashboard. Like the
//! `titan-lint/3` JSON document, the output is byte-stable: the rule
//! table is a static array, findings are pre-sorted by the caller, and
//! nothing here touches a HashMap.
//!
//! Only the minimal required subset of the spec is emitted — one run,
//! one driver, `results` with `ruleId` / `message` / a single physical
//! location. Crate-level findings (line 0, e.g. ratchet regressions)
//! omit the `region` object, which SARIF permits.

use crate::output::esc;
use crate::LintReport;

/// Static rule table for `tool.driver.rules`. Kept in rule-id order so
/// the document is reproducible; descriptions mirror LINTS.md.
const RULES: &[(&str, &str)] = &[
    ("D1", "wall-clock or OS entropy source in a simulation crate"),
    ("D2", "unordered hash container in non-test simulation code"),
    ("D3", "thread-based parallelism inside the deterministic core"),
    ("D4", "float accumulation across unordered iteration"),
    ("D5", "telemetry emitted outside the deterministic clock"),
    ("D6", "RNG draw inside a comparator or Drop impl in an engine crate"),
    ("E1", "fallible simulation result silently discarded"),
    ("L1", "crate dependency violates the committed layering DAG"),
    ("N1", "lossy numeric cast budget exceeded in a simulation crate"),
    ("P2", "per-function panic-surface budget exceeded"),
    ("S1", "nondeterministic iteration feeding sorted output"),
    ("X1", "unreferenced pub item budget exceeded"),
];

/// Renders the report as a SARIF 2.1.0 log. Deterministic: equal
/// reports produce identical bytes.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"titan-lint\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        crate::output::JSON_SCHEMA.trim_start_matches("titan-lint/")
    ));
    out.push_str("          \"informationUri\": \"LINTS.md\",\n");
    out.push_str("          \"rules\": [");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "            {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", f.rule));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&format!("{} (hint: {})", f.message, f.hint))
        ));
        out.push_str("          \"locations\": [\n");
        out.push_str("            {\"physicalLocation\": {");
        out.push_str(&format!("\"artifactLocation\": {{\"uri\": \"{}\"}}", esc(&f.file)));
        if f.line > 0 {
            out.push_str(&format!(", \"region\": {{\"startLine\": {}}}", f.line));
        }
        out.push_str("}}\n          ]\n        }");
    }
    out.push_str(if report.findings.is_empty() { "]\n" } else { "\n      ]\n" });
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Rule};

    fn report_with(findings: Vec<Finding>) -> LintReport {
        let mut report = LintReport::default();
        report.findings = findings;
        report
    }

    #[test]
    fn sarif_document_carries_schema_rules_and_results() {
        let report = report_with(vec![
            Finding {
                file: "crates/gpu/src/ecc.rs".into(),
                line: 41,
                rule: Rule::D6,
                message: "RNG draw `gen_range` inside a `sort_by` closure".into(),
                hint: "draw before sorting".into(),
            },
            Finding {
                file: "crates/xtask/lint-baseline.toml (titan_sim::run)".into(),
                line: 0,
                rule: Rule::P2,
                message: "panic-surface sites in `titan_sim::run` rose from 0 to 1".into(),
                hint: "ratchet".into(),
            },
        ]);
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(sarif.contains("\"name\": \"titan-lint\""));
        // Every rule id appears in the driver table exactly once.
        for id in ["D1", "D2", "D3", "D4", "D5", "D6", "E1", "L1", "N1", "P2", "S1", "X1"] {
            assert_eq!(
                sarif.matches(&format!("\"id\": \"{id}\"")).count(),
                1,
                "rule {id} missing or duplicated"
            );
        }
        assert!(sarif.contains("\"ruleId\": \"D6\""));
        assert!(sarif.contains("\"startLine\": 41"));
        assert!(sarif.contains("RNG draw `gen_range` inside a `sort_by` closure (hint: draw before sorting)"));
        // Line-0 findings omit the region object entirely.
        assert!(sarif.contains("\"ruleId\": \"P2\""));
        assert!(!sarif.contains("\"startLine\": 0"));
        assert_eq!(sarif.matches("\"region\"").count(), 1, "only the D6 finding has a region");
    }

    #[test]
    fn sarif_is_byte_stable_and_valid_when_empty() {
        let empty = render_sarif(&LintReport::default());
        assert_eq!(empty, render_sarif(&LintReport::default()));
        assert!(empty.contains("\"results\": []"));
        assert!(empty.ends_with("}\n"));
    }
}
