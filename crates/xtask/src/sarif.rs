//! SARIF 2.1.0 rendering (`--format sarif` / `--sarif FILE`).
//!
//! SARIF is the interchange format GitHub code scanning ingests, so CI
//! can upload the lint run and have findings appear in the Security /
//! Code scanning UI without a custom dashboard. Like the
//! `titan-lint/3` JSON document, the output is byte-stable: the rule
//! table is a static array, findings are pre-sorted by the caller, and
//! nothing here touches a HashMap.
//!
//! Only the minimal required subset of the spec is emitted — one run,
//! one driver, `results` with `ruleId` / `message` / a single physical
//! location. Crate-level findings (line 0, e.g. ratchet regressions)
//! omit the `region` object, which SARIF permits. T1 findings
//! additionally carry `codeFlows`/`threadFlows`: one location per hop
//! of the taint chain, so code-scanning UIs replay the laundering path
//! step by step.
//!
//! The driver rule table comes from [`crate::meta::RULE_META`] — the
//! same table `--explain` prints and LINTS.md mirrors, so the SARIF
//! descriptions can no longer drift from the docs (the old static copy
//! here had gone stale for D3/D4/D5/S1).

use crate::meta::RULE_META;
use crate::output::esc;
use crate::taint::{t1_message, T1Path};
use crate::{LintReport, Rule};

/// Renders the report as a SARIF 2.1.0 log. Deterministic: equal
/// reports produce identical bytes.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"titan-lint\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        crate::output::JSON_SCHEMA.trim_start_matches("titan-lint/")
    ));
    out.push_str("          \"informationUri\": \"LINTS.md\",\n");
    out.push_str("          \"rules\": [");
    for (i, m) in RULE_META.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            m.id,
            esc(m.short)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", f.rule));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&format!("{} (hint: {})", f.message, f.hint))
        ));
        out.push_str("          \"locations\": [\n");
        out.push_str("            {\"physicalLocation\": {");
        out.push_str(&format!("\"artifactLocation\": {{\"uri\": \"{}\"}}", esc(&f.file)));
        if f.line > 0 {
            out.push_str(&format!(", \"region\": {{\"startLine\": {}}}", f.line));
        }
        out.push_str("}}\n          ]");
        // T1 results carry the full taint chain as a codeFlow. The
        // finding was built from the path, so (file, line, message)
        // identifies it exactly.
        if f.rule == Rule::T1 {
            if let Some(p) = report.t1_paths.iter().find(|p| {
                p.file == f.file && p.line == f.line && t1_message(p) == f.message
            }) {
                push_code_flow(&mut out, p);
            }
        }
        out.push_str("\n        }");
    }
    out.push_str(if report.findings.is_empty() { "]\n" } else { "\n      ]\n" });
    out.push_str("    }\n  ]\n}\n");
    out
}

/// Appends the `codeFlows` array for one T1 path: a single threadFlow
/// whose locations walk the witness source read → call sites → sink
/// statement, each with a step message.
fn push_code_flow(out: &mut String, p: &T1Path) {
    out.push_str(",\n          \"codeFlows\": [\n");
    out.push_str("            {\"threadFlows\": [\n");
    out.push_str("              {\"locations\": [");
    let last = p.steps.len().saturating_sub(1);
    for (i, s) in p.steps.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let note = if i == 0 {
            format!("{} `{}` read in {}", p.source_kind.as_str(), p.source_desc, s.path)
        } else if i == last {
            format!("{} in {}", p.sink_kind.as_str(), s.path)
        } else {
            format!("tainted value flows through {}", s.path)
        };
        out.push_str(&format!(
            "                {{\"location\": {{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}, \
             \"message\": {{\"text\": \"{}\"}}}}}}",
            esc(&s.file),
            s.line,
            esc(&note),
        ));
    }
    out.push_str("\n              ]}\n            ]}\n          ]");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Rule};

    fn report_with(findings: Vec<Finding>) -> LintReport {
        let mut report = LintReport::default();
        report.findings = findings;
        report
    }

    #[test]
    fn sarif_document_carries_schema_rules_and_results() {
        let report = report_with(vec![
            Finding {
                file: "crates/gpu/src/ecc.rs".into(),
                line: 41,
                rule: Rule::D6,
                message: "RNG draw `gen_range` inside a `sort_by` closure".into(),
                hint: "draw before sorting".into(),
            },
            Finding {
                file: "crates/xtask/lint-baseline.toml (titan_sim::run)".into(),
                line: 0,
                rule: Rule::P2,
                message: "panic-surface sites in `titan_sim::run` rose from 0 to 1".into(),
                hint: "ratchet".into(),
            },
        ]);
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(sarif.contains("\"name\": \"titan-lint\""));
        // Every rule id appears in the driver table exactly once.
        for id in ["D1", "D2", "D3", "D4", "D5", "D6", "E1", "L1", "N1", "P2", "S1", "T1", "X1"] {
            assert_eq!(
                sarif.matches(&format!("\"id\": \"{id}\"")).count(),
                1,
                "rule {id} missing or duplicated"
            );
        }
        assert!(sarif.contains("\"ruleId\": \"D6\""));
        assert!(sarif.contains("\"startLine\": 41"));
        assert!(sarif.contains("RNG draw `gen_range` inside a `sort_by` closure (hint: draw before sorting)"));
        // Line-0 findings omit the region object entirely.
        assert!(sarif.contains("\"ruleId\": \"P2\""));
        assert!(!sarif.contains("\"startLine\": 0"));
        assert_eq!(sarif.matches("\"region\"").count(), 1, "only the D6 finding has a region");
    }

    #[test]
    fn t1_findings_carry_code_flows() {
        use crate::callgraph::{SinkKind, SourceKind};
        use crate::taint::T1Step;

        let path = T1Path {
            sink_fn: "titan_sim::Engine::apply_hint".into(),
            file: "crates/simulator/src/lib.rs".into(),
            line: 9,
            crate_name: "titan-sim".into(),
            sink_kind: SinkKind::StateWrite,
            sink_line: 9,
            source_kind: SourceKind::EnvRead,
            source_desc: "env::var(\"TITAN_NUM_THREADS\")".into(),
            source_file: "crates/stats/src/lib.rs".into(),
            source_line: 2,
            steps: vec![
                T1Step {
                    path: "titan_stats::host_width_raw".into(),
                    file: "crates/stats/src/lib.rs".into(),
                    line: 2,
                },
                T1Step {
                    path: "titan_sim::width_hint".into(),
                    file: "crates/simulator/src/lib.rs".into(),
                    line: 4,
                },
                T1Step {
                    path: "titan_sim::Engine::apply_hint".into(),
                    file: "crates/simulator/src/lib.rs".into(),
                    line: 9,
                },
            ],
        };
        let mut report = report_with(vec![Finding {
            file: path.file.clone(),
            line: path.line,
            rule: Rule::T1,
            message: t1_message(&path),
            hint: "cut the chain".into(),
        }]);
        report.t1_paths.push(path);
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"ruleId\": \"T1\""), "{sarif}");
        assert!(sarif.contains("\"codeFlows\""), "{sarif}");
        assert!(sarif.contains("\"threadFlows\""));
        // One location per step, each with file + line + step message.
        assert_eq!(sarif.matches("\"location\":").count(), 3, "{sarif}");
        assert!(sarif.contains("env read `env::var(\\\"TITAN_NUM_THREADS\\\")` read in titan_stats::host_width_raw"));
        assert!(sarif.contains("tainted value flows through titan_sim::width_hint"));
        assert!(sarif.contains("a sim-state write in titan_sim::Engine::apply_hint"));
        assert!(sarif.contains("\"startLine\": 4"));

        // A non-T1 finding never grows a codeFlows block.
        let plain = render_sarif(&report_with(vec![Finding {
            file: "crates/gpu/src/ecc.rs".into(),
            line: 3,
            rule: Rule::D1,
            message: "m".into(),
            hint: "h".into(),
        }]));
        assert!(!plain.contains("codeFlows"));
    }

    #[test]
    fn sarif_is_byte_stable_and_valid_when_empty() {
        let empty = render_sarif(&LintReport::default());
        assert_eq!(empty, render_sarif(&LintReport::default()));
        assert!(empty.contains("\"results\": []"));
        assert!(empty.ends_with("}\n"));
    }
}
