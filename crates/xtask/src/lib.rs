//! titan-lint: the workspace's determinism & panic-safety static
//! analysis, run as `cargo xtask lint`.
//!
//! The whole reproduction rests on "same seed ⇒ same Observations
//! 1–14", so the rules target the ways Rust code silently loses that
//! property (see DETERMINISM.md for the handbook):
//!
//! - **D1** — wall-clock / entropy sources (`SystemTime::now`,
//!   `Instant::now`, `thread_rng`, `from_entropy`, `rand::random`)
//!   are forbidden anywhere in simulation crates.
//! - **D2** — `HashMap`/`HashSet` in non-test code of simulation
//!   crates: hash iteration order is seeded per process, so any
//!   iteration leaks nondeterminism. Use `BTreeMap`/`BTreeSet`, or
//!   justify get-only usage with a `// lint: sorted-iter` comment.
//! - **D3** — `partial_cmp()` + `unwrap`/`expect` inside a comparator
//!   (`sort_by`, `max_by`, `min_by`, `binary_search_by`): panics on
//!   NaN and imposes no total order. Use `f64::total_cmp`.
//! - **D4** — threading primitives (`rayon`, `std::thread`,
//!   `into_par_iter`, `scope_map`) are forbidden in non-test code of
//!   *engine* crates (the simulation producers). Parallelism only ever
//!   runs **across** independent simulations — the replication runner
//!   and the analysis side may fan out; the event loop itself must stay
//!   single-threaded or per-run byte-identity dies.
//! - **D5** — wall-clock *types* (`std::time::`, `Instant`,
//!   `SystemTime`, `.elapsed(`) are forbidden in non-test engine code:
//!   engine crates may only record telemetry through the sim-time
//!   `titan-obs` API, so their metrics stay byte-identical across
//!   seeds and thread widths. Wall-clock profiling lives in the
//!   runner/bench/CLI layer (see OBSERVABILITY.md). A line already
//!   reported by D1 is not reported again.
//! - **P1** — a ratcheting `.unwrap()` / `panic!` budget per crate,
//!   persisted in `crates/xtask/lint-baseline.toml`; counts may only
//!   go down.
//!
//! The scanner is std-only and line/token-based by design: it must run
//! before any dependency resolution (CI runs it on a cold checkout) and
//! its findings must be cheap to recompute on every push.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates under `crates/` holding simulation state or feeding it —
/// the D1/D2 scope. Analysis-side crates (`stats`, `analysis`,
/// `bench`, `xtask`) may use wall-clock and hashed containers; they
/// consume sim output, they don't produce it.
pub const SIM_CRATE_DIRS: &[&str] = &[
    "core", "simulator", "faults", "gpu", "workload", "topology", "conlog", "nvsmi", "obs",
];

/// Crates that *produce* simulation output — the D4 scope. Strictly the
/// engine side: `core` orchestrates already-produced output and may use
/// the pool for its figure computations, and `runner` exists to fan
/// whole simulations across threads; neither may appear here.
pub const ENGINE_CRATE_DIRS: &[&str] = &[
    "simulator", "faults", "gpu", "workload", "topology", "conlog", "nvsmi", "obs",
];

/// Lint rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Wall-clock/entropy source in a simulation crate.
    D1,
    /// Unordered hash container in non-test simulation code.
    D2,
    /// NaN-unsafe float comparator.
    D3,
    /// Threading primitive inside an engine crate.
    D4,
    /// Wall-clock type in non-test engine code (telemetry must go
    /// through the sim-time titan-obs API).
    D5,
    /// Unwrap/panic budget regression.
    P1,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::P1 => "P1",
        };
        write!(f, "{s}")
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for crate-level findings like P1).
    pub line: usize,
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {} (hint: {})",
                self.file, self.line, self.rule, self.message, self.hint
            )
        } else {
            write!(f, "{}: [{}] {} (hint: {})", self.file, self.rule, self.message, self.hint)
        }
    }
}

/// D1 forbidden tokens and their reported names.
const D1_TOKENS: &[(&str, &str)] = &[
    ("SystemTime::now", "SystemTime::now()"),
    ("Instant::now", "Instant::now()"),
    ("thread_rng", "thread_rng()"),
    ("from_entropy", "from_entropy()"),
    ("rand::random", "rand::random()"),
];

/// D4 forbidden tokens: any road into the thread pool or raw threads.
/// `std::thread` as a token also nets `spawn`/`scope`/`sleep` through
/// the canonical path; direct `thread::spawn`/`thread::scope` catch the
/// `use std::thread;` spelling.
const D4_TOKENS: &[(&str, &str)] = &[
    ("rayon", "the rayon thread pool"),
    ("std::thread", "std::thread"),
    ("thread::spawn", "thread::spawn"),
    ("thread::scope", "thread::scope"),
    ("into_par_iter", "a parallel iterator"),
    ("scope_map(", "the pool's scope_map"),
];

/// D5 forbidden tokens: wall-clock *types and readings*, wider than
/// D1's `::now()` constructors — holding an `Instant` or a
/// `std::time::Duration` in engine state is already a time-domain
/// leak, whether or not this line reads the clock.
const D5_TOKENS: &[(&str, &str)] = &[
    ("std::time::", "a std::time type"),
    ("Instant", "an Instant"),
    ("SystemTime", "a SystemTime"),
    (".elapsed(", "an .elapsed() reading"),
];

/// Comparator call sites D3 inspects.
const D3_CONTEXTS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    /// Non-test `.unwrap()` + `panic!` count (the P1 input).
    pub unwrap_panic: usize,
}

/// Per-line view after comment/string stripping and test tracking.
struct Line<'a> {
    raw: &'a str,
    /// Comments and string literal bodies blanked out.
    code: String,
    /// True inside a `#[cfg(test)]`-gated item.
    in_test: bool,
}

/// Scans one source file. `sim_scope` turns on D1/D2, `engine_scope`
/// turns on D4; D3 and the P1 count always run.
pub fn scan_file(rel_path: &str, text: &str, sim_scope: bool, engine_scope: bool) -> FileScan {
    let lines = preprocess(text);
    let mut out = FileScan::default();

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;

        // D1: anywhere in sim crates, test code included — a test that
        // consults the wall clock flakes just as surely.
        let mut d1_on_line = false;
        if sim_scope {
            for (token, name) in D1_TOKENS {
                if line.code.contains(token) {
                    d1_on_line = true;
                    out.findings.push(Finding {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: Rule::D1,
                        message: format!("{name} is a nondeterminism source"),
                        hint: "derive all randomness from the seeded RngStreams; take \
                               time from the simulation clock"
                            .to_string(),
                    });
                }
            }
        }

        // D2: non-test sim code only, with the sorted-iter escape hatch.
        if sim_scope && !line.in_test {
            for token in ["HashMap", "HashSet"] {
                if line.code.contains(token) && !justified(&lines, i) {
                    out.findings.push(Finding {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: Rule::D2,
                        message: format!("{token} in simulation code iterates in seeded hash order"),
                        hint: "use BTreeMap/BTreeSet, or justify get-only use with \
                               `// lint: sorted-iter`"
                            .to_string(),
                    });
                }
            }
        }

        // D4: non-test engine code must never thread. Tests may spawn
        // (e.g. racing two sims to prove independence); the event loop
        // and its models may not.
        if engine_scope && !line.in_test {
            for (token, name) in D4_TOKENS {
                if line.code.contains(token) {
                    out.findings.push(Finding {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: Rule::D4,
                        message: format!(
                            "{name} inside an engine crate — parallelism is only \
                             allowed across independent simulations"
                        ),
                        hint: "keep the event loop single-threaded; fan out whole runs \
                               via titan-runner::replicate instead"
                            .to_string(),
                    });
                    break; // one finding per line is enough
                }
            }
        }

        // D5: non-test engine code may only record telemetry through
        // the sim-time titan-obs API. A line D1 already reported (the
        // `::now()` call) is not reported twice — D5 exists for the
        // wall-clock *types* D1's constructor tokens miss.
        if engine_scope && !line.in_test && !d1_on_line {
            for (token, name) in D5_TOKENS {
                if line.code.contains(token) {
                    out.findings.push(Finding {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: Rule::D5,
                        message: format!(
                            "{name} inside an engine crate — telemetry there must stay \
                             in the sim time domain"
                        ),
                        hint: "record through titan-obs (sim-time counters/spans); \
                               wall-clock profiling belongs in the runner/bench/CLI \
                               layer — see OBSERVABILITY.md"
                            .to_string(),
                    });
                    break; // one finding per line is enough
                }
            }
        }

        // D3: everywhere, tests included — a NaN panic in a test
        // comparator hides the regression it was written to catch.
        if line.code.contains("partial_cmp") {
            let ctx_lo = i.saturating_sub(3);
            let in_comparator = lines[ctx_lo..=i]
                .iter()
                .any(|l| D3_CONTEXTS.iter().any(|c| l.code.contains(c)));
            let ctx_hi = (i + 3).min(lines.len());
            let unwrapped = lines[i..ctx_hi]
                .iter()
                .any(|l| l.code.contains(".unwrap()") || l.code.contains(".expect("));
            if in_comparator && unwrapped {
                out.findings.push(Finding {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: Rule::D3,
                    message: "partial_cmp().unwrap() comparator panics on NaN and is not a \
                              total order"
                        .to_string(),
                    hint: "use f64::total_cmp (flip operands to keep direction)".to_string(),
                });
            }
        }

        // P1 input: non-test unwrap/panic density.
        if !line.in_test {
            out.unwrap_panic += line.code.matches(".unwrap()").count();
            out.unwrap_panic += line.code.matches("panic!").count();
        }
    }
    out
}

/// The D2 escape hatch: `// lint: sorted-iter` on the same line or the
/// line directly above.
fn justified(lines: &[Line], i: usize) -> bool {
    let has = |l: &Line| l.raw.contains("// lint: sorted-iter");
    has(&lines[i]) || (i > 0 && has(&lines[i - 1]))
}

/// Strips comments/strings and tracks `#[cfg(test)]` regions.
fn preprocess(text: &str) -> Vec<Line<'_>> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    let mut depth: i32 = 0;
    // Depth at which each active #[cfg(test)] region opened.
    let mut test_regions: Vec<i32> = Vec::new();
    // A #[cfg(test)] was seen and its item's `{` is still ahead.
    let mut test_armed = false;

    for raw in text.lines() {
        let code = strip_line(raw, &mut in_block_comment);
        let in_test_before = !test_regions.is_empty();

        if code.contains("#[cfg(test)]") {
            test_armed = true;
        }

        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if test_armed {
                        test_regions.push(depth);
                        test_armed = false;
                    }
                }
                '}' => {
                    if test_regions.last() == Some(&depth) {
                        test_regions.pop();
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] use ...;` gates a braceless item.
                ';' if test_armed && depth >= 0 => test_armed = false,
                _ => {}
            }
        }

        // A line is test code if it was inside a region OR opened one
        // (the `mod tests {` line itself, and its attribute line, are
        // exempt from D2 — they declare the region).
        let in_test = in_test_before || !test_regions.is_empty() || test_armed;
        out.push(Line { raw, code, in_test });
    }
    out
}

/// Blanks string literals, char literals, and comments from a line,
/// leaving structure (braces) intact. Raw strings and multi-line
/// strings are not handled — the workspace style avoids both, and a
/// miss only risks a false positive, never a false negative.
fn strip_line(raw: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(raw.len());
    let bytes: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
            '/' if bytes.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                // Skip the string body.
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str("\"\"");
            }
            '\'' => {
                // Char literal or lifetime. `'a'`-style literals are
                // skipped; lifetimes (`'a`) pass through.
                if bytes.get(i + 1) == Some(&'\\') {
                    // e.g. '\n', '\\', '\u{..}'
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                } else if bytes.get(i + 2) == Some(&'\'') {
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

// --- workspace walking -----------------------------------------------------

/// A crate to scan: name, root dir, and whether D1/D2 apply.
#[derive(Debug, Clone)]
pub struct CrateTarget {
    pub name: String,
    pub src_dir: PathBuf,
    pub sim_scope: bool,
    pub engine_scope: bool,
}

/// Finds the workspace root by walking up from `start` to a Cargo.toml
/// containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Enumerates the crates titan-lint covers: every `crates/*` member
/// with a `src/` tree (xtask itself excluded — it is build tooling and
/// its sources quote the forbidden tokens), plus the root façade.
pub fn workspace_targets(root: &Path) -> std::io::Result<Vec<CrateTarget>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort(); // deterministic scan order
    for dir in dirs {
        let dirname = dir.file_name().unwrap_or_default().to_string_lossy().to_string();
        if dirname == "xtask" {
            continue;
        }
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        out.push(CrateTarget {
            name: crate_name(&dir.join("Cargo.toml")).unwrap_or(dirname.clone()),
            src_dir: src,
            sim_scope: SIM_CRATE_DIRS.contains(&dirname.as_str()),
            engine_scope: ENGINE_CRATE_DIRS.contains(&dirname.as_str()),
        });
    }
    // The root façade package (examples + CLI). Not a sim crate: it
    // only renders what the sim produced.
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(CrateTarget {
            name: crate_name(&root.join("Cargo.toml")).unwrap_or("root".into()),
            src_dir: root_src,
            sim_scope: false,
            engine_scope: false,
        });
    }
    Ok(out)
}

/// Reads `name = "..."` from a manifest's `[package]` section.
fn crate_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Recursively lists `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let p = entry?.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

// --- baseline --------------------------------------------------------------

/// The committed unwrap/panic budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// crate name → allowed non-test unwrap/panic count.
    pub budgets: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the minimal TOML subset the baseline file uses
    /// (`[budgets]` section of `"name" = count` lines).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut budgets = BTreeMap::new();
        let mut in_budgets = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                in_budgets = line == "[budgets]";
                continue;
            }
            if !in_budgets {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("lint-baseline.toml:{}: expected `name = count`", n + 1))?;
            let key = k.trim().trim_matches('"').to_string();
            let count: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("lint-baseline.toml:{}: bad count `{}`", n + 1, v.trim()))?;
            budgets.insert(key, count);
        }
        Ok(Baseline { budgets })
    }

    /// Renders the committed form of the baseline.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# titan-lint P1 baseline: non-test `.unwrap()` + `panic!` count per crate.\n\
             # The budget ratchets: counts may only go down. After removing unwraps,\n\
             # run `cargo xtask lint --update-baseline` to lock in the improvement.\n\
             \n[budgets]\n",
        );
        for (name, count) in &self.budgets {
            out.push_str(&format!("\"{name}\" = {count}\n"));
        }
        out
    }
}

/// Compares measured counts against the baseline; returns P1 findings
/// (regressions and missing entries) and improvement notes.
pub fn check_baseline(
    baseline: &Baseline,
    counts: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for (name, &count) in counts {
        match baseline.budgets.get(name) {
            None => findings.push(Finding {
                file: format!("crates/xtask/lint-baseline.toml ({name})"),
                line: 0,
                rule: Rule::P1,
                message: format!("crate `{name}` has no unwrap/panic budget (measured {count})"),
                hint: "run `cargo xtask lint --update-baseline` and commit the file".to_string(),
            }),
            Some(&budget) if count > budget => findings.push(Finding {
                file: format!("crates/xtask/lint-baseline.toml ({name})"),
                line: 0,
                rule: Rule::P1,
                message: format!(
                    "unwrap/panic count in `{name}` rose from {budget} to {count}"
                ),
                hint: "replace the new .unwrap()/panic! with error returns; the budget \
                       only ratchets down"
                    .to_string(),
            }),
            Some(&budget) if count < budget => notes.push(format!(
                "`{name}` improved: {budget} → {count} unwrap/panic; run \
                 `cargo xtask lint --update-baseline` to ratchet the budget down"
            )),
            _ => {}
        }
    }
    (findings, notes)
}

// --- report ----------------------------------------------------------------

/// Full lint result for one run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub notes: Vec<String>,
    /// Measured per-crate unwrap/panic counts.
    pub counts: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

/// Runs the full lint over a workspace root. `baseline` is the parsed
/// committed baseline (empty if the file does not exist yet).
pub fn run_lint(root: &Path, baseline: &Baseline) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for target in workspace_targets(root)? {
        let mut crate_count = 0usize;
        for file in rust_files(&target.src_dir)? {
            let text = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let scan = scan_file(&rel, &text, target.sim_scope, target.engine_scope);
            report.findings.extend(scan.findings);
            crate_count += scan.unwrap_panic;
            report.files_scanned += 1;
        }
        report.counts.insert(target.name, crate_count);
    }
    let (p1, notes) = check_baseline(baseline, &report.counts);
    report.findings.extend(p1);
    report.notes = notes;
    Ok(report)
}

/// Renders findings as a JSON array (machine-readable `--format json`).
pub fn render_json(report: &LintReport) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
    }
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"hint\": \"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.message),
            esc(&f.hint),
            if i + 1 < report.findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"unwrap_panic_counts\": {\n");
    let n = report.counts.len();
    for (i, (name, count)) in report.counts.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            esc(name),
            count,
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str, sim: bool) -> Vec<Rule> {
        scan_file("test.rs", text, sim, false).findings.iter().map(|f| f.rule).collect()
    }

    fn engine_findings(text: &str) -> Vec<Rule> {
        scan_file("test.rs", text, true, true).findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_flags_entropy_sources_in_sim_scope_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() { let mut r = rand::thread_rng(); }\n";
        assert_eq!(findings(src, true), vec![Rule::D1, Rule::D1]);
        assert!(findings(src, false).is_empty());
    }

    #[test]
    fn d1_applies_inside_test_modules_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = SystemTime::now(); }\n}\n";
        assert_eq!(findings(src, true), vec![Rule::D1]);
    }

    #[test]
    fn d2_flags_hash_containers_outside_tests() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n";
        assert_eq!(findings(src, true), vec![Rule::D2, Rule::D2]);
        assert!(findings(src, false).is_empty());
    }

    #[test]
    fn d2_exempts_cfg_test_modules() {
        let src = "struct S;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashSet;\n\
                       fn f() { let s: HashSet<u32> = HashSet::new(); }\n\
                   }\n\
                   fn after() { let m = std::collections::HashMap::<u8, u8>::new(); }\n";
        // Only the HashMap *after* the test module fires.
        let scan = scan_file("test.rs", src, true, false);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].line, 7);
    }

    #[test]
    fn d2_escape_hatch_same_or_previous_line() {
        let same = "let m: HashMap<u32, u32> = HashMap::new(); // lint: sorted-iter\n";
        assert!(findings(same, true).is_empty());
        let prev = "// lint: sorted-iter — get-only, never iterated\n\
                    let m: HashMap<u32, u32> = HashMap::new();\n";
        assert!(findings(prev, true).is_empty());
        let unjustified = "let m: HashMap<u32, u32> = HashMap::new();\n";
        assert_eq!(findings(unjustified, true), vec![Rule::D2]);
    }

    #[test]
    fn d2_ignores_comments_and_strings() {
        let src = "// a HashMap would be wrong here\n\
                   let msg = \"HashSet iteration order\";\n";
        assert!(findings(src, true).is_empty());
    }

    #[test]
    fn d3_flags_nan_unsafe_comparators() {
        let one_line = "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(findings(one_line, false), vec![Rule::D3]);
        let multi = "xs.sort_by(|a, b| {\n\
                         a.partial_cmp(b)\n\
                             .expect(\"NaN\")\n\
                     });\n";
        assert_eq!(findings(multi, false), vec![Rule::D3]);
        let binary = "edges.binary_search_by(|e| e.partial_cmp(&x).expect(\"NaN edge\"));\n";
        assert_eq!(findings(binary, false), vec![Rule::D3]);
    }

    #[test]
    fn d3_allows_total_cmp_and_bare_partial_cmp() {
        let total = "xs.sort_by(|a, b| a.total_cmp(b));\n";
        assert!(findings(total, false).is_empty());
        // partial_cmp without unwrap/expect (e.g. returning an Option)
        // is not a panic site.
        let bare = "let o = a.partial_cmp(&b);\n";
        assert!(findings(bare, false).is_empty());
    }

    #[test]
    fn d4_flags_threading_in_engine_scope_only() {
        let src = "fn f() { rayon::join(|| a(), || b()); }\n\
                   fn g() { std::thread::spawn(|| {}); }\n\
                   fn h() { let v = items.into_par_iter().collect(); }\n";
        assert_eq!(engine_findings(src), vec![Rule::D4, Rule::D4, Rule::D4]);
        // The same code is fine outside the engine scope (core, runner,
        // analysis-side crates).
        assert!(findings(src, true).is_empty());
    }

    #[test]
    fn d4_exempts_test_modules_and_comments() {
        let src = "// rayon would be wrong here\n\
                   fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn race() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n\
                   }\n";
        assert!(engine_findings(src).is_empty());
    }

    #[test]
    fn d4_one_finding_per_line() {
        let src = "fn f() { rayon::scope_map(v, std::thread::available_parallelism(), g); }\n";
        assert_eq!(engine_findings(src), vec![Rule::D4]);
    }

    #[test]
    fn d5_flags_wall_clock_types_in_engine_scope_only() {
        // No `::now()` call anywhere — D1 stays silent, D5 must not.
        let src = "use std::time::Duration;\n\
                   pub struct Meter { t0: Instant }\n\
                   pub fn f(m: &Meter) -> u128 { m.t0.elapsed().as_millis() }\n";
        assert_eq!(engine_findings(src), vec![Rule::D5, Rule::D5, Rule::D5]);
        // Outside the engine scope (core, runner, analysis side) the
        // same code is fine: wall-clock profiling lives there.
        assert!(findings(src, true).is_empty());
        assert!(findings(src, false).is_empty());
    }

    #[test]
    fn d5_defers_to_d1_on_the_same_line() {
        // The classic injected violation: one line carrying both the
        // type and the ::now() call must yield exactly one finding (D1).
        let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
        assert_eq!(engine_findings(src), vec![Rule::D1]);
    }

    #[test]
    fn d5_exempts_test_modules_comments_and_strings() {
        let src = "// an Instant would be wrong here\n\
                   let msg = \"SystemTime drift\";\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(d: std::time::Duration) -> u64 { d.as_secs() }\n\
                   }\n";
        assert!(engine_findings(src).is_empty());
    }

    #[test]
    fn p1_counts_non_test_unwrap_and_panic() {
        let src = "fn f() { x.unwrap(); panic!(\"boom\"); }\n\
                   fn g() { y.unwrap_or(0); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { z.unwrap(); panic!(); }\n\
                   }\n";
        let scan = scan_file("test.rs", src, false, false);
        // unwrap_or must not count; the test module must not count.
        assert_eq!(scan.unwrap_panic, 2);
    }

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let mut baseline = Baseline::default();
        baseline.budgets.insert("titan-stats".into(), 5);
        baseline.budgets.insert("titan-sim".into(), 0);
        let text = baseline.render();
        assert_eq!(Baseline::parse(&text).unwrap(), baseline);

        // Regression fails.
        let mut counts = BTreeMap::new();
        counts.insert("titan-stats".to_string(), 6);
        counts.insert("titan-sim".to_string(), 0);
        let (findings, notes) = check_baseline(&baseline, &counts);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::P1);
        assert!(notes.is_empty());

        // Improvement passes with a ratchet note.
        counts.insert("titan-stats".to_string(), 3);
        let (findings, notes) = check_baseline(&baseline, &counts);
        assert!(findings.is_empty());
        assert_eq!(notes.len(), 1);

        // Unknown crate requires a baseline entry.
        counts.insert("titan-new".to_string(), 0);
        let (findings, _) = check_baseline(&baseline, &counts);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn json_output_is_parseable_shape() {
        let mut report = LintReport::default();
        report.findings.push(Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::D2,
            message: "m".into(),
            hint: "h \"quoted\"".into(),
        });
        report.counts.insert("c".into(), 2);
        let json = render_json(&report);
        assert!(json.contains("\"rule\": \"D2\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"c\": 2"));
    }
}
