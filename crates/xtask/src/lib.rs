//! titan-lint: the workspace's determinism & panic-safety static
//! analysis, run as `cargo xtask lint`.
//!
//! The whole reproduction rests on "same seed ⇒ same Observations
//! 1–14", so the rules target the ways Rust code silently loses that
//! property (see DETERMINISM.md for the handbook and LINTS.md for the
//! one-table rule catalog):
//!
//! - **D1** — wall-clock / entropy sources (`SystemTime::now`,
//!   `Instant::now`, `thread_rng`, `from_entropy`, `rand::random`)
//!   are forbidden anywhere in simulation crates.
//! - **D2** — `HashMap`/`HashSet` in non-test code of simulation
//!   crates: hash iteration order is seeded per process. Use
//!   `BTreeMap`/`BTreeSet`, or justify get-only usage with a
//!   `// lint: sorted-iter` comment.
//! - **D3** — `partial_cmp()` + `unwrap`/`expect` inside a comparator
//!   (`sort_by`, `max_by`, ...): panics on NaN and imposes no total
//!   order. Use `f64::total_cmp`.
//! - **D4** — threading primitives are forbidden in non-test code of
//!   *engine* crates. Parallelism only ever runs **across** independent
//!   simulations; the event loop itself stays single-threaded.
//! - **D5** — wall-clock *types* (`std::time::`, `Instant`,
//!   `SystemTime`, `.elapsed(`) are forbidden in non-test engine code:
//!   telemetry there goes through the sim-time `titan-obs` API. A line
//!   already reported by D1 is not reported again.
//! - **N1** — `as <numeric-type>` casts in non-test simulation code:
//!   every one is a potential silent event-count or sim-time
//!   truncation (the paper's own DBE counts were corrupted by exactly
//!   this failure shape). Justify a benign cast with
//!   `// lint: allow(N1, reason)`; the remaining count per crate
//!   ratchets down via the `[n1]` baseline section.
//! - **L1** — the crate layering contract: `crates/*/Cargo.toml`
//!   dependency edges must match the DAG in [`layering::LAYERS`]
//!   (engine crates never depend on runner/bench/CLI or on each other
//!   outside the declared order; no rayon in engine manifests).
//! - **S1** — frozen output schemas (`titan-obs/2`, `titan-check/1`,
//!   `titan-obs-replicate/1`) must match their golden specs in
//!   `crates/xtask/schemas/` (version literal present, top-level field
//!   list identical and in order; new version literals need new specs).
//! - **P2** — a ratcheting panic-surface budget per *function*:
//!   `.unwrap()` / `.expect(` / `panic!` / slice-indexing sites are
//!   attributed to fully-qualified fn paths and budgeted in the `[p2]`
//!   section of `crates/xtask/lint-baseline.toml` (supersedes the old
//!   crate-blurred P1 budget).
//! - **E1** — swallowed fallible results in simulation crates:
//!   `let _ = ...`, bare `.ok();`, and discarded calls to workspace
//!   `#[must_use]` sim APIs (see [`rules`]).
//! - **D6** — seeded-stream RNG draws inside evaluation-order-unstable
//!   positions (sort/retain comparator closures, `Drop` impls) in
//!   engine crates (see [`rules`]).
//! - **X1** — dead `pub` items in `titan-*` crates, found via the
//!   workspace reference graph and ratcheted in `[x1]`
//!   (see [`symbols`]).
//! - **T1** — interprocedural determinism taint: a nondeterminism
//!   source (env read, wall clock, thread-width query, pointer-address
//!   cast, hash iteration, entropy) reaching a sim-state write or an
//!   output/digest emission through *any* call chain, reported with
//!   the full source→sink witness and ratcheted per crate in `[t1]`
//!   (see [`callgraph`] and [`taint`]).
//!
//! Since v2 the scanner is **token-based**: every file is lexed by the
//! hand-rolled [`lexer`] (comments incl. nesting, string/char/raw
//! literals, identifiers), and rules match needle *token sequences*
//! against code tokens only. A `HashMap` in a doc comment, an
//! `Instant::now` in a string literal, or an identifier that merely
//! *contains* a banned name (`Instantaneous`) can no longer flag.
//! Since v3 there is a structural layer on top: the std-only
//! recursive-descent [`parser`] turns the token stream into an item
//! tree (modules, fns, impls, closures, with exact byte spans), and
//! P2/E1/D6/X1 are expressed against that tree plus the workspace
//! symbol graph. The scanner stays std-only: it runs on a cold
//! checkout before any dependency resolution. Since v4 the same item
//! tree feeds a workspace *call graph* ([`callgraph`]) and a
//! fixed-point taint propagation ([`taint`]), so T1 sees across
//! function and crate boundaries — still with zero dependency
//! resolution, and still on the single shared pass over the tree.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod callgraph;
pub mod layering;
pub mod lexer;
pub mod meta;
pub mod output;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod schema;
pub mod symbols;
pub mod taint;

pub use baseline::{
    check_n1_baseline, check_p2_baseline, check_t1_baseline, check_x1_baseline, Baseline,
};
pub use output::{render_github, render_json};
pub use sarif::render_sarif;

use lexer::{lex, Tok, TokKind};

/// Crates under `crates/` holding simulation state or feeding it —
/// the D1/D2/N1 scope. Analysis-side crates (`stats`, `analysis`,
/// `bench`, `xtask`) may use wall-clock and hashed containers; they
/// consume sim output, they don't produce it.
pub const SIM_CRATE_DIRS: &[&str] = &[
    "core", "simulator", "faults", "gpu", "workload", "topology", "conlog", "nvsmi", "obs",
];

/// Crates that *produce* simulation output — the D4/D5 scope. Strictly
/// the engine side: `core` orchestrates already-produced output and may
/// use the pool for its figure computations, and `runner` exists to fan
/// whole simulations across threads; neither may appear here.
pub const ENGINE_CRATE_DIRS: &[&str] = &[
    "simulator", "faults", "gpu", "workload", "topology", "conlog", "nvsmi", "obs",
];

/// Lint rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock/entropy source in a simulation crate.
    D1,
    /// Unordered hash container in non-test simulation code.
    D2,
    /// NaN-unsafe float comparator.
    D3,
    /// Threading primitive inside an engine crate.
    D4,
    /// Wall-clock type in non-test engine code.
    D5,
    /// Seeded-stream RNG draw in an evaluation-order-unstable position.
    D6,
    /// Swallowed fallible result in simulation code.
    E1,
    /// Lossy numeric cast budget regression in simulation code.
    N1,
    /// Crate layering contract violation.
    L1,
    /// Frozen output schema drift.
    S1,
    /// Per-function panic-surface budget regression.
    P2,
    /// Dead `pub` item budget regression.
    X1,
    /// Interprocedural determinism-taint path regression.
    T1,
}

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::E1 => "E1",
            Rule::N1 => "N1",
            Rule::L1 => "L1",
            Rule::S1 => "S1",
            Rule::P2 => "P2",
            Rule::X1 => "X1",
            Rule::T1 => "T1",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for crate-level findings like P1/N1).
    pub line: usize,
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {} (hint: {})",
                self.file, self.line, self.rule, self.message, self.hint
            )
        } else {
            write!(f, "{}: [{}] {} (hint: {})", self.file, self.rule, self.message, self.hint)
        }
    }
}

/// One `as <numeric-type>` cast site (the N1 burn-down worklist,
/// surfaced through `--format json` as `n1_sites`).
#[derive(Debug, Clone)]
pub struct N1Site {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The cast as written, e.g. `as u32`.
    pub cast: String,
}

/// One unreferenced `pub` item (the X1 burn-down worklist, surfaced
/// through `--format json` as `x1_sites`).
#[derive(Debug, Clone)]
pub struct X1Site {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number of the item keyword.
    pub line: usize,
    /// Fully-qualified item path, e.g. `titan_gpu::ecc::retire_page`.
    pub path: String,
}

/// Needle token sequences for D1: entropy/wall-clock *sources*.
const D1_NEEDLES: &[(&[&str], &str)] = &[
    (&["SystemTime", ":", ":", "now"], "SystemTime::now()"),
    (&["Instant", ":", ":", "now"], "Instant::now()"),
    (&["thread_rng"], "thread_rng()"),
    (&["from_entropy"], "from_entropy()"),
    (&["rand", ":", ":", "random"], "rand::random()"),
];

/// Needle token sequences for D4: any road into the thread pool or raw
/// threads.
const D4_NEEDLES: &[(&[&str], &str)] = &[
    (&["rayon"], "the rayon thread pool"),
    (&["std", ":", ":", "thread"], "std::thread"),
    (&["thread", ":", ":", "spawn"], "thread::spawn"),
    (&["thread", ":", ":", "scope"], "thread::scope"),
    (&["into_par_iter"], "a parallel iterator"),
    (&["scope_map", "("], "the pool's scope_map"),
];

/// Needle token sequences for D5: wall-clock *types and readings*,
/// wider than D1's constructors — holding an `Instant` in engine state
/// is already a time-domain leak.
const D5_NEEDLES: &[(&[&str], &str)] = &[
    (&["std", ":", ":", "time", ":", ":"], "a std::time type"),
    (&["Instant"], "an Instant"),
    (&["SystemTime"], "a SystemTime"),
    (&[".", "elapsed", "("], "an .elapsed() reading"),
];

/// Comparator call sites D3 inspects (matched as whole identifiers).
const D3_CONTEXTS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// The numeric types whose `as` casts N1 counts. Truncation, sign
/// wrap, and f64-precision loss all ride on these.
const N1_NUM_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64",
];

/// Result of scanning one file with the line-level rules. The
/// structural rules (P2/E1/D6/X1) live in [`rules`] and [`symbols`].
#[derive(Debug, Default)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    /// Non-test `as <numeric-type>` sites (the N1 input; already
    /// filtered by the allow hatch). Empty outside sim scope.
    pub n1_sites: Vec<N1Site>,
}

/// Per-line view over the token stream.
struct LineToks {
    /// Code tokens (non-trivia) whose first byte sits on this line.
    toks: Vec<Tok>,
    /// True inside a `#[cfg(test)]`-gated item.
    in_test: bool,
    /// A `// lint: sorted-iter` hatch comment starts on this line.
    sorted_iter: bool,
    /// Rule ids from `// lint: allow(RULE, reason)` hatch comments
    /// starting on this line.
    allows: Vec<String>,
}

/// The text a rule needle sees for a token: literal bodies are opaque
/// (a needle can never match into or across a string/char literal),
/// everything else is the token's own spelling.
fn needle_text<'a>(src: &'a str, t: &Tok) -> &'a str {
    if t.kind.is_literal() {
        "\u{0}"
    } else {
        t.text(src)
    }
}

/// True when `needle` matches the code tokens starting at `i`.
fn match_at(src: &str, toks: &[Tok], i: usize, needle: &[&str]) -> bool {
    toks.len() - i >= needle.len()
        && needle
            .iter()
            .enumerate()
            .all(|(k, n)| needle_text(src, &toks[i + k]) == *n)
}

/// True when `needle` matches anywhere in the line's code tokens.
fn line_has(src: &str, toks: &[Tok], needle: &[&str]) -> bool {
    (0..toks.len()).any(|i| match_at(src, toks, i, needle))
}

/// True when the line holds a whole-token identifier from `idents`.
fn line_has_ident(src: &str, toks: &[Tok], idents: &[&str]) -> bool {
    toks.iter()
        .any(|t| t.kind == TokKind::Ident && idents.contains(&t.text(src)))
}

/// One line's escape hatches, after carry-forward (see [`hatch_lines`]).
#[derive(Debug, Clone, Default)]
pub struct HatchLine {
    /// A `// lint: sorted-iter` hatch applies to this line.
    pub sorted_iter: bool,
    /// Rule ids from `// lint: allow(RULE, reason)` hatches applying to
    /// this line.
    pub allows: Vec<String>,
}

/// Computes per-line escape hatches from the token stream. A hatch on
/// a line that also holds code applies to that line; a hatch on a
/// comment-only line **carries forward** to the next line holding code
/// tokens, skipping blank and further comment-only lines — so an
/// intervening comment no longer silently detaches the hatch from the
/// statement it annotates.
pub fn hatch_lines(src: &str, toks: &[Tok]) -> Vec<HatchLine> {
    let n_lines = toks.last().map(|t| t.line).unwrap_or(0).max(src.lines().count());
    let mut out: Vec<HatchLine> = vec![HatchLine::default(); n_lines];
    let mut has_code = vec![false; n_lines];
    for t in toks {
        let Some(line) = out.get_mut(t.line - 1) else { continue };
        if t.kind.is_comment() {
            let text = t.text(src);
            if text.contains("lint: sorted-iter") {
                line.sorted_iter = true;
            }
            if let Some(rest) = text.split("lint: allow(").nth(1) {
                let rule: String = rest
                    .chars()
                    .take_while(|c| *c != ',' && *c != ')')
                    .collect::<String>()
                    .trim()
                    .to_string();
                if !rule.is_empty() {
                    line.allows.push(rule);
                }
            }
        } else if !t.kind.is_trivia() {
            has_code[t.line - 1] = true;
        }
    }
    // Carry comment-only-line hatches forward to the next code line.
    let mut pending = HatchLine::default();
    for (i, line) in out.iter_mut().enumerate() {
        if has_code[i] {
            line.sorted_iter |= pending.sorted_iter;
            line.allows.append(&mut pending.allows);
            pending.sorted_iter = false;
        } else if line.sorted_iter || !line.allows.is_empty() {
            pending.sorted_iter |= line.sorted_iter;
            pending.allows.extend(line.allows.iter().cloned());
        }
    }
    out
}

/// Lexes the file and builds the per-line view: code tokens grouped by
/// line, `#[cfg(test)]` region tracking (brace-depth based, with the
/// braceless-item `;` disarm), and escape-hatch comments.
fn preprocess(src: &str) -> Vec<LineToks> {
    let toks = lex(src);
    let hatches = hatch_lines(src, &toks);
    let mut lines: Vec<LineToks> = hatches
        .into_iter()
        .map(|h| LineToks {
            toks: Vec::new(),
            in_test: false,
            sorted_iter: h.sorted_iter,
            allows: h.allows,
        })
        .collect();

    for t in &toks {
        let Some(line) = lines.get_mut(t.line - 1) else { continue };
        if !t.kind.is_trivia() {
            line.toks.push(*t);
        }
    }

    // Test-region tracking, token-based: `#[cfg(test)]` arms, the next
    // `{` opens a region at its depth, the matching `}` closes it, and
    // a `;` before any `{` disarms (a cfg-gated braceless item).
    const CFG_TEST: &[&str] = &["#", "[", "cfg", "(", "test", ")", "]"];
    let mut depth: i32 = 0;
    let mut regions: Vec<i32> = Vec::new();
    let mut armed = false;
    for line in &mut lines {
        let before = !regions.is_empty();
        if line_has(src, &line.toks, CFG_TEST) {
            armed = true;
        }
        for t in &line.toks {
            match needle_text(src, t) {
                "{" => {
                    depth += 1;
                    if armed {
                        regions.push(depth);
                        armed = false;
                    }
                }
                "}" => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                ";" if armed => armed = false,
                _ => {}
            }
        }
        line.in_test = before || !regions.is_empty() || armed;
    }
    lines
}

/// The escape hatch check. Carry-forward happens in [`hatch_lines`],
/// so a hatch written on the line itself or on any comment run above
/// the statement has already landed on this line.
fn hatched(lines: &[LineToks], i: usize, check: impl Fn(&LineToks) -> bool) -> bool {
    check(&lines[i])
}

/// Scans one source file. `sim_scope` turns on D1/D2/N1, `engine_scope`
/// turns on D4/D5; D3 and the P1 count always run.
pub fn scan_file(rel_path: &str, text: &str, sim_scope: bool, engine_scope: bool) -> FileScan {
    let lines = preprocess(text);
    let src = text;
    let mut out = FileScan::default();
    // Dedupe (rule, line, message): a needle matching twice on one line
    // is still one finding, matching the v1 per-line semantics.
    let mut seen: BTreeSet<(usize, &'static str, String)> = BTreeSet::new();
    let push = |out: &mut FileScan,
                    seen: &mut BTreeSet<(usize, &'static str, String)>,
                    lineno: usize,
                    rule: Rule,
                    message: String,
                    hint: &str| {
        if seen.insert((lineno, rule.as_str(), message.clone())) {
            out.findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                rule,
                message,
                hint: hint.to_string(),
            });
        }
    };

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let toks = &line.toks;

        // D1: anywhere in sim crates, test code included — a test that
        // consults the wall clock flakes just as surely.
        let mut d1_on_line = false;
        if sim_scope {
            for (needle, name) in D1_NEEDLES {
                if line_has(src, toks, needle) {
                    d1_on_line = true;
                    push(
                        &mut out,
                        &mut seen,
                        lineno,
                        Rule::D1,
                        format!("{name} is a nondeterminism source"),
                        "derive all randomness from the seeded RngStreams; take time from \
                         the simulation clock",
                    );
                }
            }
        }

        // D2: non-test sim code only, with the sorted-iter escape hatch.
        if sim_scope && !line.in_test {
            for token in ["HashMap", "HashSet"] {
                if line_has_ident(src, toks, &[token])
                    && !hatched(&lines, i, |l| l.sorted_iter)
                {
                    push(
                        &mut out,
                        &mut seen,
                        lineno,
                        Rule::D2,
                        format!("{token} in simulation code iterates in seeded hash order"),
                        "use BTreeMap/BTreeSet, or justify get-only use with \
                         `// lint: sorted-iter`",
                    );
                }
            }
        }

        // D4: non-test engine code must never thread. Tests may spawn
        // (e.g. racing two sims to prove independence); the event loop
        // and its models may not.
        if engine_scope && !line.in_test {
            for (needle, name) in D4_NEEDLES {
                if line_has(src, toks, needle) {
                    push(
                        &mut out,
                        &mut seen,
                        lineno,
                        Rule::D4,
                        format!(
                            "{name} inside an engine crate — parallelism is only allowed \
                             across independent simulations"
                        ),
                        "keep the event loop single-threaded; fan out whole runs via \
                         titan-runner::replicate instead",
                    );
                    break; // one finding per line is enough
                }
            }
        }

        // D5: non-test engine code may only record telemetry through
        // the sim-time titan-obs API. A line D1 already reported (the
        // `::now()` call) is not reported twice — D5 exists for the
        // wall-clock *types* D1's constructor needles miss.
        if engine_scope && !line.in_test && !d1_on_line {
            for (needle, name) in D5_NEEDLES {
                if line_has(src, toks, needle) {
                    push(
                        &mut out,
                        &mut seen,
                        lineno,
                        Rule::D5,
                        format!(
                            "{name} inside an engine crate — telemetry there must stay in \
                             the sim time domain"
                        ),
                        "record through titan-obs (sim-time counters/spans); wall-clock \
                         profiling belongs in the runner/bench/CLI layer — see \
                         OBSERVABILITY.md",
                    );
                    break; // one finding per line is enough
                }
            }
        }

        // D3: everywhere, tests included — a NaN panic in a test
        // comparator hides the regression it was written to catch.
        if line_has_ident(src, toks, &["partial_cmp"]) {
            let ctx_lo = i.saturating_sub(3);
            let in_comparator = lines[ctx_lo..=i]
                .iter()
                .any(|l| line_has_ident(src, &l.toks, D3_CONTEXTS));
            let ctx_hi = (i + 3).min(lines.len());
            let unwrapped = lines[i..ctx_hi].iter().any(|l| {
                line_has(src, &l.toks, &[".", "unwrap", "(", ")"])
                    || line_has(src, &l.toks, &[".", "expect", "("])
            });
            if in_comparator && unwrapped {
                push(
                    &mut out,
                    &mut seen,
                    lineno,
                    Rule::D3,
                    "partial_cmp().unwrap() comparator panics on NaN and is not a total \
                     order"
                        .to_string(),
                    "use f64::total_cmp (flip operands to keep direction)",
                );
            }
        }

        // N1 input: `as <numeric-type>` casts in non-test sim code,
        // minus hatched sites. Sites are *counted* per crate (the
        // ratchet), not reported one-by-one — the json n1_sites list is
        // the burn-down worklist.
        if sim_scope && !line.in_test && !hatched(&lines, i, |l| l.allows.iter().any(|r| r == "N1"))
        {
            for w in 0..toks.len().saturating_sub(1) {
                let a = &toks[w];
                let b = &toks[w + 1];
                if a.kind == TokKind::Ident
                    && a.text(src) == "as"
                    && b.kind == TokKind::Ident
                    && N1_NUM_TYPES.contains(&b.text(src))
                {
                    out.n1_sites.push(N1Site {
                        file: rel_path.to_string(),
                        line: lineno,
                        cast: format!("as {}", b.text(src)),
                    });
                }
            }
        }

    }
    out
}

// --- workspace walking -----------------------------------------------------

/// A crate to scan: name, root dir, and which rule scopes apply.
#[derive(Debug, Clone)]
pub struct CrateTarget {
    pub name: String,
    /// Directory name under `crates/`, or `.` for the root façade.
    pub dir: String,
    pub src_dir: PathBuf,
    pub sim_scope: bool,
    pub engine_scope: bool,
}

/// Finds the workspace root by walking up from `start` to a Cargo.toml
/// containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Enumerates the crates titan-lint covers: every `crates/*` member
/// with a `src/` tree (xtask itself excluded — it is build tooling and
/// its sources quote the forbidden tokens), plus the root façade.
pub fn workspace_targets(root: &Path) -> std::io::Result<Vec<CrateTarget>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort(); // deterministic scan order
    for dir in dirs {
        let dirname = dir.file_name().unwrap_or_default().to_string_lossy().to_string();
        if dirname == "xtask" {
            continue;
        }
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        out.push(CrateTarget {
            name: crate_name(&dir.join("Cargo.toml")).unwrap_or(dirname.clone()),
            dir: dirname.clone(),
            src_dir: src,
            sim_scope: SIM_CRATE_DIRS.contains(&dirname.as_str()),
            engine_scope: ENGINE_CRATE_DIRS.contains(&dirname.as_str()),
        });
    }
    // The root façade package (examples + CLI). Not a sim crate: it
    // only renders what the sim produced.
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(CrateTarget {
            name: crate_name(&root.join("Cargo.toml")).unwrap_or("root".into()),
            dir: ".".to_string(),
            src_dir: root_src,
            sim_scope: false,
            engine_scope: false,
        });
    }
    Ok(out)
}

/// The fully-qualified module path a file's items live under:
/// package name (with `-` mapped to `_`) plus the path from `src/`
/// (`lib.rs`/`main.rs` add nothing, `a/b.rs` adds `a::b`, `a/mod.rs`
/// adds `a`). Inline `mod` segments are appended by the item walk in
/// [`rules`].
pub fn module_prefix(package: &str, rel: &str) -> String {
    let mut out = package.replace('-', "_");
    let after = rel.rsplit_once("src/").map(|(_, a)| a).unwrap_or(rel);
    let segs: Vec<&str> = after.split('/').collect();
    for (i, seg) in segs.iter().enumerate() {
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if i + 1 == segs.len() && matches!(seg, "lib" | "main" | "mod") {
            continue;
        }
        out.push_str("::");
        out.push_str(seg);
    }
    out
}

/// Reads `name = "..."` from a manifest's `[package]` section.
fn crate_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Recursively lists `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let p = entry?.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

// --- report ----------------------------------------------------------------

/// Full lint result for one run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule, message) — the sort
    /// is what makes `--format json` byte-stable.
    pub findings: Vec<Finding>,
    pub notes: Vec<String>,
    /// Measured per-function panic-surface counts (nonzero paths only;
    /// the P2 ratchet input).
    pub p2_counts: std::collections::BTreeMap<String, usize>,
    /// Measured per-crate N1 cast counts (sim-scope crates only).
    pub n1_counts: std::collections::BTreeMap<String, usize>,
    /// Every unhatched cast site, sorted (the burn-down worklist).
    pub n1_sites: Vec<N1Site>,
    /// Measured per-crate dead-pub counts (every `titan-*` package,
    /// zero included; the X1 ratchet input).
    pub x1_counts: std::collections::BTreeMap<String, usize>,
    /// Every unhatched dead pub item, sorted (the burn-down worklist).
    pub x1_sites: Vec<X1Site>,
    /// Measured per-crate determinism-taint path counts (sim-scope
    /// packages, zero included; the T1 ratchet input).
    pub t1_counts: std::collections::BTreeMap<String, usize>,
    /// Every source→sink taint path, sorted (the T1 burn-down worklist
    /// and the SARIF codeFlows input).
    pub t1_paths: Vec<taint::T1Path>,
    pub files_scanned: usize,
}

/// Runs the full lint over a workspace root. `baseline` is the parsed
/// committed baseline (empty if the file does not exist yet).
///
/// Two layers share one pass over the tree: the line-level token rules
/// ([`scan_file`]) and the structural rules ([`rules::scan_structure`],
/// which lexes + parses each file once and feeds the P2 attribution,
/// E1/D6 findings, and the [`symbols`] reference graph X1 consumes).
pub fn run_lint(root: &Path, baseline: &Baseline) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut per_crate_idents: std::collections::BTreeMap<
        String,
        std::collections::BTreeMap<String, usize>,
    > = Default::default();
    let mut pub_items: std::collections::BTreeMap<String, Vec<symbols::PubItem>> =
        Default::default();
    let mut must_use: BTreeSet<String> = BTreeSet::new();
    let mut discards: Vec<rules::Discard> = Vec::new();
    let mut cg_fns: Vec<callgraph::FnDecl> = Vec::new();

    for target in workspace_targets(root)? {
        let mut crate_casts = 0usize;
        let idents = per_crate_idents.entry(target.name.clone()).or_default();
        // X1 covers the shipped `titan-*` library crates only: the root
        // façade's items are its CLI surface, and non-titan packages
        // (fixtures, forks) are outside the dead-code contract.
        let x1_scope = target.dir != "." && target.name.starts_with("titan-");
        if x1_scope {
            pub_items.entry(target.name.clone()).or_default();
        }
        for file in rust_files(&target.src_dir)? {
            let text = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let scan = scan_file(&rel, &text, target.sim_scope, target.engine_scope);
            report.findings.extend(scan.findings);
            crate_casts += scan.n1_sites.len();
            report.n1_sites.extend(scan.n1_sites);

            let prefix = module_prefix(&target.name, &rel);
            let ss = rules::scan_structure(
                &rel,
                &text,
                &prefix,
                target.sim_scope,
                target.engine_scope,
            );
            report.findings.extend(ss.findings);
            for (path, n) in ss.p2 {
                *report.p2_counts.entry(path).or_insert(0) += n;
            }
            for (name, n) in ss.ident_counts {
                *idents.entry(name).or_insert(0) += n;
            }
            if x1_scope {
                pub_items.get_mut(&target.name).expect("entry above").extend(ss.pub_items);
            }
            must_use.extend(ss.must_use_fns);
            discards.extend(ss.discards);
            // T1 input: every crate contributes call-graph nodes — a
            // source in an analysis-side crate taints whatever sim code
            // calls it, even though only sim-scope fns hold sinks.
            cg_fns.extend(callgraph::harvest_file(
                &rel,
                &text,
                &prefix,
                &target.name,
                target.sim_scope,
            ));
            report.files_scanned += 1;
        }
        if target.sim_scope {
            report.n1_counts.insert(target.name, crate_casts);
        }
    }

    // E1 third leg: a discarded call is only a finding when the callee
    // is a workspace `#[must_use]` sim API (collected tree-wide above).
    for d in discards {
        if must_use.contains(&d.name) {
            report.findings.push(Finding {
                file: d.file,
                line: d.line,
                rule: Rule::E1,
                message: format!(
                    "result of #[must_use] sim API `{}` is discarded", d.name
                ),
                hint: "bind and check the result (the attribute marks an outcome the \
                       caller must observe), or justify with `// lint: allow(E1, reason)`"
                    .to_string(),
            });
        }
    }

    // X1: dead `pub` items via the workspace reference graph.
    let manifests = layering::read_manifests(root)?;
    let visible = symbols::visibility(&manifests);
    let pool = symbols::pool_ident_counts(root)?;
    for (pkg, items) in &pub_items {
        let dead = symbols::dead_pubs(pkg, items, &per_crate_idents, &pool, &visible);
        report.x1_counts.insert(pkg.clone(), dead.len());
        for it in dead {
            report.x1_sites.push(X1Site {
                file: it.file.clone(),
                line: it.line,
                path: it.path.clone(),
            });
        }
    }

    // L1: the manifest-level layering contract.
    report.findings.extend(layering::check_layering(&manifests));

    // T1: interprocedural determinism taint over the call graph.
    let (t1_paths, t1_counts) = taint::analyze(&cg_fns, &manifests);
    report.t1_paths = t1_paths;
    report.t1_counts = t1_counts;

    // S1: frozen output schemas against their golden specs.
    let (specs, spec_findings) = schema::load_specs(root)?;
    report.findings.extend(spec_findings);
    report.findings.extend(schema::check_schemas(root, &specs));

    // P2 + N1 + X1 + T1 ratchets.
    let (p2, mut notes) = check_p2_baseline(baseline, &report.p2_counts);
    report.findings.extend(p2);
    let (n1, n1_notes) = check_n1_baseline(baseline, &report.n1_counts);
    report.findings.extend(n1);
    notes.extend(n1_notes);
    let (x1, x1_notes) = check_x1_baseline(baseline, &report.x1_counts);
    report.findings.extend(x1);
    notes.extend(x1_notes);
    let (t1, t1_notes) = check_t1_baseline(baseline, &report.t1_counts, &report.t1_paths);
    report.findings.extend(t1);
    notes.extend(t1_notes);
    report.notes = notes;

    // Deterministic order regardless of scan interleaving.
    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str(), a.message.as_str())
            .cmp(&(b.file.as_str(), b.line, b.rule.as_str(), b.message.as_str()))
    });
    report
        .n1_sites
        .sort_by(|a, b| (a.file.as_str(), a.line, a.cast.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.cast.as_str(),
        )));
    report
        .x1_sites
        .sort_by(|a, b| (a.file.as_str(), a.line, a.path.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.path.as_str(),
        )));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str, sim: bool) -> Vec<Rule> {
        scan_file("test.rs", text, sim, false).findings.iter().map(|f| f.rule).collect()
    }

    fn engine_findings(text: &str) -> Vec<Rule> {
        scan_file("test.rs", text, true, true).findings.iter().map(|f| f.rule).collect()
    }

    fn n1_count(text: &str) -> usize {
        scan_file("test.rs", text, true, false).n1_sites.len()
    }

    #[test]
    fn d1_flags_entropy_sources_in_sim_scope_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() { let mut r = rand::thread_rng(); }\n";
        assert_eq!(findings(src, true), vec![Rule::D1, Rule::D1]);
        assert!(findings(src, false).is_empty());
    }

    #[test]
    fn d1_applies_inside_test_modules_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = SystemTime::now(); }\n}\n";
        assert_eq!(findings(src, true), vec![Rule::D1]);
    }

    #[test]
    fn d1_ignores_comments_strings_and_doc_comments() {
        // The v1 substring scanner flagged all of these; the token
        // scanner must not.
        let src = "// Instant::now() would break determinism here\n\
                   /// Never call SystemTime::now() in engine code.\n\
                   /* thread_rng() is banned: /* even nested */ still banned */\n\
                   let s = \"Instant::now\";\n\
                   let r = r#\"rand::random inside a raw string\"#;\n\
                   let c = '\"';\n";
        assert!(findings(src, true).is_empty(), "{:?}", findings(src, true));
    }

    #[test]
    fn d1_matches_whole_identifiers_only() {
        // `Instantaneous` contains `Instant`; `thread_rng_like` contains
        // `thread_rng`. Neither is the banned token.
        let src = "struct Instantaneous;\nfn thread_rng_like() {}\nlet from_entropy_doc = 1;\n";
        assert!(findings(src, true).is_empty());
        assert!(engine_findings(src).is_empty(), "D5 `Instant` must not match a prefix");
    }

    #[test]
    fn d1_matches_spaced_paths() {
        // Tokens, not substrings: `Instant :: now` is the same call.
        let src = "let t = Instant :: now();\n";
        assert_eq!(findings(src, true), vec![Rule::D1]);
    }

    #[test]
    fn d2_flags_hash_containers_outside_tests() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n";
        assert_eq!(findings(src, true), vec![Rule::D2, Rule::D2]);
        assert!(findings(src, false).is_empty());
    }

    #[test]
    fn d2_exempts_cfg_test_modules() {
        let src = "struct S;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashSet;\n\
                       fn f() { let s: HashSet<u32> = HashSet::new(); }\n\
                   }\n\
                   fn after() { let m = std::collections::HashMap::<u8, u8>::new(); }\n";
        // Only the HashMap *after* the test module fires.
        let scan = scan_file("test.rs", src, true, false);
        assert_eq!(scan.findings.len(), 1);
        assert_eq!(scan.findings[0].line, 7);
    }

    #[test]
    fn d2_escape_hatch_same_or_previous_line() {
        let same = "let m: HashMap<u32, u32> = HashMap::new(); // lint: sorted-iter\n";
        assert!(findings(same, true).is_empty());
        let prev = "// lint: sorted-iter — get-only, never iterated\n\
                    let m: HashMap<u32, u32> = HashMap::new();\n";
        assert!(findings(prev, true).is_empty());
        let unjustified = "let m: HashMap<u32, u32> = HashMap::new();\n";
        assert_eq!(findings(unjustified, true), vec![Rule::D2]);
    }

    #[test]
    fn d2_ignores_comments_and_strings() {
        let src = "// a HashMap would be wrong here\n\
                   let msg = \"HashSet iteration order\";\n\
                   /// Compare with a HashMap-based design.\n";
        assert!(findings(src, true).is_empty());
    }

    #[test]
    fn d3_flags_nan_unsafe_comparators() {
        let one_line = "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(findings(one_line, false), vec![Rule::D3]);
        let multi = "xs.sort_by(|a, b| {\n\
                         a.partial_cmp(b)\n\
                             .expect(\"NaN\")\n\
                     });\n";
        assert_eq!(findings(multi, false), vec![Rule::D3]);
        let binary = "edges.binary_search_by(|e| e.partial_cmp(&x).expect(\"NaN edge\"));\n";
        assert_eq!(findings(binary, false), vec![Rule::D3]);
    }

    #[test]
    fn d3_allows_total_cmp_and_bare_partial_cmp() {
        let total = "xs.sort_by(|a, b| a.total_cmp(b));\n";
        assert!(findings(total, false).is_empty());
        // partial_cmp without unwrap/expect (e.g. returning an Option)
        // is not a panic site.
        let bare = "let o = a.partial_cmp(&b);\n";
        assert!(findings(bare, false).is_empty());
    }

    #[test]
    fn d4_flags_threading_in_engine_scope_only() {
        let src = "fn f() { rayon::join(|| a(), || b()); }\n\
                   fn g() { std::thread::spawn(|| {}); }\n\
                   fn h() { let v = items.into_par_iter().collect(); }\n";
        assert_eq!(engine_findings(src), vec![Rule::D4, Rule::D4, Rule::D4]);
        // The same code is fine outside the engine scope (core, runner,
        // analysis-side crates).
        assert!(findings(src, true).is_empty());
    }

    #[test]
    fn d4_exempts_test_modules_comments_and_strings() {
        let src = "// rayon would be wrong here\n\
                   let why = \"std::thread breaks replay\";\n\
                   fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn race() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n\
                   }\n";
        assert!(engine_findings(src).is_empty());
    }

    #[test]
    fn d4_one_finding_per_line() {
        let src = "fn f() { rayon::scope_map(v, std::thread::available_parallelism(), g); }\n";
        assert_eq!(engine_findings(src), vec![Rule::D4]);
    }

    #[test]
    fn d5_flags_wall_clock_types_in_engine_scope_only() {
        // No `::now()` call anywhere — D1 stays silent, D5 must not.
        let src = "use std::time::Duration;\n\
                   pub struct Meter { t0: Instant }\n\
                   pub fn f(m: &Meter) -> u128 { m.t0.elapsed().as_millis() }\n";
        assert_eq!(engine_findings(src), vec![Rule::D5, Rule::D5, Rule::D5]);
        // Outside the engine scope (core, runner, analysis side) the
        // same code is fine: wall-clock profiling lives there.
        assert!(findings(src, true).is_empty());
        assert!(findings(src, false).is_empty());
    }

    #[test]
    fn d5_defers_to_d1_on_the_same_line() {
        // The classic injected violation: one line carrying both the
        // type and the ::now() call must yield exactly one finding (D1).
        let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
        assert_eq!(engine_findings(src), vec![Rule::D1]);
    }

    #[test]
    fn d5_exempts_test_modules_comments_and_strings() {
        let src = "// an Instant would be wrong here\n\
                   let msg = \"SystemTime drift\";\n\
                   /// `.elapsed()` readings belong in the runner.\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(d: std::time::Duration) -> u64 { d.as_secs() }\n\
                   }\n";
        assert!(engine_findings(src).is_empty());
    }

    #[test]
    fn n1_counts_numeric_casts_in_non_test_sim_code() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n\
                   fn g(t: f64) -> u64 { t as u64 }\n\
                   fn h(n: usize) -> usize { n }\n";
        assert_eq!(n1_count(src), 2);
        // Outside sim scope nothing is counted.
        assert!(scan_file("t.rs", src, false, false).n1_sites.is_empty());
        // Cast sites carry the spelled-out target type.
        let sites = scan_file("t.rs", src, true, false).n1_sites;
        assert_eq!(sites[0].cast, "as u32");
        assert_eq!(sites[0].line, 1);
        assert_eq!(sites[1].cast, "as u64");
    }

    #[test]
    fn n1_two_casts_on_one_line_both_count() {
        let src = "let (a, b) = (x as u32, y as usize);\n";
        assert_eq!(n1_count(src), 2);
    }

    #[test]
    fn n1_exempts_tests_hatches_comments_and_non_numeric_as() {
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn t(x: u64) -> u32 { x as u32 }\n}\n";
        assert_eq!(n1_count(test_mod), 0);

        let hatched_same = "let e = big as u32; // lint: allow(N1, bounded by heap size)\n";
        assert_eq!(n1_count(hatched_same), 0);
        let hatched_prev = "// lint: allow(N1, slot index < 4 by construction)\n\
                            let s = slot as u8;\n";
        assert_eq!(n1_count(hatched_prev), 0);

        let comment = "// casting `t as u64` here would truncate\n\
                       let msg = \"x as u32\";\n";
        assert_eq!(n1_count(comment), 0);

        // `use x as y` renames and trait casts to non-numeric types are
        // not numeric casts.
        let renames = "use std::io::Result as IoResult;\nlet d = x as SimTime;\n";
        assert_eq!(n1_count(renames), 0);
    }

    #[test]
    fn n1_hatch_for_other_rules_does_not_silence_it() {
        let src = "// lint: allow(D2, unrelated)\nlet e = big as u32;\n";
        assert_eq!(n1_count(src), 1);
    }

    #[test]
    fn hatch_survives_an_intervening_comment() {
        // Regression: a hatch comment followed by further commentary
        // used to detach from the statement it annotates.
        let src = "// lint: sorted-iter — justification first\n\
                   // ...then two more lines of prose about why this\n\
                   // container is only ever read point-wise.\n\
                   \n\
                   let m: HashMap<u32, u32> = HashMap::new();\n";
        assert!(findings(src, true).is_empty(), "{:?}", findings(src, true));

        let allow = "// lint: allow(N1, bounded by construction)\n\
                     // (the slot index is always < 4)\n\
                     let s = slot as u8;\n";
        assert_eq!(n1_count(allow), 0);

        // The hatch attaches to the *next* code line only — code after
        // that line is not covered.
        let after = "// lint: sorted-iter\n\
                     let a = 1;\n\
                     let m: HashMap<u32, u32> = HashMap::new();\n";
        assert_eq!(findings(after, true), vec![Rule::D2]);
    }

    #[test]
    fn module_prefix_maps_files_to_paths() {
        assert_eq!(module_prefix("titan-gpu", "crates/gpu/src/lib.rs"), "titan_gpu");
        assert_eq!(module_prefix("titan-gpu", "crates/gpu/src/ecc.rs"), "titan_gpu::ecc");
        assert_eq!(
            module_prefix("titan-sim", "crates/simulator/src/engine/queue.rs"),
            "titan_sim::engine::queue"
        );
        assert_eq!(module_prefix("titan-sim", "crates/simulator/src/engine/mod.rs"), "titan_sim::engine");
        assert_eq!(module_prefix("titan-reliability", "src/main.rs"), "titan_reliability");
    }

    #[test]
    fn multiline_strings_no_longer_confuse_the_scanner() {
        // v1's line-based stripper couldn't see a string spanning
        // lines: the `HashMap` below sits inside one and must not flag,
        // and the stray `}` inside it must not unbalance test tracking.
        let src = "static DOC: &str = \"\n   HashMap iteration }\n   Instant::now()\n\";\n\
                   fn real() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let scan = scan_file("test.rs", src, true, true);
        let d2: Vec<usize> = scan
            .findings
            .iter()
            .filter(|f| f.rule == Rule::D2)
            .map(|f| f.line)
            .collect();
        assert_eq!(d2, vec![5], "{:?}", scan.findings);
        assert!(scan.findings.iter().all(|f| f.rule == Rule::D2));
    }
}
