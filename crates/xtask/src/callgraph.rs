//! The workspace call graph behind rule **T1** (interprocedural
//! determinism taint, see [`crate::taint`]).
//!
//! The token rules (D1/D2/D4/D5) and the structural rules (P2/E1/D6)
//! both stop at a function boundary: a helper that reads
//! `TITAN_NUM_THREADS`, casts a pointer to `usize`, or iterates a
//! `HashMap` can launder a nondeterministic value through one `fn`
//! call and write it into sim state unseen. This module harvests, per
//! function item in the [`crate::parser`] tree:
//!
//! - **call sites** — `name(...)`, `path::name(...)`, `.name(...)`,
//!   `Type::<T>::name(...)`, and `<Type as Trait>::name(...)` forms,
//!   each with its qualifier segments so [`crate::symbols::resolve_call`]
//!   can pick candidates across the manifest dependency DAG;
//! - a **summary**: the nondeterminism *sources* the body reads
//!   directly (env, wall clock, thread-width queries, pointer-address
//!   casts, hash iteration, entropy) and the *sinks* it feeds
//!   (assignments through `self`, mutating container/collector calls
//!   on `self`, stdout/report emission, digest inputs).
//!
//! Resolution is name-based (a zero-dependency-resolution linter has
//! no type information), so the graph *over*-approximates: a method
//! call may resolve to every visible workspace fn of that name. That
//! is the right direction for a taint analysis — a false edge can only
//! add a path to review, never hide one — and the `// lint:
//! allow(T1, reason)` hatch (on a source line or a call-site line)
//! prunes the reviewed ones.

use crate::lexer::{lex, Tok, TokKind};
use crate::parser::{self, Item, ItemKind};
use crate::{hatch_lines, HatchLine};

/// Keywords that can never be a callee name.
const CALL_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// Mutating methods that, called on a `self`-rooted place, count as a
/// sim-state write sink.
const MUTATOR_METHODS: &[&str] =
    &["append", "extend", "insert", "observe", "push", "push_str", "record"];

/// Output macros (stdout / report buffers / digest text).
const OUTPUT_MACROS: &[&str] = &["eprint", "eprintln", "print", "println", "write", "writeln"];

/// Direct digest/emission calls that count as output sinks.
const OUTPUT_CALLS: &[&str] = &["emit_console", "fnv1a", "write_bytes", "write_u64"];

/// Hash-container iteration methods (only a source when the body also
/// names `HashMap`/`HashSet` — see [`SourceKind::HashIter`]).
const HASH_ITER_METHODS: &[&str] = &["drain", "into_iter", "iter", "keys", "values"];

/// What kind of nondeterminism a taint source reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `env::var` / `env::var_os` / `env::vars` / `option_env!`.
    EnvRead,
    /// `Instant::now()`, `SystemTime::now()`, `.elapsed()`.
    WallClock,
    /// `available_parallelism`, `current_num_threads`, `num_cpus`,
    /// `thread::current`.
    ThreadQuery,
    /// A pointer-address observation: `.as_ptr() as <int>`,
    /// `.as_mut_ptr() as <int>`, `.addr()`.
    PtrAddr,
    /// Iteration over a `HashMap`/`HashSet` named in the same body.
    HashIter,
    /// `thread_rng`, `from_entropy`, `rand::random` (D1's set).
    Entropy,
}

impl SourceKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SourceKind::EnvRead => "env read",
            SourceKind::WallClock => "wall-clock read",
            SourceKind::ThreadQuery => "thread-width query",
            SourceKind::PtrAddr => "pointer-address cast",
            SourceKind::HashIter => "hash-order iteration",
            SourceKind::Entropy => "OS entropy",
        }
    }

    /// Kinds the *site-level* rules (D1/D2/D5) already police inside
    /// sim/engine scope. T1 reports these only when laundered across a
    /// call; the remaining kinds it reports intra-fn too.
    pub fn site_rule_covered(self) -> bool {
        matches!(self, SourceKind::WallClock | SourceKind::Entropy | SourceKind::HashIter)
    }
}

/// One direct nondeterminism read inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSource {
    pub kind: SourceKind,
    /// 1-based line of the read.
    pub line: usize,
    /// The read as written, e.g. `env::var("TITAN_NUM_THREADS")`.
    pub desc: String,
}

/// What a sink statement feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// Assignment / mutating call through a `self`-rooted place.
    StateWrite,
    /// stdout, report-buffer, or digest emission.
    Output,
}

impl SinkKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SinkKind::StateWrite => "a sim-state write",
            SinkKind::Output => "an output/digest emission",
        }
    }
}

/// One sink statement inside a fn body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkSite {
    pub kind: SinkKind,
    pub line: usize,
}

/// One call expression inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The callee's unqualified name (`step`, not `Engine::step`).
    pub name: String,
    /// Qualifier segments as written (`["Engine"]` for
    /// `Engine::step(..)`, `["fix_stats"]` for
    /// `fix_stats::host_width(..)`); empty for bare and method calls.
    pub quals: Vec<String>,
    /// True for `.name(...)` receiver calls.
    pub method: bool,
    /// 1-based line of the callee token.
    pub line: usize,
    /// A `// lint: allow(T1, ...)` hatch covers this line.
    pub hatched: bool,
}

/// One function node of the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Fully-qualified path (`titan_sim::engine::Engine::step`).
    pub path: String,
    /// Unqualified name (`step`).
    pub name: String,
    /// Enclosing impl/trait self-type name, if any (`Engine`).
    pub owner: Option<String>,
    /// Package name (`titan-sim`).
    pub pkg: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The file's crate is in [`crate::SIM_CRATE_DIRS`] scope (where T1
    /// sinks live).
    pub sim_scope: bool,
    pub sources: Vec<TaintSource>,
    pub sinks: Vec<SinkSite>,
    pub calls: Vec<CallSite>,
}

/// Harvests every non-test named fn of one file into call-graph nodes.
/// One lex + parse, same cost class as [`crate::rules::scan_structure`].
pub fn harvest_file(
    rel: &str,
    src: &str,
    module_prefix: &str,
    pkg: &str,
    sim_scope: bool,
) -> Vec<FnDecl> {
    let toks = lex(src);
    let code: Vec<Tok> = toks.iter().filter(|t| !t.kind.is_trivia()).copied().collect();
    let items = parser::parse(src, &toks);
    let hatches = hatch_lines(src, &toks);
    let mut out = Vec::new();
    walk(&items, module_prefix, None, rel, src, &code, &hatches, pkg, sim_scope, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn walk(
    items: &[Item],
    prefix: &str,
    owner: Option<&str>,
    rel: &str,
    src: &str,
    code: &[Tok],
    hatches: &[HatchLine],
    pkg: &str,
    sim_scope: bool,
    out: &mut Vec<FnDecl>,
) {
    for it in items {
        if it.cfg_test {
            continue; // test fns neither taint nor sink shipped state
        }
        match it.kind {
            ItemKind::Fn => {
                let Some((blo, bhi)) = it.body else { continue };
                let body: Vec<Tok> =
                    code.iter().filter(|t| t.start >= blo && t.end <= bhi).copied().collect();
                let mut decl = FnDecl {
                    path: join(prefix, &it.name),
                    name: it.name.clone(),
                    owner: owner.map(str::to_string),
                    pkg: pkg.to_string(),
                    file: rel.to_string(),
                    line: it.line,
                    sim_scope,
                    sources: Vec::new(),
                    sinks: Vec::new(),
                    calls: Vec::new(),
                };
                // The container-name check covers the whole item span:
                // a `HashMap` parameter taints iteration in the body.
                let names_hash = code.iter().any(|t| {
                    t.start >= it.start
                        && t.end <= bhi
                        && t.kind == TokKind::Ident
                        && matches!(t.text(src), "HashMap" | "HashSet")
                });
                scan_sources(src, &body, names_hash, hatches, &mut decl.sources);
                scan_sinks(src, &body, &mut decl.sinks);
                scan_calls(src, &body, hatches, &mut decl.calls);
                out.push(decl);
            }
            ItemKind::Module => {
                let nested = join(prefix, &it.name);
                walk(&it.children, &nested, None, rel, src, code, hatches, pkg, sim_scope, out);
            }
            ItemKind::Impl | ItemKind::Trait => {
                let nested = join(prefix, &it.name);
                walk(
                    &it.children,
                    &nested,
                    Some(&it.name),
                    rel,
                    src,
                    code,
                    hatches,
                    pkg,
                    sim_scope,
                    out,
                );
            }
            _ => {}
        }
    }
}

fn join(prefix: &str, name: &str) -> String {
    if name.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{name}")
    }
}

fn allowed(hatches: &[HatchLine], line: usize) -> bool {
    line >= 1
        && hatches
            .get(line - 1)
            .is_some_and(|h| h.allows.iter().any(|r| r == "T1"))
}

/// The text a needle sees: literal bodies are opaque.
fn ntext<'a>(src: &'a str, t: &Tok) -> &'a str {
    if t.kind.is_literal() {
        "\u{0}"
    } else {
        t.text(src)
    }
}

fn match_at(src: &str, toks: &[Tok], i: usize, needle: &[&str]) -> bool {
    toks.len().saturating_sub(i) >= needle.len()
        && needle.iter().enumerate().all(|(k, n)| ntext(src, &toks[i + k]) == *n)
}

/// Direct nondeterminism reads. Needles are token sequences (a
/// `HashMap` in a string or comment can never match). A `// lint:
/// allow(T1, reason)` on the read's line drops the source entirely —
/// every chain through it is then accepted as reviewed.
fn scan_sources(
    src: &str,
    body: &[Tok],
    names_hash_container: bool,
    hatches: &[HatchLine],
    out: &mut Vec<TaintSource>,
) {
    const ENV: &[&[&str]] = &[
        &["env", ":", ":", "var"],
        &["env", ":", ":", "var_os"],
        &["env", ":", ":", "vars"],
        &["option_env", "!"],
    ];
    const CLOCK: &[&[&str]] = &[
        &["Instant", ":", ":", "now"],
        &["SystemTime", ":", ":", "now"],
        &[".", "elapsed", "("],
    ];
    const THREADS: &[&[&str]] = &[
        &["available_parallelism"],
        &["current_num_threads"],
        &["num_cpus"],
        &["thread", ":", ":", "current"],
    ];
    const PTR: &[&[&str]] = &[
        &[".", "as_ptr", "(", ")", "as"],
        &[".", "as_mut_ptr", "(", ")", "as"],
        &[".", "addr", "(", ")"],
    ];
    const ENTROPY: &[&[&str]] =
        &[&["thread_rng"], &["from_entropy"], &["rand", ":", ":", "random"]];

    let mut push = |kind: SourceKind, line: usize, desc: String| {
        if !allowed(hatches, line)
            && !out.iter().any(|s| s.kind == kind && s.line == line)
        {
            out.push(TaintSource { kind, line, desc });
        }
    };

    for i in 0..body.len() {
        for (kind, needles) in [
            (SourceKind::EnvRead, ENV),
            (SourceKind::WallClock, CLOCK),
            (SourceKind::ThreadQuery, THREADS),
            (SourceKind::PtrAddr, PTR),
            (SourceKind::Entropy, ENTROPY),
        ] {
            for needle in needles {
                if match_at(src, body, i, needle) {
                    let mut desc: String =
                        needle.iter().take_while(|n| **n != "(").copied().collect();
                    // `env::var("NAME")` reads better with its key.
                    if kind == SourceKind::EnvRead {
                        if let Some(arg) = body.get(i + needle.len() + 1) {
                            if arg.kind.is_literal()
                                && ntext(src, body.get(i + needle.len()).unwrap_or(arg)) == "("
                            {
                                desc.push('(');
                                desc.push_str(arg.text(src));
                                desc.push(')');
                            }
                        }
                    }
                    push(kind, body[i].line, desc);
                }
            }
        }
        // Hash iteration: `.iter()`-family call in a body that names a
        // hash container. Coarse by construction (no types), but D2
        // already keeps hash containers out of sim crates, so this kind
        // matters in the analysis-side crates sim code calls into.
        if names_hash_container
            && ntext(src, &body[i]) == "."
            && body
                .get(i + 1)
                .is_some_and(|t| HASH_ITER_METHODS.contains(&ntext(src, t)))
            && body.get(i + 2).is_some_and(|t| ntext(src, t) == "(")
        {
            push(
                SourceKind::HashIter,
                body[i].line,
                format!("HashMap/HashSet .{}()", body[i + 1].text(src)),
            );
        }
    }
}

/// Sink statements: writes through `self` (assignment or mutating
/// call) and output/digest emission.
fn scan_sinks(src: &str, body: &[Tok], out: &mut Vec<SinkSite>) {
    let text = |i: usize| -> &str { body.get(i).map(|t| ntext(src, t)).unwrap_or("") };
    let mut push = |kind: SinkKind, line: usize| {
        if !out.iter().any(|s| s.kind == kind && s.line == line) {
            out.push(SinkSite { kind, line });
        }
    };
    for i in 0..body.len() {
        let t = &body[i];
        // Output macros and digest calls.
        if t.kind == TokKind::Ident {
            let name = t.text(src);
            if OUTPUT_MACROS.contains(&name) && text(i + 1) == "!" {
                push(SinkKind::Output, t.line);
            }
            if OUTPUT_CALLS.contains(&name) && text(i + 1) == "(" {
                push(SinkKind::Output, t.line);
            }
        }
        // `self`-rooted place: walk `.field`, `.0`, `[idx]` segments,
        // then look for an assignment operator or a mutator call.
        if t.kind == TokKind::Ident && t.text(src) == "self" {
            let mut j = i + 1;
            let mut segments = 0usize;
            let mut last_method: Option<&str> = None;
            loop {
                if text(j) == "." && body.get(j + 1).is_some_and(|n| {
                    n.kind == TokKind::Ident || n.kind == TokKind::Number
                }) {
                    last_method = Some(text(j + 1));
                    j += 2;
                    segments += 1;
                } else if text(j) == "[" {
                    // Skip the index group.
                    let mut depth = 0usize;
                    while j < body.len() {
                        match text(j) {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            if segments == 0 {
                continue;
            }
            // `self.place.push(x)` — the last chain segment is a call.
            if text(j) == "(" {
                if last_method.is_some_and(|m| MUTATOR_METHODS.contains(&m)) {
                    push(SinkKind::StateWrite, t.line);
                }
                continue;
            }
            // `self.place = x`, `self.place += x`, `self.place <<= x`.
            let assign = match text(j) {
                "=" => text(j + 1) != "=",
                "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" => text(j + 1) == "=",
                "<" => text(j + 1) == "<" && text(j + 2) == "=",
                ">" => text(j + 1) == ">" && text(j + 2) == "=",
                _ => false,
            };
            if assign {
                push(SinkKind::StateWrite, t.line);
            }
        }
    }
}

/// Call-site extraction: for every `(` that closes a callee, record
/// the name, qualifier segments, and whether it is a `.method()` call.
fn scan_calls(src: &str, body: &[Tok], hatches: &[HatchLine], out: &mut Vec<CallSite>) {
    let text = |i: usize| -> &str { body.get(i).map(|t| ntext(src, t)).unwrap_or("") };
    for i in 0..body.len() {
        if text(i) != "(" || i == 0 {
            continue;
        }
        // Find the callee ident directly before the `(`, looking
        // through a closing turbofish/UFCS `>`.
        let name_idx = match &body[i - 1] {
            t if t.kind == TokKind::Ident => {
                if CALL_KEYWORDS.contains(&t.text(src)) || t.text(src) == "self" {
                    continue;
                }
                i - 1
            }
            t if ntext(src, t) == ">" => {
                // `name::<T>(` / `Type::<T>::name(` close here only via
                // the generic group; the callee sits before the `::<`.
                let Some(lt) = open_angle(src, body, i - 1) else { continue };
                if lt >= 3
                    && text(lt - 1) == ":"
                    && text(lt - 2) == ":"
                    && body[lt - 3].kind == TokKind::Ident
                    && !CALL_KEYWORDS.contains(&body[lt - 3].text(src))
                {
                    lt - 3
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        // A macro invocation (`name!(...)`) never reaches here — the
        // `!` sits between the ident and the `(`. A nested `fn name(`
        // definition does; skip it.
        if name_idx >= 1 && text(name_idx - 1) == "fn" {
            continue;
        }
        let name = body[name_idx].text(src).to_string();
        let method = name_idx >= 1 && text(name_idx - 1) == ".";
        let quals = if method { Vec::new() } else { quals_before(src, body, name_idx) };
        let line = body[name_idx].line;
        // One record per (name, quals, line) is enough.
        let site = CallSite {
            name,
            quals,
            method,
            line,
            hatched: allowed(hatches, line),
        };
        if !out.contains(&site) {
            out.push(site);
        }
    }
}

/// For a `>` at `close`, the index of its matching `<` (angle groups
/// only nest with other angle brackets in path position).
fn open_angle(src: &str, body: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        match ntext(src, &body[j]) {
            ">" => depth += 1,
            "<" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Qualifier segments before `name_idx`, walking `seg::`, `Type::<T>::`
/// and `<Type as Trait>::` forms backward. Returns them in source
/// order.
fn quals_before(src: &str, body: &[Tok], name_idx: usize) -> Vec<String> {
    let text = |i: usize| -> &str { body.get(i).map(|t| ntext(src, t)).unwrap_or("") };
    let mut quals = Vec::new();
    let mut j = name_idx;
    while j >= 2 && text(j - 1) == ":" && text(j - 2) == ":" {
        if j < 3 {
            break;
        }
        let k = j - 3;
        let t = &body[k];
        if t.kind == TokKind::Ident {
            let q = t.text(src);
            if !matches!(q, "crate" | "self" | "super") {
                quals.push(q.to_string());
            }
            j = k;
        } else if ntext(src, t) == ">" {
            // `Type::<T>::name` (turbofish path segment) or
            // `<Type as Trait>::name` (UFCS): collect the idents inside
            // the angle group, minus `as`/lifetimes/keywords.
            let Some(lt) = open_angle(src, body, k) else { break };
            // Reversed here because the whole list is reversed below.
            for g in body[lt..=k].iter().rev() {
                if g.kind == TokKind::Ident && !CALL_KEYWORDS.contains(&g.text(src)) {
                    quals.push(g.text(src).to_string());
                }
            }
            j = lt;
        } else {
            break;
        }
    }
    quals.reverse();
    quals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harvest(src: &str) -> Vec<FnDecl> {
        harvest_file("crates/simulator/src/lib.rs", src, "titan_sim", "titan-sim", true)
    }

    fn one(src: &str) -> FnDecl {
        let fns = harvest(src);
        assert_eq!(fns.len(), 1, "{fns:?}");
        fns.into_iter().next().unwrap()
    }

    #[test]
    fn harvests_fn_paths_through_modules_and_impls() {
        let src = "mod host {\n\
                       pub fn width() -> usize { 1 }\n\
                   }\n\
                   pub struct Engine;\n\
                   impl Engine {\n\
                       pub fn step(&mut self) { host::width(); }\n\
                   }\n";
        let fns = harvest(src);
        let paths: Vec<&str> = fns.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, vec!["titan_sim::host::width", "titan_sim::Engine::step"]);
        assert_eq!(fns[1].owner.as_deref(), Some("Engine"));
        assert_eq!(fns[1].calls.len(), 1);
        assert_eq!(fns[1].calls[0].name, "width");
        assert_eq!(fns[1].calls[0].quals, vec!["host"]);
    }

    #[test]
    fn call_forms_free_method_path_turbofish_and_ufcs() {
        let src = "fn f(v: &mut Vec<u64>) {\n\
                       helper(1);\n\
                       v.push(2);\n\
                       fix_stats::host_width();\n\
                       Engine::step(v);\n\
                       parse::<u64>(\"4\");\n\
                       Vec::<u64>::with_capacity(8);\n\
                       <Fleet as Spare>::swap(v);\n\
                   }\n";
        let d = one(src);
        let got: Vec<(String, Vec<String>, bool)> =
            d.calls.iter().map(|c| (c.name.clone(), c.quals.clone(), c.method)).collect();
        assert_eq!(
            got,
            vec![
                ("helper".into(), vec![], false),
                ("push".into(), vec![], true),
                ("host_width".into(), vec!["fix_stats".into()], false),
                ("step".into(), vec!["Engine".into()], false),
                ("parse".into(), vec![], false),
                ("with_capacity".into(), vec!["Vec".into(), "u64".into()], false),
                ("swap".into(), vec!["Fleet".into(), "Spare".into()], false),
            ],
            "{:?}",
            d.calls
        );
    }

    #[test]
    fn keywords_macros_and_nested_fn_defs_are_not_calls() {
        let src = "fn f(x: u64) -> u64 {\n\
                       if (x > 1) { return g(x); }\n\
                       assert!(x < 10);\n\
                       fn nested(y: u64) -> u64 { y }\n\
                       nested(x)\n\
                   }\n";
        let d = one(src);
        let names: Vec<&str> = d.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g", "nested"], "{:?}", d.calls);
    }

    #[test]
    fn sources_cover_env_clock_threads_ptr_and_hash_iter() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>, s: &str) -> usize {\n\
                       let w = std::env::var(\"TITAN_NUM_THREADS\");\n\
                       let t = Instant::now();\n\
                       let p = std::thread::available_parallelism();\n\
                       let a = s.as_ptr() as usize;\n\
                       let n: usize = m.values().count();\n\
                       a + n\n\
                   }\n";
        let d = one(src);
        let kinds: Vec<SourceKind> = d.sources.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SourceKind::EnvRead,
                SourceKind::WallClock,
                SourceKind::ThreadQuery,
                SourceKind::PtrAddr,
                SourceKind::HashIter,
            ],
            "{:?}",
            d.sources
        );
        assert_eq!(d.sources[0].desc, "env::var(\"TITAN_NUM_THREADS\")");
        assert_eq!(d.sources[0].line, 2);
    }

    #[test]
    fn sources_skip_strings_comments_and_hatched_lines() {
        let src = "fn f() -> usize {\n\
                       // env::var(\"X\") in a comment is fine\n\
                       let s = \"Instant::now()\";\n\
                       // lint: allow(T1, width is clamped to the replicate pool cap)\n\
                       let w = std::env::var(\"W\").map(|v| v.len()).unwrap_or(1);\n\
                       s.len() + w\n\
                   }\n";
        let d = one(src);
        assert!(d.sources.is_empty(), "{:?}", d.sources);
    }

    #[test]
    fn iter_without_hash_container_is_not_a_source() {
        let src = "fn f(v: &[u64]) -> u64 { v.iter().sum() }\n";
        assert!(one(src).sources.is_empty());
    }

    #[test]
    fn sinks_cover_self_writes_mutators_and_output() {
        let src = "impl Engine {\n\
                       fn a(&mut self, w: usize) { self.width = w; }\n\
                       fn b(&mut self, n: u64) { self.counts[2] += n; }\n\
                       fn c(&mut self, s: String) { self.log.push(s); }\n\
                       fn d(&self, buf: &mut String) { let _ = writeln!(buf, \"x\"); }\n\
                       fn e(&self, h: u64) -> u64 { fnv1a(h, b\"x\") }\n\
                       fn f(&self, w: usize) -> bool { self.width == w }\n\
                       fn g(&self) -> usize { self.width }\n\
                   }\n";
        let fns = harvest(src);
        let kind = |i: usize| fns[i].sinks.first().map(|s| s.kind);
        assert_eq!(kind(0), Some(SinkKind::StateWrite), "{:?}", fns[0]);
        assert_eq!(kind(1), Some(SinkKind::StateWrite), "{:?}", fns[1]);
        assert_eq!(kind(2), Some(SinkKind::StateWrite), "{:?}", fns[2]);
        assert_eq!(kind(3), Some(SinkKind::Output));
        assert_eq!(kind(4), Some(SinkKind::Output));
        assert_eq!(kind(5), None, "comparison is not a write: {:?}", fns[5].sinks);
        assert_eq!(kind(6), None, "read is not a write");
    }

    #[test]
    fn test_gated_fns_are_excluded() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { std::env::var(\"X\").ok(); }\n\
                   }\n\
                   fn live() {}\n";
        let fns = harvest(src);
        let paths: Vec<&str> = fns.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(paths, vec!["titan_sim::live"]);
    }
}
