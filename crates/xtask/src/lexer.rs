//! A small hand-rolled Rust lexer for titan-lint.
//!
//! The v1 scanner matched rule tokens as raw substrings over
//! comment-stripped lines, which meant `Instantaneous` tripped the
//! `Instant` ban and a doc comment mentioning `HashMap` could page an
//! operator. Everything in v2 matches *real tokens* instead: this
//! module turns source text into a flat token stream with byte spans,
//! and the rules match needle token sequences against it.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic.** The lexer runs in CI over arbitrary checkouts
//!    (including fixtures that are deliberately malformed Rust). Any
//!    byte sequence must lex; unterminated literals extend to EOF.
//! 2. **Round-trip.** The concatenation of all token texts is exactly
//!    the input — no byte is dropped or invented. A property test
//!    pins this over arbitrary input.
//! 3. **std-only and cheap.** The lint runs on a cold checkout before
//!    any dependency resolution.
//!
//! It is *not* a full Rust lexer: numeric literal grammar is
//! approximate and tokens carry no semantic info beyond their kind.
//! That is enough for every rule titan-lint defines — the rules only
//! need to know "is this byte range code, a comment, or a literal,
//! and what identifier/punctuation does it spell".

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` to end of line (not a doc comment).
    LineComment,
    /// `/// ...` or `//! ...` to end of line.
    DocComment,
    /// `/* ... */`, nesting respected; `/** */` and `/*! */` included.
    BlockComment,
    /// `"..."`, `b"..."`, escapes respected; may span lines.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#` — no escapes, hash-counted.
    RawStr,
    /// `'x'`, `'\n'`, `'"'`, `b'x'`.
    Char,
    /// `'a`, `'static`, `'_` — a quote followed by an identifier with
    /// no closing quote.
    Lifetime,
    /// Identifiers and keywords (`as`, `fn`, `HashMap`, ...).
    Ident,
    /// Numeric literal (approximate grammar: digits, `_`, type
    /// suffixes, `0x...`, and `1.5`-style decimals).
    Number,
    /// Any other single character.
    Punct,
}

impl TokKind {
    /// Comments and whitespace — never matched by rules.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokKind::Whitespace
                | TokKind::LineComment
                | TokKind::DocComment
                | TokKind::BlockComment
        )
    }

    /// Any comment flavor.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokKind::LineComment | TokKind::DocComment | TokKind::BlockComment
        )
    }

    /// String/char literal — present in the code stream but its *body*
    /// must never match a rule needle.
    pub fn is_literal(self) -> bool {
        matches!(self, TokKind::Str | TokKind::RawStr | TokKind::Char)
    }
}

/// One token: kind plus byte span plus the 1-based line its first byte
/// sits on. Slice the source with `&src[start..end]` for the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
}

impl Tok {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a complete, contiguous token stream.
///
/// Guarantees: never panics; `toks` spans partition `0..src.len()`
/// exactly in order (round-trip); every span lies on UTF-8 char
/// boundaries.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            self.out.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.out
    }

    /// First char at the cursor (the cursor always sits on a char
    /// boundary because every consumer advances by whole chars).
    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_byte(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances past one char, tracking line numbers.
    fn bump(&mut self) {
        if let Some(c) = self.peek_char() {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += c.len_utf8();
        } else {
            // Defensive: out of input. Callers check first.
            self.pos = self.bytes.len();
        }
    }

    fn next_kind(&mut self) -> TokKind {
        let c = match self.peek_char() {
            Some(c) => c,
            None => return TokKind::Whitespace, // unreachable; run() guards
        };

        if c.is_whitespace() {
            while self.peek_char().is_some_and(|c| c.is_whitespace()) {
                self.bump();
            }
            return TokKind::Whitespace;
        }

        // A shebang line (`#!/usr/bin/env ...`) is only special at byte
        // 0, and `#![...]` is an inner attribute, not a shebang.
        if c == '#'
            && self.pos == 0
            && self.peek_byte(1) == Some(b'!')
            && self.peek_byte(2) != Some(b'[')
        {
            while self.peek_char().is_some_and(|c| c != '\n') {
                self.bump();
            }
            return TokKind::LineComment;
        }

        if c == '/' {
            match self.peek_byte(1) {
                Some(b'/') => return self.line_comment(),
                Some(b'*') => return self.block_comment(),
                _ => {}
            }
        }

        // Raw strings and byte strings: r" r#" br" b" b' prefixes.
        if c == 'r' || c == 'b' {
            if let Some(kind) = self.try_prefixed_literal() {
                return kind;
            }
        }

        if c == '"' {
            self.bump();
            self.string_body();
            return TokKind::Str;
        }

        if c == '\'' {
            return self.quote();
        }

        if is_ident_start(c) {
            while self.peek_char().is_some_and(is_ident_continue) {
                self.bump();
            }
            return TokKind::Ident;
        }

        if c.is_ascii_digit() {
            return self.number();
        }

        self.bump();
        TokKind::Punct
    }

    fn line_comment(&mut self) -> TokKind {
        // Cursor on the first '/'. `///x` is doc, `////x` is not
        // (rustdoc's own rule); `//!` is inner doc.
        let doc = match (self.peek_byte(2), self.peek_byte(3)) {
            (Some(b'!'), _) => true,
            (Some(b'/'), Some(b'/')) => false,
            (Some(b'/'), _) => true,
            _ => false,
        };
        while self.peek_char().is_some_and(|c| c != '\n') {
            self.bump();
        }
        if doc {
            TokKind::DocComment
        } else {
            TokKind::LineComment
        }
    }

    fn block_comment(&mut self) -> TokKind {
        // Cursor on '/', next is '*'. Rust block comments nest.
        let doc = matches!(self.peek_byte(2), Some(b'*' | b'!'))
            && self.peek_byte(3) != Some(b'/'); // `/**/` is empty, not doc
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek_byte(0), self.peek_byte(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: extends to EOF
            }
        }
        if doc {
            TokKind::DocComment
        } else {
            TokKind::BlockComment
        }
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns None when
    /// the `r`/`b` is just an identifier head (`radius`, `b2`).
    fn try_prefixed_literal(&mut self) -> Option<TokKind> {
        let rest = &self.bytes[self.pos..];
        let (prefix_len, raw, byte_char) = match rest {
            [b'b', b'r', b'"' | b'#', ..] => (2, true, false),
            [b'r', b'b', b'"' | b'#', ..] => (2, true, false), // rb"" (reserved; lex anyway)
            [b'b', b'"', ..] => (1, false, false),
            [b'b', b'\'', ..] => (1, false, true),
            [b'r', b'"' | b'#', ..] => (1, true, false),
            _ => return None,
        };
        if raw {
            // Count hashes after the prefix; a raw string needs `#*"`.
            let mut hashes = 0usize;
            while rest.get(prefix_len + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if rest.get(prefix_len + hashes) != Some(&b'"') {
                // `r#foo` is a raw identifier, not a raw string: lex the
                // whole `r#foo` as one Ident so rules see it as a name
                // (its text keeps the `r#` prefix). Anything else
                // (`r#1`, `r##x`) falls back to ident/punct lexing.
                if prefix_len == 1 && hashes == 1 && rest[0] == b'r' {
                    let after = self.src[self.pos + 2..].chars().next();
                    if after.is_some_and(is_ident_start) {
                        self.bump(); // 'r'
                        self.bump(); // '#'
                        while self.peek_char().is_some_and(is_ident_continue) {
                            self.bump();
                        }
                        return Some(TokKind::Ident);
                    }
                }
                return None; // lex as ident/punct
            }
            for _ in 0..prefix_len + hashes + 1 {
                self.bump();
            }
            // Scan for `"` followed by `hashes` hashes.
            'scan: while let Some(b) = self.peek_byte(0) {
                if b == b'"' {
                    for k in 0..hashes {
                        if self.peek_byte(1 + k) != Some(b'#') {
                            self.bump();
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes + 1 {
                        self.bump();
                    }
                    return Some(TokKind::RawStr);
                }
                self.bump();
            }
            return Some(TokKind::RawStr); // unterminated: to EOF
        }
        if byte_char {
            self.bump(); // 'b'
            return Some(self.quote());
        }
        self.bump(); // 'b'
        self.bump(); // '"'
        self.string_body();
        Some(TokKind::Str)
    }

    /// Consumes a normal string body after the opening quote.
    fn string_body(&mut self) {
        while let Some(c) = self.peek_char() {
            match c {
                '\\' => {
                    self.bump();
                    if self.peek_char().is_some() {
                        self.bump();
                    }
                }
                '"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
        // Unterminated: extends to EOF.
    }

    /// Disambiguates `'a'` (char), `'\n'` (char), `'"'` (char),
    /// `'static` (lifetime). Cursor on the `'`.
    fn quote(&mut self) -> TokKind {
        self.bump(); // the quote
        match self.peek_char() {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                if self.peek_char().is_some() {
                    self.bump(); // the escaped char (n, \, u, ...)
                }
                // `\u{1F980}`-style payloads: walk to the quote.
                while let Some(c) = self.peek_char() {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                TokKind::Char
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // `'a'` is a char literal iff a quote directly follows
                // the one payload char; otherwise it's a lifetime.
                let after = self.src[self.pos + c.len_utf8()..].chars().next();
                if after == Some('\'') {
                    self.bump(); // payload
                    self.bump(); // closing quote
                    TokKind::Char
                } else {
                    while self.peek_char().is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    TokKind::Lifetime
                }
            }
            Some('\'') => {
                // `''` — empty/garbage; consume the second quote so we
                // always advance past both.
                self.bump();
                TokKind::Char
            }
            Some(_) => {
                // `'"'`, `'('`, any other single-char literal.
                self.bump();
                if self.peek_char() == Some('\'') {
                    self.bump();
                }
                TokKind::Char
            }
            None => TokKind::Char, // lone trailing quote
        }
    }

    fn number(&mut self) -> TokKind {
        // Digits, `_`, letters (covers 0x1F, suffixes like u64/f32),
        // and a `.` only when directly followed by a digit — so `0..n`
        // leaves the range dots alone.
        self.bump();
        loop {
            match self.peek_char() {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => self.bump(),
                Some('.') => {
                    let mut it = self.src[self.pos..].chars();
                    it.next();
                    if it.next().is_some_and(|d| d.is_ascii_digit()) {
                        self.bump(); // '.'
                        self.bump(); // first fractional digit
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        TokKind::Number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lexer must round-trip");
        // Spans partition the input.
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap/overlap at {pos}");
            assert!(t.end > t.start, "empty token at {pos}");
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn idents_and_punct() {
        let src = "fn f(x: u32) -> u64 { x as u64 }";
        roundtrip(src);
        let code: Vec<&str> = lex(src)
            .iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            code,
            vec!["fn", "f", "(", "x", ":", "u32", ")", "-", ">", "u64", "{", "x", "as", "u64", "}"]
        );
    }

    #[test]
    fn line_and_doc_comments() {
        let src = "// plain\n/// doc\n//! inner doc\n//// not doc\nlet x = 1;\n";
        roundtrip(src);
        let comments: Vec<(TokKind, &str)> = kinds(src)
            .into_iter()
            .filter(|(k, _)| k.is_comment())
            .collect();
        assert_eq!(
            comments,
            vec![
                (TokKind::LineComment, "// plain"),
                (TokKind::DocComment, "/// doc"),
                (TokKind::DocComment, "//! inner doc"),
                (TokKind::LineComment, "//// not doc"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still comment */ b";
        roundtrip(src);
        let got = kinds(src);
        assert_eq!(got[0], (TokKind::Ident, "a"));
        assert_eq!(
            got[2],
            (TokKind::BlockComment, "/* one /* two */ still comment */")
        );
        assert_eq!(got[4], (TokKind::Ident, "b"));
    }

    #[test]
    fn unterminated_block_comment_extends_to_eof() {
        let src = "x /* never closed";
        roundtrip(src);
        assert_eq!(lex(src).last().unwrap().kind, TokKind::BlockComment);
    }

    #[test]
    fn strings_with_escapes() {
        let src = r#"let s = "a \" b \\"; let t = "HashMap";"#;
        roundtrip(src);
        let strs: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(strs, vec![r#""a \" b \\""#, r#""HashMap""#]);
    }

    #[test]
    fn raw_strings_hash_counted() {
        let src = r##"let s = r#"contains "quotes" and \ backslash"#; done"##;
        roundtrip(src);
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::RawStr && t.contains("quotes")));
        assert_eq!(toks.last().unwrap(), &(TokKind::Ident, "done"));
    }

    #[test]
    fn raw_string_multi_hash_and_byte_string() {
        let src = "r##\"inner \"# still\"## + b\"bytes\" + br#\"raw bytes\"#";
        roundtrip(src);
        let got: Vec<TokKind> = lex(src)
            .iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            got,
            vec![
                TokKind::RawStr,
                TokKind::Punct,
                TokKind::Str,
                TokKind::Punct,
                TokKind::RawStr
            ]
        );
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let src = "let a = \"line one\nline two\";\nlet b = 3;";
        roundtrip(src);
        let b_tok = lex(src)
            .into_iter()
            .find(|t| t.text(src) == "b")
            .expect("b token");
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "let c = 'x'; let q = '\"'; let n = '\\n'; fn f<'a>(v: &'a str) -> &'static str { v }";
        roundtrip(src);
        let got: Vec<(TokKind, &str)> = kinds(src)
            .into_iter()
            .filter(|(k, _)| matches!(k, TokKind::Char | TokKind::Lifetime))
            .collect();
        assert_eq!(
            got,
            vec![
                (TokKind::Char, "'x'"),
                (TokKind::Char, "'\"'"),
                (TokKind::Char, "'\\n'"),
                (TokKind::Lifetime, "'a"),
                (TokKind::Lifetime, "'a"),
                (TokKind::Lifetime, "'static"),
            ]
        );
    }

    #[test]
    fn numbers_leave_range_dots() {
        let src = "for i in 0..10 { let f = 1.5e3; let h = 0xFF_u64; }";
        roundtrip(src);
        let nums: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e3", "0xFF_u64"]);
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        let src = "struct r#type { r#fn: u32 } let x = r#match;";
        roundtrip(src);
        let idents: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            idents,
            vec!["struct", "r#type", "r#fn", "u32", "let", "x", "r#match"]
        );
        // Raw strings after a raw identifier still lex as raw strings.
        let mixed = "let r#type = r#\"raw string\"#;";
        roundtrip(mixed);
        let kinds: Vec<TokKind> = lex(mixed)
            .iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident, // let
                TokKind::Ident, // r#type
                TokKind::Punct, // =
                TokKind::RawStr,
                TokKind::Punct, // ;
            ]
        );
        // `r#1` is not a raw identifier; it must still lex (as punct soup).
        roundtrip("r#1 r## r");
    }

    #[test]
    fn shebang_line_is_a_comment_only_at_byte_zero() {
        let src = "#!/usr/bin/env run-cargo-script\nfn main() {}\n";
        roundtrip(src);
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[0].text(src), "#!/usr/bin/env run-cargo-script");
        // `#![...]` at byte 0 is an inner attribute, not a shebang.
        let attr = "#![allow(dead_code)]\nfn main() {}\n";
        roundtrip(attr);
        assert_eq!(lex(attr)[0].kind, TokKind::Punct);
        // `#!` later in the file is just punctuation.
        let late = "fn f() {}\n#!/not/a/shebang\n";
        roundtrip(late);
        assert!(lex(late).iter().all(|t| t.text(late) != "#!/not/a/shebang"));
    }

    #[test]
    fn unicode_content_round_trips() {
        for src in [
            "let s = \"héllo → 🦀\"; // commentaire ✓",
            "él /* ∆ */ 'λ' r\"Ω\"",
            "\u{0}\u{1}ident\u{7f}",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn pathological_quotes_never_panic() {
        for src in ["'", "''", "'''", "b'", "r#", "r#\"", "\"", "\\", "'\\", "b\"", "br#\"x"] {
            roundtrip(src);
        }
    }
}
