//! A std-only recursive-descent *item* parser over the titan-lint
//! lexer.
//!
//! Token matching (v2) answers "does this line spell a banned token";
//! it cannot answer "which function does this panic site belong to",
//! "is this draw inside a comparator closure", or "is this `pub` item
//! ever referenced". Those questions need structure, so this module
//! turns the token stream into an **item tree**: modules, functions,
//! impl blocks, traits, type definitions, and closures, each with an
//! exact byte span.
//!
//! Design constraints, inherited from the lexer:
//!
//! 1. **Never panic, on any input.** The parser runs over deliberately
//!    malformed fixtures; every scan is bounded and unmatched brackets
//!    clamp to the end of the file.
//! 2. **Spans partition and nest.** Every item's span starts and ends
//!    on code-token boundaries; sibling spans are disjoint and ordered;
//!    a child's span lies strictly inside its parent's body. Tokens not
//!    covered by any item belong to the innermost enclosing item (or
//!    the file). `tests/parser_prop.rs` pins this over the real
//!    workspace and over adversarial input.
//! 3. **std-only and cheap** — it runs on a cold checkout.
//!
//! It is *not* a full Rust parser: expressions are opaque except for
//! closure discovery, generics are skipped by bracket matching, and
//! macro bodies are treated as token soup. That is exactly enough for
//! the structural rules (P2, E1, D6, X1) titan-lint defines.

use crate::lexer::{Tok, TokKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Module,
    Fn,
    Impl,
    Trait,
    Struct,
    Enum,
    Union,
    Const,
    Static,
    TypeAlias,
    Use,
    ExternCrate,
    ForeignMod,
    MacroDef,
    /// A closure inside a function body.
    Closure,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// The declared name (`""` for closures, impls carry the self
    /// type's last path segment, `use` items the full path).
    pub name: String,
    /// Declared with plain `pub` (not `pub(crate)`/`pub(super)`).
    pub vis_pub: bool,
    /// Carries `#[cfg(test)]` / `#[test]`, directly or inherited.
    pub cfg_test: bool,
    /// Carries a `#[must_use]` attribute directly.
    pub must_use: bool,
    /// Byte span of the whole item, attributes included; `end` is
    /// exclusive and lands on a token boundary.
    pub start: usize,
    pub end: usize,
    /// Byte span of the `{ ... }` body, braces included, if any.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the item keyword (`fn`, `mod`, ...).
    pub line: usize,
    /// For closures: the call the closure is an argument of
    /// (`sort_by`, `retain`, ...), when syntactically evident.
    pub ctx: Option<String>,
    /// For impls: the trait name when this is `impl Trait for Type`.
    pub trait_of: Option<String>,
    pub children: Vec<Item>,
}

impl Item {
    /// Depth-first walk over this item and all descendants.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Item)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// Item keywords that start a definition the parser understands.
const ITEM_KEYWORDS: &[&str] = &[
    "mod", "fn", "impl", "trait", "struct", "enum", "union", "const", "static", "type", "use",
    "extern", "macro_rules",
];

/// Parses a full file into its top-level items. Trivia tokens are
/// ignored; stray tokens between items are left to the (implicit) file
/// root.
pub fn parse(src: &str, toks: &[Tok]) -> Vec<Item> {
    let code: Vec<Tok> = toks.iter().filter(|t| !t.kind.is_trivia()).copied().collect();
    let p = Parser { src, code: &code };
    p.items(0, code.len(), false)
}

/// Convenience: lex + parse in one call.
pub fn parse_source(src: &str) -> Vec<Item> {
    parse(src, &crate::lexer::lex(src))
}

struct Parser<'a> {
    src: &'a str,
    code: &'a [Tok],
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.code.get(i).map(|t| t.text(self.src)).unwrap_or("")
    }

    fn is_ident(&self, i: usize, what: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.src) == what)
    }

    /// Skips a balanced bracket group starting at `i` (which must sit on
    /// `(`, `[`, `{`, or `<`). Returns the index just past the matching
    /// closer, clamped to `end` when unbalanced.
    fn skip_group(&self, i: usize, end: usize) -> usize {
        let (open, close) = match self.text(i) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            "<" => ("<", ">"),
            _ => return (i + 1).min(end),
        };
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            } else if open == "<" && (t == "(" || t == "[" || t == "{") {
                // Bracketed sub-groups inside generics (`Fn(A) -> B`)
                // may contain stray `<`/`>` comparisons; skip them
                // opaquely so they cannot unbalance the angle count.
                j = self.skip_group(j, end);
                continue;
            }
            j += 1;
        }
        end
    }

    /// Parses items in `[i, end)`. `in_test` marks an enclosing
    /// `#[cfg(test)]` region.
    fn items(&self, mut i: usize, end: usize, in_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while i < end {
            match self.item(i, end, in_test) {
                Some(item) => {
                    debug_assert!(item.next > i, "parser must always advance");
                    i = item.next.max(i + 1);
                    if let Some(node) = item.node {
                        out.push(node);
                    }
                }
                None => i += 1,
            }
        }
        out
    }

    /// Tries to parse one item starting at token `i`. Returns the next
    /// token index and (when `i` really started an item) the node.
    fn item(&self, start: usize, end: usize, in_test: bool) -> Option<Parsed> {
        let mut i = start;
        let mut cfg_test = in_test;
        let mut must_use = false;

        // Leading attributes. `#![...]` (inner attrs) are not items and
        // not attached to the next one; consume and yield no node.
        while self.text(i) == "#" {
            if self.text(i + 1) == "!" {
                let next = self.skip_group(i + 2, end);
                return Some(Parsed { next, node: None });
            }
            if self.text(i + 1) != "[" {
                return None;
            }
            let after = self.skip_group(i + 1, end);
            if self.attr_is_test(i + 1, after) {
                cfg_test = true;
            }
            if self.is_ident(i + 2, "must_use") {
                must_use = true;
            }
            i = after;
        }

        // Visibility + leading modifiers.
        let mut vis_pub = false;
        loop {
            match self.text(i) {
                "pub" => {
                    if self.text(i + 1) == "(" {
                        i = self.skip_group(i + 1, end); // pub(crate), pub(super), ...
                    } else {
                        vis_pub = true;
                        i += 1;
                    }
                }
                "default" | "unsafe" | "async" => i += 1,
                "const" if self.is_ident(i + 1, "fn") => i += 1,
                "extern"
                    if self
                        .code
                        .get(i + 1)
                        .is_some_and(|t| t.kind == TokKind::Str) =>
                {
                    // `extern "C" fn` modifier vs `extern "C" { ... }`
                    // foreign module: peek past the ABI string.
                    if self.text(i + 2) == "{" {
                        break;
                    }
                    i += 2;
                }
                _ => break,
            }
            if i >= end {
                return Some(Parsed { next: end, node: None });
            }
        }

        let kw_tok = self.code.get(i)?;
        if kw_tok.kind != TokKind::Ident {
            return None;
        }
        let kw = kw_tok.text(self.src);
        if !ITEM_KEYWORDS.contains(&kw) {
            return None;
        }
        let line = kw_tok.line;

        let mk = |kind, name: String, next: usize, body, ctx, trait_of, children| {
            let span_end = self
                .code
                .get(next.saturating_sub(1).max(start))
                .map(|t| t.end)
                .unwrap_or(kw_tok.end)
                .max(kw_tok.end);
            Some(Parsed {
                next,
                node: Some(Item {
                    kind,
                    name,
                    vis_pub,
                    cfg_test,
                    must_use,
                    start: self.code[start].start,
                    end: span_end,
                    body,
                    line,
                    ctx,
                    trait_of,
                    children,
                }),
            })
        };

        match kw {
            "mod" => {
                let name = self.ident_at(i + 1).unwrap_or_default();
                let mut j = i + 2;
                if self.text(j) == ";" {
                    return mk(ItemKind::Module, name, j + 1, None, None, None, Vec::new());
                }
                // Scan to the body brace (a `mod` has nothing between
                // name and `{` in valid code; stay bounded regardless).
                while j < end && self.text(j) != "{" && self.text(j) != ";" {
                    j += 1;
                }
                if self.text(j) == ";" {
                    return mk(ItemKind::Module, name, j + 1, None, None, None, Vec::new());
                }
                let close = self.skip_group(j, end);
                let children = self.items(j + 1, close.saturating_sub(1), cfg_test);
                let body = self.brace_span(j, close);
                mk(ItemKind::Module, name, close, body, None, None, children)
            }
            "fn" => {
                let name = self.ident_at(i + 1).unwrap_or_default();
                let (body_open, next) = self.seek_body(i + 2, end);
                match body_open {
                    None => mk(ItemKind::Fn, name, next, None, None, None, Vec::new()),
                    Some(open) => {
                        let close = self.skip_group(open, end);
                        let children =
                            self.closures(open + 1, close.saturating_sub(1), cfg_test);
                        mk(
                            ItemKind::Fn,
                            name,
                            close,
                            self.brace_span(open, close),
                            None,
                            None,
                            children,
                        )
                    }
                }
            }
            "impl" | "trait" => {
                let (body_open, next) = self.seek_body(i + 1, end);
                let Some(open) = body_open else {
                    // `impl Foo;` / unterminated header: no body, no kids.
                    let kind = if kw == "impl" { ItemKind::Impl } else { ItemKind::Trait };
                    return mk(kind, String::new(), next, None, None, None, Vec::new());
                };
                let close = self.skip_group(open, end);
                let children = self.items(open + 1, close.saturating_sub(1), cfg_test);
                let body = self.brace_span(open, close);
                if kw == "trait" {
                    let name = self.ident_at(i + 1).unwrap_or_default();
                    return mk(ItemKind::Trait, name, close, body, None, None, children);
                }
                let (name, trait_of) = self.impl_header(i + 1, open);
                mk(ItemKind::Impl, name, close, body, None, trait_of, children)
            }
            "struct" | "enum" | "union" => {
                let kind = match kw {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    _ => ItemKind::Union,
                };
                let name = self.ident_at(i + 1).unwrap_or_default();
                let (body_open, next) = self.seek_body(i + 2, end);
                match body_open {
                    None => mk(kind, name, next, None, None, None, Vec::new()),
                    Some(open) => {
                        let close = self.skip_group(open, end);
                        mk(kind, name, close, self.brace_span(open, close), None, None, Vec::new())
                    }
                }
            }
            "const" | "static" => {
                let kind = if kw == "const" { ItemKind::Const } else { ItemKind::Static };
                // `static mut NAME`, `const NAME`, `const _`.
                let mut j = i + 1;
                if self.text(j) == "mut" {
                    j += 1;
                }
                let name = if self.text(j) == "_" {
                    "_".to_string()
                } else {
                    self.ident_at(j).unwrap_or_default()
                };
                let next = self.seek_semi(j, end);
                mk(kind, name, next, None, None, None, Vec::new())
            }
            "type" => {
                let name = self.ident_at(i + 1).unwrap_or_default();
                let next = self.seek_semi(i + 2, end);
                mk(ItemKind::TypeAlias, name, next, None, None, None, Vec::new())
            }
            "use" => {
                let next = self.seek_semi(i + 1, end);
                // Record the raw path text (`titan_faults::telemetry::*`)
                // so the symbol layer can resolve cross-crate edges.
                let path: String = (i + 1..next.saturating_sub(1))
                    .map(|k| self.text(k))
                    .collect();
                mk(ItemKind::Use, path, next, None, None, None, Vec::new())
            }
            "extern" => {
                if self.is_ident(i + 1, "crate") {
                    let name = self.ident_at(i + 2).unwrap_or_default();
                    let next = self.seek_semi(i + 2, end);
                    return mk(ItemKind::ExternCrate, name, next, None, None, None, Vec::new());
                }
                // `extern "C" { ... }` foreign module: opaque body.
                let (body_open, next) = self.seek_body(i + 1, end);
                match body_open {
                    None => mk(ItemKind::ForeignMod, String::new(), next, None, None, None, Vec::new()),
                    Some(open) => {
                        let close = self.skip_group(open, end);
                        mk(
                            ItemKind::ForeignMod,
                            String::new(),
                            close,
                            self.brace_span(open, close),
                            None,
                            None,
                            Vec::new(),
                        )
                    }
                }
            }
            "macro_rules" => {
                // macro_rules ! name { ... } — or ( ... ); / [ ... ];
                let name = self.ident_at(i + 2).unwrap_or_default();
                let mut j = i + 3;
                if matches!(self.text(j), "(" | "[" | "{") {
                    let braced = self.text(j) == "{";
                    j = self.skip_group(j, end);
                    if !braced && self.text(j) == ";" {
                        j += 1;
                    }
                } else {
                    j = self.seek_semi(j, end);
                }
                mk(ItemKind::MacroDef, name, j, None, None, None, Vec::new())
            }
            _ => None,
        }
    }

    /// The identifier at `i`, if any.
    fn ident_at(&self, i: usize) -> Option<String> {
        self.code
            .get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(self.src).to_string())
    }

    /// True when the attribute group starting at `open` (the `[`)
    /// marks test-only code: `#[test]`, `#[cfg(test)]`, or any
    /// `#[cfg(...)]` mentioning `test`.
    fn attr_is_test(&self, open: usize, after: usize) -> bool {
        let inner: Vec<&str> = (open + 1..after.saturating_sub(1))
            .map(|k| self.text(k))
            .collect();
        match inner.first() {
            Some(&"test") if inner.len() == 1 => true,
            Some(&"cfg") => inner.iter().any(|t| *t == "test"),
            _ => false,
        }
    }

    /// From `i`, finds the item's body `{` or terminating `;` at
    /// bracket depth 0. Returns (Some(open_index), _) for a body, or
    /// (None, index_past_semi) for a braceless item. Generic parameter
    /// lists are skipped as `<...>` groups so a `>` in `-> Vec<T>`
    /// cannot derail the scan.
    fn seek_body(&self, mut i: usize, end: usize) -> (Option<usize>, usize) {
        while i < end {
            match self.text(i) {
                "{" => return (Some(i), i),
                ";" => return (None, i + 1),
                "(" | "[" => i = self.skip_group(i, end),
                "<" => i = self.skip_group(i, end),
                _ => i += 1,
            }
        }
        (None, end)
    }

    /// From `i`, finds the index just past the terminating `;` at
    /// bracket depth 0 (initializer braces are skipped as groups).
    fn seek_semi(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            match self.text(i) {
                ";" => return i + 1,
                "(" | "[" | "{" => i = self.skip_group(i, end),
                _ => i += 1,
            }
        }
        end
    }

    /// Byte span of a `{ ... }` group from its token indices.
    fn brace_span(&self, open: usize, close: usize) -> Option<(usize, usize)> {
        let lo = self.code.get(open)?.start;
        let hi = self.code.get(close.saturating_sub(1))?.end;
        Some((lo, hi))
    }

    /// Splits an impl header (tokens between `impl` and the body `{`)
    /// into (self type name, trait name). `impl<T> Trait<U> for Type`
    /// → ("Type", Some("Trait")); `impl Type` → ("Type", None).
    fn impl_header(&self, mut i: usize, open: usize) -> (String, Option<String>) {
        // Skip the generic parameter list directly after `impl`.
        if self.text(i) == "<" {
            i = self.skip_group(i, open);
        }
        // Find a top-level `for` (not `for<'a>` — that one is directly
        // followed by `<`).
        let mut for_at = None;
        let mut j = i;
        while j < open {
            match self.text(j) {
                "(" | "[" | "<" => j = self.skip_group(j, open),
                "for" if self.text(j + 1) != "<" => {
                    for_at = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let (trait_range, ty_range) = match for_at {
            Some(f) => (Some((i, f)), (f + 1, open)),
            None => (None, (i, open)),
        };
        let trait_of = trait_range.and_then(|(lo, hi)| self.first_path_ident(lo, hi));
        let name = self.last_path_ident(ty_range.0, ty_range.1).unwrap_or_default();
        (name, trait_of)
    }

    /// First identifier of a path in `[lo, hi)`, preferring the segment
    /// that names the trait/type itself: for `titan_gpu::Ecc` that is
    /// `Ecc`, so walk the leading path and take its last segment.
    fn first_path_ident(&self, lo: usize, hi: usize) -> Option<String> {
        let mut last = None;
        let mut j = lo;
        while j < hi {
            let t = self.code.get(j)?;
            match t.kind {
                TokKind::Ident if t.text(self.src) != "dyn" => {
                    last = Some(t.text(self.src).to_string());
                    // Path continues over `::`; anything else ends it.
                    if self.text(j + 1) == ":" && self.text(j + 2) == ":" {
                        j += 3;
                        continue;
                    }
                    return last;
                }
                TokKind::Punct if matches!(t.text(self.src), "&" | "*") => j += 1,
                _ => return last,
            }
        }
        last
    }

    /// Last path-segment identifier before any `<` in `[lo, hi)` —
    /// the self type's own name.
    fn last_path_ident(&self, lo: usize, hi: usize) -> Option<String> {
        let mut j = lo;
        let mut last = None;
        while j < hi {
            match self.text(j) {
                "<" | "(" | "[" => j = self.skip_group(j, hi),
                t => {
                    if self.code.get(j).is_some_and(|tok| tok.kind == TokKind::Ident)
                        && t != "dyn"
                        && t != "mut"
                    {
                        last = Some(t.to_string());
                    }
                    j += 1;
                }
            }
        }
        last
    }

    /// Scans a function body for closures. `|` is a closure head when
    /// the previous code token cannot end an expression (so `a | b`
    /// stays bitwise-or), or when it follows `move`/`return`.
    fn closures(&self, lo: usize, hi: usize, in_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        // For each currently-open paren, the call identifier before it
        // (if the group is a call's argument list).
        let mut calls: Vec<Option<String>> = Vec::new();
        let mut i = lo;
        while i < hi {
            let text = self.text(i);
            match text {
                "(" => {
                    let ctx = (i > lo)
                        .then(|| {
                            self.code
                                .get(i - 1)
                                .filter(|t| t.kind == TokKind::Ident)
                                .map(|t| t.text(self.src).to_string())
                        })
                        .flatten();
                    calls.push(ctx);
                    i += 1;
                }
                ")" => {
                    calls.pop();
                    i += 1;
                }
                "|" if self.closure_head(lo, i) => {
                    let ctx = calls.last().cloned().flatten();
                    if let Some(item) = self.closure(i, hi, ctx, in_test) {
                        let next = item.next;
                        if let Some(node) = item.node {
                            out.push(node);
                        }
                        i = next.max(i + 1);
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        out
    }

    /// True when the `|` at `i` starts a closure rather than a binary
    /// operator, judged from the previous code token.
    fn closure_head(&self, lo: usize, i: usize) -> bool {
        if i == lo {
            return true;
        }
        let Some(prev) = self.code.get(i - 1) else { return true };
        match prev.kind {
            TokKind::Ident => matches!(prev.text(self.src), "move" | "return" | "else" | "in"),
            TokKind::Punct => {
                matches!(prev.text(self.src), "(" | "," | "=" | "{" | ";" | ":" | ">" | "&")
            }
            _ => false,
        }
    }

    /// Parses one closure at `i` (the opening `|`). Nested closures
    /// become children.
    fn closure(&self, i: usize, hi: usize, ctx: Option<String>, in_test: bool) -> Option<Parsed> {
        let start_tok = self.code.get(i)?;
        // Parameter list: to the matching `|`. Parameters cannot
        // contain a bare `|`, so the next one closes the list.
        let mut j = i + 1;
        while j < hi && self.text(j) != "|" {
            match self.text(j) {
                "(" | "[" | "<" => j = self.skip_group(j, hi),
                _ => j += 1,
            }
        }
        if j >= hi {
            return None; // unterminated parameter list: not a closure
        }
        j += 1; // past the closing `|`
        // Body: a brace block, or an expression up to `,` / `)` / `]`
        // / `}` / `;` at depth 0.
        let (body, end_idx) = if self.text(j) == "{" {
            let close = self.skip_group(j, hi);
            (self.brace_span(j, close), close)
        } else {
            let mut k = j;
            while k < hi {
                match self.text(k) {
                    "(" | "[" | "{" => k = self.skip_group(k, hi),
                    "," | ")" | "]" | "}" | ";" => break,
                    _ => k += 1,
                }
            }
            (None, k)
        };
        let children = self.closures(j, end_idx, in_test);
        let end_byte = self
            .code
            .get(end_idx.saturating_sub(1))
            .map(|t| t.end)
            .unwrap_or(start_tok.end)
            .max(start_tok.end);
        Some(Parsed {
            next: end_idx,
            node: Some(Item {
                kind: ItemKind::Closure,
                name: String::new(),
                vis_pub: false,
                cfg_test: in_test,
                must_use: false,
                start: start_tok.start,
                end: end_byte,
                body,
                line: start_tok.line,
                ctx,
                trait_of: None,
                children,
            }),
        })
    }
}

struct Parsed {
    /// Index of the first token after the item.
    next: usize,
    /// The parsed node; `None` for consumed-but-itemless runs (inner
    /// attributes).
    node: Option<Item>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(src: &str) -> Vec<Item> {
        parse_source(src)
    }

    fn flat<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
        for it in items {
            out.push(it);
            flat(&it.children, out);
        }
    }

    #[test]
    fn top_level_items_with_spans() {
        let src = "use std::fmt;\n\npub struct S { a: u32 }\n\npub fn f(x: u32) -> u32 { x }\n";
        let items = parse_str(src);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].kind, ItemKind::Use);
        assert_eq!(items[1].kind, ItemKind::Struct);
        assert_eq!(items[1].name, "S");
        assert!(items[1].vis_pub);
        assert_eq!(items[2].kind, ItemKind::Fn);
        assert_eq!(items[2].name, "f");
        assert_eq!(&src[items[2].start..items[2].end], "pub fn f(x: u32) -> u32 { x }");
        // Sibling spans are disjoint and ordered.
        assert!(items[0].end <= items[1].start && items[1].end <= items[2].start);
    }

    #[test]
    fn modules_nest_and_inherit_cfg_test() {
        let src = "mod outer {\n    pub fn a() {}\n    mod inner { pub fn b() {} }\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let items = parse_str(src);
        assert_eq!(items.len(), 2);
        let outer = &items[0];
        assert_eq!(outer.kind, ItemKind::Module);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[1].children[0].name, "b");
        assert!(!outer.children[0].cfg_test);
        let tests = &items[1];
        assert!(tests.cfg_test);
        assert!(tests.children[0].cfg_test, "children inherit cfg(test)");
        // The attribute is part of the span.
        assert!(src[tests.start..tests.end].starts_with("#[cfg(test)]"));
    }

    #[test]
    fn impl_blocks_carry_type_and_trait() {
        let src = "impl Engine { fn step(&mut self) {} }\n\
                   impl<T: Ord> Drop for Pool<T> { fn drop(&mut self) {} }\n\
                   impl fmt::Display for Card { fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result { Ok(()) } }\n";
        let items = parse_str(src);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].name, "Engine");
        assert_eq!(items[0].trait_of, None);
        assert_eq!(items[0].children[0].name, "step");
        assert_eq!(items[1].name, "Pool");
        assert_eq!(items[1].trait_of.as_deref(), Some("Drop"));
        assert_eq!(items[2].name, "Card");
        assert_eq!(items[2].trait_of.as_deref(), Some("Display"));
    }

    #[test]
    fn fn_bodies_with_nested_braces_and_generics() {
        let src = "fn complex<T: Into<Vec<u8>>>(x: T) -> Result<Vec<u8>, String> {\n\
                       let v = if true { vec![1] } else { vec![] };\n\
                       Ok(v)\n\
                   }\n\
                   fn after() {}\n";
        let items = parse_str(src);
        assert_eq!(items.len(), 2, "{items:?}");
        assert_eq!(items[0].name, "complex");
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn closures_found_with_call_context() {
        let src = "fn f(v: &mut Vec<f64>) {\n\
                       v.sort_by(|a, b| a.total_cmp(b));\n\
                       v.retain(|x| *x > 0.0);\n\
                       let g = |y: u32| { y + 1 };\n\
                       let h = move || 3;\n\
                   }\n";
        let items = parse_str(src);
        let mut all = Vec::new();
        flat(&items, &mut all);
        let closures: Vec<&&Item> =
            all.iter().filter(|i| i.kind == ItemKind::Closure).collect();
        assert_eq!(closures.len(), 4, "{closures:?}");
        assert_eq!(closures[0].ctx.as_deref(), Some("sort_by"));
        assert_eq!(closures[1].ctx.as_deref(), Some("retain"));
        assert_eq!(closures[2].ctx, None);
        assert_eq!(closures[3].ctx, None);
    }

    #[test]
    fn nested_closures_keep_their_own_context() {
        let src = "fn f(v: &mut Vec<Vec<f64>>) {\n\
                       v.iter_mut().for_each(|row| {\n\
                           row.sort_by(|a, b| a.total_cmp(b));\n\
                       });\n\
                   }\n";
        let items = parse_str(src);
        let outer = &items[0].children[0];
        assert_eq!(outer.kind, ItemKind::Closure);
        assert_eq!(outer.ctx.as_deref(), Some("for_each"));
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].ctx.as_deref(), Some("sort_by"));
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let src = "fn f(a: u32, b: u32) -> u32 { let c = a | b; c | 1 }\n";
        let items = parse_str(src);
        let mut all = Vec::new();
        flat(&items, &mut all);
        assert!(all.iter().all(|i| i.kind != ItemKind::Closure), "{all:?}");
    }

    #[test]
    fn braceless_items_end_at_semicolons() {
        let src = "pub const N: usize = [1, 2, 3].len();\n\
                   static mut G: u32 = 0;\n\
                   pub type Alias = Vec<(u32, u32)>;\n\
                   trait T { fn sig(&self); fn with_default(&self) -> u32 { 1 } }\n";
        let items = parse_str(src);
        assert_eq!(items.len(), 4, "{items:?}");
        assert_eq!(items[0].kind, ItemKind::Const);
        assert_eq!(items[0].name, "N");
        assert_eq!(items[1].kind, ItemKind::Static);
        assert_eq!(items[1].name, "G");
        assert_eq!(items[2].kind, ItemKind::TypeAlias);
        let t = &items[3];
        assert_eq!(t.kind, ItemKind::Trait);
        assert_eq!(t.children.len(), 2);
        assert_eq!(t.children[0].name, "sig");
        assert!(t.children[0].body.is_none());
        assert!(t.children[1].body.is_some());
    }

    #[test]
    fn pub_crate_is_not_pub() {
        let src = "pub(crate) fn a() {}\npub fn b() {}\nfn c() {}\n";
        let items = parse_str(src);
        assert_eq!(
            items.iter().map(|i| i.vis_pub).collect::<Vec<_>>(),
            vec![false, true, false]
        );
    }

    #[test]
    fn malformed_input_never_panics_and_stays_bounded() {
        for src in [
            "fn",
            "fn f(",
            "impl {",
            "mod m {",
            "struct S {",
            "fn f() { let c = |x { }",
            "trait T { fn",
            "pub pub pub",
            "macro_rules! m",
            "#[cfg(test)",
            "#![",
            "use ::;;",
            "extern \"C\" {",
            "const = ;",
        ] {
            let _ = parse_str(src); // must simply not panic
        }
    }

    #[test]
    fn macro_defs_and_extern_crates_parse() {
        let src = "macro_rules! check { ($e:expr) => { $e }; }\nextern crate alloc;\nfn f() {}\n";
        let items = parse_str(src);
        assert_eq!(items.len(), 3, "{items:?}");
        assert_eq!(items[0].kind, ItemKind::MacroDef);
        assert_eq!(items[0].name, "check");
        assert_eq!(items[1].kind, ItemKind::ExternCrate);
        assert_eq!(items[2].name, "f");
    }

    #[test]
    fn must_use_attribute_is_recorded() {
        let src = "#[must_use]\npub fn draw() -> u64 { 3 }\n\
                   #[must_use = \"check the outcome\"]\npub fn roll() -> u64 { 4 }\n\
                   pub fn plain() {}\n";
        let items = parse_str(src);
        assert_eq!(
            items.iter().map(|i| i.must_use).collect::<Vec<_>>(),
            vec![true, true, false]
        );
    }

    #[test]
    fn raw_identifier_items_keep_their_names() {
        let src = "pub fn r#type() {}\nstruct r#match;\n";
        let items = parse_str(src);
        assert_eq!(items[0].name, "r#type");
        assert_eq!(items[1].name, "r#match");
    }
}
