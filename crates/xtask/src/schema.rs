//! Rule **S1** — frozen output-schema drift guard.
//!
//! Several JSON document schemas are public contracts: `titan-obs/2`
//! (metrics documents), `titan-check/1` (per-check verdicts),
//! `titan-obs-replicate/1` (replication bands), `titan-trace/1`
//! (flight-recorder records), `titan-prof/2` (cost-ledger profile
//! documents), and `titan-bench-trajectory/1` (merged perf-snapshot
//! trajectories). Downstream tooling
//! parses them by field name, so a renamed or reordered field is a
//! silent break — the same failure shape as the nvidia-smi DBE counter
//! the paper found undercounting for years.
//!
//! Each schema has a golden spec committed under `crates/xtask/schemas/`
//! (a tiny TOML: schema string, defining file, struct name, ordered
//! top-level field list). S1 lexes the defining file and checks that
//! (a) the schema version string literal still appears, (b) the struct
//! still declares exactly the spec'd fields in order, and (c) no *new*
//! `titan-*/N` version literal exists in a guarded file without a spec
//! — so bumping a schema version forces committing a new golden spec in
//! the same change.

use std::path::Path;

use crate::lexer::{lex, Tok, TokKind};
use crate::{Finding, Rule};

/// Files whose `titan-*/N` string literals must all be spec'd. Schema
/// strings are only ever *minted* in these files; everywhere else they
/// are compared against, not defined.
pub const S1_FILES: &[&str] = &[
    "crates/bench/src/bin/bench_pr.rs",
    "crates/obs/src/export.rs",
    "crates/obs/src/flight.rs",
    "crates/obs/src/health.rs",
    "crates/obs/src/prof.rs",
    "crates/runner/src/ckpt.rs",
    "crates/runner/src/lib.rs",
    "src/main.rs",
];

/// One golden schema spec, parsed from `crates/xtask/schemas/*.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaSpec {
    /// The frozen version string, e.g. `titan-obs/1`.
    pub schema: String,
    /// Workspace-relative file that defines the document struct.
    pub file: String,
    /// The document struct's name, e.g. `MetricsDoc`.
    pub strukt: String,
    /// Ordered top-level field names.
    pub fields: Vec<String>,
    /// Workspace-relative path of the spec file itself (for findings).
    pub spec_path: String,
}

/// Parses one spec file: `key = "value"` lines plus one
/// `fields = [ ... ]` array (single- or multi-line).
pub fn parse_spec(spec_path: &str, text: &str) -> Result<SchemaSpec, String> {
    let mut schema = None;
    let mut file = None;
    let mut strukt = None;
    let mut fields: Option<Vec<String>> = None;
    let mut in_fields = false;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if in_fields {
            for part in line.split(',') {
                let part = part.trim().trim_end_matches(']').trim();
                if !part.is_empty() {
                    fields.get_or_insert_with(Vec::new).push(part.trim_matches('"').to_string());
                }
            }
            if line.contains(']') {
                in_fields = false;
            }
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| format!("{spec_path}:{}: expected `key = value`", n + 1))?;
        let (k, v) = (k.trim(), v.trim());
        match k {
            "schema" => schema = Some(v.trim_matches('"').to_string()),
            "file" => file = Some(v.trim_matches('"').to_string()),
            "struct" => strukt = Some(v.trim_matches('"').to_string()),
            "fields" => {
                fields = Some(Vec::new());
                let body = v.trim_start_matches('[');
                for part in body.split(',') {
                    let part = part.trim().trim_end_matches(']').trim();
                    if !part.is_empty() {
                        fields.as_mut().unwrap().push(part.trim_matches('"').to_string());
                    }
                }
                in_fields = !v.contains(']');
            }
            other => return Err(format!("{spec_path}:{}: unknown key `{other}`", n + 1)),
        }
    }
    Ok(SchemaSpec {
        schema: schema.ok_or_else(|| format!("{spec_path}: missing `schema`"))?,
        file: file.ok_or_else(|| format!("{spec_path}: missing `file`"))?,
        strukt: strukt.ok_or_else(|| format!("{spec_path}: missing `struct`"))?,
        fields: fields.ok_or_else(|| format!("{spec_path}: missing `fields`"))?,
        spec_path: spec_path.to_string(),
    })
}

/// Loads every spec under `crates/xtask/schemas/`, sorted by file name.
/// A missing directory is an empty spec set (synthetic test workspaces).
pub fn load_specs(root: &Path) -> std::io::Result<(Vec<SchemaSpec>, Vec<Finding>)> {
    let dir = root.join("crates/xtask/schemas");
    let mut specs = Vec::new();
    let mut findings = Vec::new();
    if !dir.is_dir() {
        return Ok((specs, findings));
    }
    let mut paths: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    paths.sort();
    for p in paths {
        let rel = format!(
            "crates/xtask/schemas/{}",
            p.file_name().unwrap_or_default().to_string_lossy()
        );
        let text = std::fs::read_to_string(&p)?;
        match parse_spec(&rel, &text) {
            Ok(spec) => specs.push(spec),
            Err(e) => findings.push(Finding {
                file: rel,
                line: 0,
                rule: Rule::S1,
                message: format!("unreadable golden schema spec: {e}"),
                hint: "fix the spec file; see crates/xtask/schemas/ for the format".to_string(),
            }),
        }
    }
    Ok((specs, findings))
}

/// Extracts the ordered top-level field names of `struct name { ... }`
/// from a lexed file. Returns `None` when the struct is not found.
pub fn struct_fields(src: &str, toks: &[Tok], name: &str) -> Option<Vec<String>> {
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_trivia()).collect();
    // Find `struct <name>`, skip a generic parameter list if present,
    // and land on the opening `{`. Tuple/unit structs yield None.
    let mut open = None;
    for w in 0..code.len().saturating_sub(2) {
        if code[w].kind == TokKind::Ident
            && code[w].text(src) == "struct"
            && code[w + 1].text(src) == name
        {
            let mut j = w + 2;
            if code.get(j).is_some_and(|t| t.text(src) == "<") {
                let mut adepth = 0usize;
                while j < code.len() {
                    match code[j].text(src) {
                        "<" => adepth += 1,
                        ">" => {
                            adepth -= 1;
                            if adepth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if code.get(j).is_some_and(|t| t.text(src) == "{") {
                open = Some(j);
            }
            break;
        }
    }
    let open = open?;
    let mut fields = Vec::new();
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < code.len() && depth > 0 {
        let t = code[i];
        let text = t.text(src);
        match text {
            "{" => depth += 1,
            "}" => depth -= 1,
            "#" if depth == 1 && code.get(i + 1).is_some_and(|n| n.text(src) == "[") => {
                // Skip a field attribute `#[...]` (serde renames etc.).
                let mut bdepth = 0usize;
                i += 1;
                while i < code.len() {
                    match code[i].text(src) {
                        "[" => bdepth += 1,
                        "]" => {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => {
                // A field name: an identifier at depth 1, directly
                // followed by a single `:` (not `::`), preceded by the
                // opening brace, a comma, `pub`, a `pub(...)` close, or
                // an attribute close — this skips path segments inside
                // field types like `std::collections::BTreeMap`.
                if depth == 1
                    && t.kind == TokKind::Ident
                    && code.get(i + 1).is_some_and(|n| n.text(src) == ":")
                    && code.get(i + 2).is_none_or(|n| n.text(src) != ":")
                {
                    let prev = code[i - 1].text(src);
                    if prev == "{" || prev == "," || prev == "pub" || prev == ")" || prev == "]" {
                        fields.push(text.to_string());
                    }
                }
            }
        }
        i += 1;
    }
    Some(fields)
}

/// True for string literals shaped like a titan schema version:
/// `titan-<name>/<digits>`.
pub fn is_schema_literal(body: &str) -> bool {
    let Some((name, ver)) = body.rsplit_once('/') else {
        return false;
    };
    name.starts_with("titan-")
        && name.len() > "titan-".len()
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && !ver.is_empty()
        && ver.chars().all(|c| c.is_ascii_digit())
}

/// Runs the S1 check over a workspace root with pre-loaded specs.
pub fn check_schemas(root: &Path, specs: &[SchemaSpec]) -> Vec<Finding> {
    let mut findings = Vec::new();

    for spec in specs {
        let path = root.join(&spec.file);
        let Ok(src) = std::fs::read_to_string(&path) else {
            findings.push(Finding {
                file: spec.spec_path.clone(),
                line: 0,
                rule: Rule::S1,
                message: format!(
                    "golden spec for `{}` points at missing file `{}`",
                    spec.schema, spec.file
                ),
                hint: "update the spec's `file` to the struct's new home".to_string(),
            });
            continue;
        };
        let toks = lex(&src);

        // (a) The frozen version string must still be minted there.
        let needle = format!("\"{}\"", spec.schema);
        let lit = toks
            .iter()
            .find(|t| t.kind == TokKind::Str && t.text(&src) == needle);
        if lit.is_none() {
            findings.push(Finding {
                file: spec.file.clone(),
                line: 0,
                rule: Rule::S1,
                message: format!(
                    "schema version literal \"{}\" no longer appears in this file",
                    spec.schema
                ),
                hint: format!(
                    "a frozen schema string must not be renamed or moved silently; if the \
                     schema really changed, bump the version and add a new golden spec \
                     next to {}",
                    spec.spec_path
                ),
            });
        }

        // (b) The document struct's top-level fields must match, in order.
        match struct_fields(&src, &toks, &spec.strukt) {
            None => findings.push(Finding {
                file: spec.file.clone(),
                line: 0,
                rule: Rule::S1,
                message: format!(
                    "struct `{}` (schema `{}`) not found in this file",
                    spec.strukt, spec.schema
                ),
                hint: format!("update {} if the struct moved or was renamed", spec.spec_path),
            }),
            Some(actual) if actual != spec.fields => {
                let line = lit.map(|t| t.line).unwrap_or(0);
                findings.push(Finding {
                    file: spec.file.clone(),
                    line,
                    rule: Rule::S1,
                    message: format!(
                        "`{}` fields drifted from the `{}` golden spec: expected [{}], \
                         found [{}]",
                        spec.strukt,
                        spec.schema,
                        spec.fields.join(", "),
                        actual.join(", ")
                    ),
                    hint: "frozen schemas never change shape in place — revert the drift, \
                           or bump the version string and commit a new golden spec"
                        .to_string(),
                });
            }
            Some(_) => {}
        }
    }

    // (c) Every minted `titan-*/N` literal in a guarded file needs a spec.
    for rel in S1_FILES {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue; // synthetic test workspaces don't carry these files
        };
        for t in lex(&src) {
            if t.kind != TokKind::Str {
                continue;
            }
            let text = t.text(&src);
            let body = text.trim_matches('"');
            if is_schema_literal(body) && !specs.iter().any(|s| s.schema == body) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: Rule::S1,
                    message: format!("schema version \"{body}\" has no golden spec"),
                    hint: "add crates/xtask/schemas/<name>-<version>.toml with the \
                           document struct's ordered field list"
                        .to_string(),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "# golden\nschema = \"titan-obs/1\"\nfile = \"crates/obs/src/export.rs\"\n\
                        struct = \"MetricsDoc\"\nfields = [\n  \"schema\",\n  \"seed\",\n]\n";

    #[test]
    fn spec_parses_multiline_field_arrays() {
        let spec = parse_spec("s.toml", SPEC).unwrap();
        assert_eq!(spec.schema, "titan-obs/1");
        assert_eq!(spec.strukt, "MetricsDoc");
        assert_eq!(spec.fields, vec!["schema", "seed"]);

        let one_line = "schema = \"titan-x/2\"\nfile = \"f.rs\"\nstruct = \"S\"\n\
                        fields = [\"a\", \"b\", \"c\"]\n";
        let spec = parse_spec("s.toml", one_line).unwrap();
        assert_eq!(spec.fields, vec!["a", "b", "c"]);
    }

    #[test]
    fn struct_fields_reads_top_level_names_in_order() {
        let src = "/// Doc.\npub struct MetricsDoc {\n\
                       /// The schema.\n    pub schema: String,\n\
                       pub seed: u64,\n\
                       #[serde(rename = \"windowDays\")]\n    pub window_days: u64,\n\
                       pub engine: std::collections::BTreeMap<String, u64>,\n\
                       pub nested: Inner<Vec<(u32, u32)>>,\n\
                   }\n\
                   struct Inner<T> { t: T }\n";
        let toks = lex(src);
        let fields = struct_fields(src, &toks, "MetricsDoc").unwrap();
        assert_eq!(fields, vec!["schema", "seed", "window_days", "engine", "nested"]);
        // Private fields (no `pub`) work too — CheckDoc in src/main.rs.
        assert_eq!(struct_fields(src, &toks, "Inner").unwrap(), vec!["t"]);
        assert!(struct_fields(src, &toks, "Absent").is_none());
    }

    #[test]
    fn struct_fields_ignores_methods_in_impl_blocks() {
        let src = "struct D { a: u32 }\nimpl D {\n    fn b(x: u32) -> u32 { x }\n}\n";
        let toks = lex(src);
        assert_eq!(struct_fields(src, &toks, "D").unwrap(), vec!["a"]);
    }

    #[test]
    fn schema_literal_shape() {
        assert!(is_schema_literal("titan-obs/1"));
        assert!(is_schema_literal("titan-obs-replicate/12"));
        assert!(!is_schema_literal("titan-obs"));
        assert!(!is_schema_literal("titan-/1"));
        assert!(!is_schema_literal("obs/1"));
        assert!(!is_schema_literal("titan-Obs/1"));
        assert!(!is_schema_literal("titan-obs/v1"));
    }
}
