//! The workspace symbol graph behind rule **X1** (dead `pub` items).
//!
//! Visibility is resolved the only way a zero-dependency-resolution
//! linter can: from the committed manifests. A `pub` item in crate `C`
//! can be referenced by `C` itself, by any crate whose `[dependencies]`
//! closure reaches `C` (the same edges rule L1 polices), and by the
//! test/example/bench pool — dev-dependencies may reach anywhere, so
//! every `tests/`, `examples/`, and `benches/` tree counts as a global
//! reference pool.
//!
//! "Referenced" is identifier-level: an item is dead when its name
//! occurs nowhere in any visible source outside its own definition
//! span. That is deliberately conservative — a `pub use` re-export, a
//! doc-link-free mention in test code, even an `impl Foo` block keeps
//! `Foo` alive — so a nonzero X1 count means *nothing in the workspace
//! spells the name at all*.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::layering::CrateManifest;
use crate::lexer::{lex, TokKind};

/// One `pub` item eligible for dead-code analysis, harvested by
/// [`crate::rules::scan_structure`].
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Workspace-relative file path of the definition.
    pub file: String,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// Fully-qualified path (`titan_gpu::ecc::retire_page`).
    pub path: String,
    /// The unqualified name the reference count is keyed on.
    pub name: String,
    /// Occurrences of `name` inside the item's own definition span.
    pub self_refs: usize,
}

/// For every package, the set of packages whose sources may reference
/// its items: itself plus every transitive dependent, following the
/// committed `[dependencies]` edges (the L1 DAG made concrete).
pub fn visibility(manifests: &[CrateManifest]) -> BTreeMap<String, BTreeSet<String>> {
    // dep package -> direct dependents.
    let mut dependents: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for m in manifests {
        if m.package.is_empty() {
            continue;
        }
        for (dep, _) in &m.deps {
            dependents.entry(dep.as_str()).or_default().insert(m.package.as_str());
        }
    }
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in manifests {
        if m.package.is_empty() {
            continue;
        }
        // Breadth-first over the dependent edges.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut frontier = vec![m.package.as_str()];
        while let Some(pkg) = frontier.pop() {
            if !seen.insert(pkg) {
                continue;
            }
            if let Some(next) = dependents.get(pkg) {
                frontier.extend(next.iter().copied());
            }
        }
        out.insert(m.package.clone(), seen.into_iter().map(String::from).collect());
    }
    out
}

/// Identifier counts from the global reference pool: `tests/`,
/// `examples/`, and `benches/` trees at the root and under every
/// `crates/*` member. These compile against dev-dependencies, which
/// may reach any crate, so they keep items alive regardless of the
/// manifest DAG. Lex-only — the pool needs no item structure.
pub fn pool_ident_counts(root: &Path) -> std::io::Result<BTreeMap<String, usize>> {
    let mut dirs: Vec<std::path::PathBuf> = Vec::new();
    for sub in ["tests", "examples", "benches"] {
        dirs.push(root.join(sub));
    }
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut members: Vec<_> =
            entries.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect();
        members.sort();
        for member in members {
            for sub in ["tests", "examples", "benches"] {
                dirs.push(member.join(sub));
            }
        }
    }
    let mut counts = BTreeMap::new();
    for dir in dirs {
        if !dir.is_dir() {
            continue;
        }
        for file in crate::rust_files(&dir)? {
            let text = std::fs::read_to_string(&file)?;
            for t in lex(&text) {
                if t.kind == TokKind::Ident {
                    *counts.entry(t.text(&text).to_string()).or_insert(0) += 1;
                }
            }
        }
    }
    Ok(counts)
}

/// The dead `pub` items of one package: every candidate whose name
/// occurs nowhere in the visible sources beyond its own definition.
pub fn dead_pubs<'a>(
    package: &str,
    items: &'a [PubItem],
    per_crate_idents: &BTreeMap<String, BTreeMap<String, usize>>,
    pool: &BTreeMap<String, usize>,
    visible: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<&'a PubItem> {
    let own = BTreeSet::from([package.to_string()]);
    let viewers = visible.get(package).unwrap_or(&own);
    items
        .iter()
        .filter(|it| {
            let total: usize = viewers
                .iter()
                .filter_map(|v| per_crate_idents.get(v))
                .filter_map(|m| m.get(&it.name))
                .sum::<usize>()
                + pool.get(&it.name).copied().unwrap_or(0);
            total <= it.self_refs
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layering::parse_manifest;

    fn manifests() -> Vec<CrateManifest> {
        vec![
            parse_manifest(
                "stats",
                "crates/stats/Cargo.toml",
                "[package]\nname = \"titan-stats\"\n[dependencies]\n",
            ),
            parse_manifest(
                "faults",
                "crates/faults/Cargo.toml",
                "[package]\nname = \"titan-faults\"\n[dependencies]\ntitan-stats = {}\n",
            ),
            parse_manifest(
                "simulator",
                "crates/simulator/Cargo.toml",
                "[package]\nname = \"titan-sim\"\n[dependencies]\ntitan-faults = {}\n",
            ),
        ]
    }

    #[test]
    fn visibility_is_the_transitive_dependent_closure() {
        let vis = visibility(&manifests());
        let stats: Vec<&str> = vis["titan-stats"].iter().map(String::as_str).collect();
        assert_eq!(stats, vec!["titan-faults", "titan-sim", "titan-stats"]);
        let sim: Vec<&str> = vis["titan-sim"].iter().map(String::as_str).collect();
        assert_eq!(sim, vec!["titan-sim"], "nothing depends on the top of the DAG");
    }

    #[test]
    fn dead_pubs_need_a_reference_beyond_the_definition() {
        let items = vec![
            PubItem {
                file: "crates/stats/src/lib.rs".into(),
                line: 1,
                path: "titan_stats::mean".into(),
                name: "mean".into(),
                self_refs: 1,
            },
            PubItem {
                file: "crates/stats/src/lib.rs".into(),
                line: 9,
                path: "titan_stats::orphan".into(),
                name: "orphan".into(),
                self_refs: 1,
            },
        ];
        let mut per_crate = BTreeMap::new();
        per_crate.insert(
            "titan-stats".to_string(),
            BTreeMap::from([("mean".to_string(), 1), ("orphan".to_string(), 1)]),
        );
        // A dependent crate mentions `mean`, nothing mentions `orphan`.
        per_crate.insert(
            "titan-faults".to_string(),
            BTreeMap::from([("mean".to_string(), 2)]),
        );
        let vis = visibility(&manifests());
        let dead = dead_pubs("titan-stats", &items, &per_crate, &BTreeMap::new(), &vis);
        let paths: Vec<&str> = dead.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, vec!["titan_stats::orphan"]);

        // A test-pool mention is a reference too.
        let pool = BTreeMap::from([("orphan".to_string(), 1)]);
        assert!(dead_pubs("titan-stats", &items, &per_crate, &pool, &vis).is_empty());
    }

    #[test]
    fn references_visible_only_from_non_dependents_do_not_count() {
        // `titan-sim` (depends on faults -> stats) mentioning `helper`
        // keeps a stats item alive; a stats mention of a sim item would
        // not exist in a valid layering, but the closure is directional:
        // a sim-only name referenced by nothing that *sees* sim is dead
        // even if stats spells the same word.
        let items = vec![PubItem {
            file: "crates/simulator/src/lib.rs".into(),
            line: 3,
            path: "titan_sim::launch".into(),
            name: "launch".into(),
            self_refs: 1,
        }];
        let mut per_crate = BTreeMap::new();
        per_crate.insert(
            "titan-sim".to_string(),
            BTreeMap::from([("launch".to_string(), 1)]),
        );
        // stats mentions the word, but stats cannot see titan-sim.
        per_crate.insert(
            "titan-stats".to_string(),
            BTreeMap::from([("launch".to_string(), 5)]),
        );
        let vis = visibility(&manifests());
        let dead = dead_pubs("titan-sim", &items, &per_crate, &BTreeMap::new(), &vis);
        assert_eq!(dead.len(), 1, "{dead:?}");
    }
}
