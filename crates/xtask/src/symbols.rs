//! The workspace symbol graph behind rule **X1** (dead `pub` items).
//!
//! Visibility is resolved the only way a zero-dependency-resolution
//! linter can: from the committed manifests. A `pub` item in crate `C`
//! can be referenced by `C` itself, by any crate whose `[dependencies]`
//! closure reaches `C` (the same edges rule L1 polices), and by the
//! test/example/bench pool — dev-dependencies may reach anywhere, so
//! every `tests/`, `examples/`, and `benches/` tree counts as a global
//! reference pool.
//!
//! "Referenced" is identifier-level: an item is dead when its name
//! occurs nowhere in any visible source outside its own definition
//! span. That is deliberately conservative — a `pub use` re-export, a
//! doc-link-free mention in test code, even an `impl Foo` block keeps
//! `Foo` alive — so a nonzero X1 count means *nothing in the workspace
//! spells the name at all*.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::layering::CrateManifest;
use crate::lexer::{lex, TokKind};

/// One `pub` item eligible for dead-code analysis, harvested by
/// [`crate::rules::scan_structure`].
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Workspace-relative file path of the definition.
    pub file: String,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// Fully-qualified path (`titan_gpu::ecc::retire_page`).
    pub path: String,
    /// The unqualified name the reference count is keyed on.
    pub name: String,
    /// Occurrences of `name` inside the item's own definition span.
    pub self_refs: usize,
}

/// For every package, the set of packages whose sources may reference
/// its items: itself plus every transitive dependent, following the
/// committed `[dependencies]` edges (the L1 DAG made concrete).
pub fn visibility(manifests: &[CrateManifest]) -> BTreeMap<String, BTreeSet<String>> {
    // dep package -> direct dependents.
    let mut dependents: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for m in manifests {
        if m.package.is_empty() {
            continue;
        }
        for (dep, _) in &m.deps {
            dependents.entry(dep.as_str()).or_default().insert(m.package.as_str());
        }
    }
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in manifests {
        if m.package.is_empty() {
            continue;
        }
        // Breadth-first over the dependent edges.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut frontier = vec![m.package.as_str()];
        while let Some(pkg) = frontier.pop() {
            if !seen.insert(pkg) {
                continue;
            }
            if let Some(next) = dependents.get(pkg) {
                frontier.extend(next.iter().copied());
            }
        }
        out.insert(m.package.clone(), seen.into_iter().map(String::from).collect());
    }
    out
}

/// For every package, the set of packages whose items *it* may
/// reference: itself plus its transitive `[dependencies]` closure.
/// This is [`visibility`] with the arrows reversed — X1 asks "who can
/// see me", call resolution asks "whom can I call".
pub fn reachable(manifests: &[CrateManifest]) -> BTreeMap<String, BTreeSet<String>> {
    let by_pkg: BTreeMap<&str, &CrateManifest> = manifests
        .iter()
        .filter(|m| !m.package.is_empty())
        .map(|m| (m.package.as_str(), m))
        .collect();
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in manifests {
        if m.package.is_empty() {
            continue;
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut frontier = vec![m.package.as_str()];
        while let Some(pkg) = frontier.pop() {
            if !seen.insert(pkg) {
                continue;
            }
            if let Some(dep) = by_pkg.get(pkg) {
                frontier.extend(dep.deps.iter().map(|(d, _)| d.as_str()));
            }
        }
        out.insert(m.package.clone(), seen.into_iter().map(String::from).collect());
    }
    out
}

/// One callable item for name-based call resolution.
#[derive(Debug, Clone)]
pub struct Callable {
    /// Fully-qualified path (`titan_sim::engine::Engine::step`).
    pub path: String,
    /// Unqualified name (`step`).
    pub name: String,
    /// Defined inside an `impl`/`trait` block of this type, if any.
    pub owner: Option<String>,
    /// Package the definition lives in.
    pub pkg: String,
}

/// Name-keyed index over every workspace callable, with the resolution
/// policy the call graph needs. The PR 6 reference counter only asked
/// "does this identifier occur anywhere"; `resolve` additionally
/// honors path qualifiers — `Engine::step(..)`, `Vec::<u8>::new(..)`,
/// `<Fleet as Spare>::swap(..)`, `Self::helper(..)` — and the manifest
/// dependency DAG, so an edge is only drawn to a definition the caller
/// could actually link against.
pub struct CallableIndex {
    items: Vec<Callable>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallableIndex {
    pub fn new(items: Vec<Callable>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, c) in items.iter().enumerate() {
            by_name.entry(c.name.clone()).or_default().push(i);
        }
        CallableIndex { items, by_name }
    }

    pub fn get(&self, idx: usize) -> &Callable {
        &self.items[idx]
    }

    /// Candidate definitions for one call site, in index order.
    ///
    /// - `caller_pkg` / `reach`: a candidate must live in a package the
    ///   caller's manifest closure reaches (see [`reachable`]).
    /// - `caller_owner`: the caller's enclosing impl self-type; a
    ///   `Self::` qualifier resolves against it.
    /// - `name` / `quals`: the callee and its path qualifiers as
    ///   written. Each qualifier must appear, in order, among the
    ///   candidate's path segments — `engine::step` matches
    ///   `titan_sim::engine::Engine::step`, not `titan_sim::obs::step`.
    /// - `method`: a `.name(..)` receiver call; only `impl`/`trait`
    ///   members can answer it (a free fn cannot be a method).
    ///
    /// Name-based matching over-approximates — a method call may hit
    /// every visible type's method of that name — which is the safe
    /// direction for taint: a spurious edge adds a path to review, a
    /// missing one would hide a leak.
    pub fn resolve(
        &self,
        caller_pkg: &str,
        caller_owner: Option<&str>,
        name: &str,
        quals: &[String],
        method: bool,
        reach: &BTreeMap<String, BTreeSet<String>>,
    ) -> Vec<usize> {
        let Some(candidates) = self.by_name.get(name) else {
            return Vec::new();
        };
        let own = BTreeSet::from([caller_pkg.to_string()]);
        let visible = reach.get(caller_pkg).unwrap_or(&own);
        candidates
            .iter()
            .copied()
            .filter(|&i| {
                let c = &self.items[i];
                if !visible.contains(&c.pkg) {
                    return false;
                }
                if method {
                    return c.owner.is_some();
                }
                if quals.is_empty() {
                    // A bare `name(..)` call can only reach a free fn
                    // (associated fns need a path or a receiver).
                    return c.owner.is_none();
                }
                // Qualifier match: walk the written qualifiers in
                // order, greedily consuming the candidate's path
                // segments. A qualifier no segment spells is tolerated
                // — UFCS trait names (`<Fleet as Spare>::swap`) and
                // turbofish type args (`parse::<u64>`) are foreign to
                // the definition path by construction — but at least
                // one qualifier must land, so `engine::step` can never
                // claim `titan_sim::obs::step`.
                let segs: Vec<&str> = c.path.split("::").collect();
                let inner = &segs[..segs.len().saturating_sub(1)];
                let mut pos = 0usize;
                let mut matched = 0usize;
                for q in quals {
                    let want = if q == "Self" { caller_owner.unwrap_or("Self") } else { q };
                    if let Some(off) = inner[pos..].iter().position(|s| *s == want) {
                        pos += off + 1;
                        matched += 1;
                    }
                }
                matched >= 1
            })
            .collect()
    }
}

/// Identifier counts from the global reference pool: `tests/`,
/// `examples/`, and `benches/` trees at the root and under every
/// `crates/*` member. These compile against dev-dependencies, which
/// may reach any crate, so they keep items alive regardless of the
/// manifest DAG. Lex-only — the pool needs no item structure.
pub fn pool_ident_counts(root: &Path) -> std::io::Result<BTreeMap<String, usize>> {
    let mut dirs: Vec<std::path::PathBuf> = Vec::new();
    for sub in ["tests", "examples", "benches"] {
        dirs.push(root.join(sub));
    }
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut members: Vec<_> =
            entries.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect();
        members.sort();
        for member in members {
            for sub in ["tests", "examples", "benches"] {
                dirs.push(member.join(sub));
            }
        }
    }
    let mut counts = BTreeMap::new();
    for dir in dirs {
        if !dir.is_dir() {
            continue;
        }
        for file in crate::rust_files(&dir)? {
            let text = std::fs::read_to_string(&file)?;
            for t in lex(&text) {
                if t.kind == TokKind::Ident {
                    *counts.entry(t.text(&text).to_string()).or_insert(0) += 1;
                }
            }
        }
    }
    Ok(counts)
}

/// The dead `pub` items of one package: every candidate whose name
/// occurs nowhere in the visible sources beyond its own definition.
pub fn dead_pubs<'a>(
    package: &str,
    items: &'a [PubItem],
    per_crate_idents: &BTreeMap<String, BTreeMap<String, usize>>,
    pool: &BTreeMap<String, usize>,
    visible: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<&'a PubItem> {
    let own = BTreeSet::from([package.to_string()]);
    let viewers = visible.get(package).unwrap_or(&own);
    items
        .iter()
        .filter(|it| {
            let total: usize = viewers
                .iter()
                .filter_map(|v| per_crate_idents.get(v))
                .filter_map(|m| m.get(&it.name))
                .sum::<usize>()
                + pool.get(&it.name).copied().unwrap_or(0);
            total <= it.self_refs
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layering::parse_manifest;

    fn manifests() -> Vec<CrateManifest> {
        vec![
            parse_manifest(
                "stats",
                "crates/stats/Cargo.toml",
                "[package]\nname = \"titan-stats\"\n[dependencies]\n",
            ),
            parse_manifest(
                "faults",
                "crates/faults/Cargo.toml",
                "[package]\nname = \"titan-faults\"\n[dependencies]\ntitan-stats = {}\n",
            ),
            parse_manifest(
                "simulator",
                "crates/simulator/Cargo.toml",
                "[package]\nname = \"titan-sim\"\n[dependencies]\ntitan-faults = {}\n",
            ),
        ]
    }

    #[test]
    fn visibility_is_the_transitive_dependent_closure() {
        let vis = visibility(&manifests());
        let stats: Vec<&str> = vis["titan-stats"].iter().map(String::as_str).collect();
        assert_eq!(stats, vec!["titan-faults", "titan-sim", "titan-stats"]);
        let sim: Vec<&str> = vis["titan-sim"].iter().map(String::as_str).collect();
        assert_eq!(sim, vec!["titan-sim"], "nothing depends on the top of the DAG");
    }

    #[test]
    fn dead_pubs_need_a_reference_beyond_the_definition() {
        let items = vec![
            PubItem {
                file: "crates/stats/src/lib.rs".into(),
                line: 1,
                path: "titan_stats::mean".into(),
                name: "mean".into(),
                self_refs: 1,
            },
            PubItem {
                file: "crates/stats/src/lib.rs".into(),
                line: 9,
                path: "titan_stats::orphan".into(),
                name: "orphan".into(),
                self_refs: 1,
            },
        ];
        let mut per_crate = BTreeMap::new();
        per_crate.insert(
            "titan-stats".to_string(),
            BTreeMap::from([("mean".to_string(), 1), ("orphan".to_string(), 1)]),
        );
        // A dependent crate mentions `mean`, nothing mentions `orphan`.
        per_crate.insert(
            "titan-faults".to_string(),
            BTreeMap::from([("mean".to_string(), 2)]),
        );
        let vis = visibility(&manifests());
        let dead = dead_pubs("titan-stats", &items, &per_crate, &BTreeMap::new(), &vis);
        let paths: Vec<&str> = dead.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, vec!["titan_stats::orphan"]);

        // A test-pool mention is a reference too.
        let pool = BTreeMap::from([("orphan".to_string(), 1)]);
        assert!(dead_pubs("titan-stats", &items, &per_crate, &pool, &vis).is_empty());
    }

    #[test]
    fn reachable_is_the_transitive_dependency_closure() {
        let reach = reachable(&manifests());
        let sim: Vec<&str> = reach["titan-sim"].iter().map(String::as_str).collect();
        assert_eq!(sim, vec!["titan-faults", "titan-sim", "titan-stats"]);
        let stats: Vec<&str> = reach["titan-stats"].iter().map(String::as_str).collect();
        assert_eq!(stats, vec!["titan-stats"], "a leaf reaches only itself");
    }

    fn callables() -> CallableIndex {
        let c = |path: &str, owner: Option<&str>, pkg: &str| Callable {
            path: path.to_string(),
            name: path.rsplit("::").next().unwrap().to_string(),
            owner: owner.map(str::to_string),
            pkg: pkg.to_string(),
        };
        CallableIndex::new(vec![
            c("titan_sim::engine::Engine::step", Some("Engine"), "titan-sim"),
            c("titan_sim::obs_glue::step", None, "titan-sim"),
            c("titan_faults::Injector::step", Some("Injector"), "titan-faults"),
            c("titan_stats::mean", None, "titan-stats"),
            c("titan_sim::fleet::Fleet::swap", Some("Fleet"), "titan-sim"),
            c("titan_sim::engine::Engine::helper", Some("Engine"), "titan-sim"),
        ])
    }

    fn paths(idx: &CallableIndex, hits: Vec<usize>) -> Vec<String> {
        hits.into_iter().map(|i| idx.get(i).path.clone()).collect()
    }

    #[test]
    fn resolve_honors_impl_qualifiers() {
        // The PR 6 reference counter treated `Engine::step(..)` as a
        // bare mention of `step`; the index must pin it to the impl.
        let idx = callables();
        let reach = reachable(&manifests());
        let hits = idx.resolve("titan-sim", None, "step", &["Engine".into()], false, &reach);
        assert_eq!(paths(&idx, hits), vec!["titan_sim::engine::Engine::step"]);

        // Module qualifiers pin the same way.
        let hits = idx.resolve("titan-sim", None, "step", &["obs_glue".into()], false, &reach);
        assert_eq!(paths(&idx, hits), vec!["titan_sim::obs_glue::step"]);
    }

    #[test]
    fn resolve_bare_and_method_calls() {
        let idx = callables();
        let reach = reachable(&manifests());
        // Bare `step()` can only be the free fn.
        let hits = idx.resolve("titan-sim", None, "step", &[], false, &reach);
        assert_eq!(paths(&idx, hits), vec!["titan_sim::obs_glue::step"]);
        // `.step()` can be any visible method, never the free fn.
        let hits = idx.resolve("titan-sim", None, "step", &[], true, &reach);
        assert_eq!(
            paths(&idx, hits),
            vec!["titan_sim::engine::Engine::step", "titan_faults::Injector::step"]
        );
    }

    #[test]
    fn resolve_respects_the_dependency_closure() {
        let idx = callables();
        let reach = reachable(&manifests());
        // titan-stats cannot see upward into titan-sim/titan-faults.
        assert!(idx.resolve("titan-stats", None, "step", &[], true, &reach).is_empty());
        let hits = idx.resolve("titan-faults", None, "step", &[], true, &reach);
        assert_eq!(paths(&idx, hits), vec!["titan_faults::Injector::step"]);
    }

    #[test]
    fn resolve_ufcs_turbofish_and_self_qualifiers() {
        let idx = callables();
        let reach = reachable(&manifests());
        // `<Fleet as Spare>::swap(..)`: the trait name is foreign to
        // the impl path and must not block the match.
        let hits = idx.resolve(
            "titan-sim",
            None,
            "swap",
            &["Fleet".into(), "Spare".into()],
            false,
            &reach,
        );
        assert_eq!(paths(&idx, hits), vec!["titan_sim::fleet::Fleet::swap"]);

        // `Self::helper(..)` from inside `impl Engine`.
        let hits =
            idx.resolve("titan-sim", Some("Engine"), "helper", &["Self".into()], false, &reach);
        assert_eq!(paths(&idx, hits), vec!["titan_sim::engine::Engine::helper"]);

        // A fully-foreign qualifier set (`Vec::<u64>::step`) matches
        // nothing — at least one written qualifier must land.
        let hits = idx.resolve(
            "titan-sim",
            None,
            "step",
            &["Vec".into(), "u64".into()],
            false,
            &reach,
        );
        assert!(hits.is_empty(), "{:?}", paths(&idx, hits));
    }

    #[test]
    fn references_visible_only_from_non_dependents_do_not_count() {
        // `titan-sim` (depends on faults -> stats) mentioning `helper`
        // keeps a stats item alive; a stats mention of a sim item would
        // not exist in a valid layering, but the closure is directional:
        // a sim-only name referenced by nothing that *sees* sim is dead
        // even if stats spells the same word.
        let items = vec![PubItem {
            file: "crates/simulator/src/lib.rs".into(),
            line: 3,
            path: "titan_sim::launch".into(),
            name: "launch".into(),
            self_refs: 1,
        }];
        let mut per_crate = BTreeMap::new();
        per_crate.insert(
            "titan-sim".to_string(),
            BTreeMap::from([("launch".to_string(), 1)]),
        );
        // stats mentions the word, but stats cannot see titan-sim.
        per_crate.insert(
            "titan-stats".to_string(),
            BTreeMap::from([("launch".to_string(), 5)]),
        );
        let vis = visibility(&manifests());
        let dead = dead_pubs("titan-sim", &items, &per_crate, &BTreeMap::new(), &vis);
        assert_eq!(dead.len(), 1, "{dead:?}");
    }
}
