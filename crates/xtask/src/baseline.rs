//! The committed ratchet baseline (`crates/xtask/lint-baseline.toml`).
//!
//! Four sections, all ratcheting downward only:
//!
//! - `[p2]` — non-test panic-surface sites (`.unwrap()` / `.expect(` /
//!   `panic!` / indexing) per fully-qualified *function* path (rule
//!   P2). Paths with zero sites carry no entry.
//! - `[n1]` — non-test lossy `as <numeric-type>` cast count per
//!   simulation crate (rule N1).
//! - `[x1]` — unreferenced `pub` items per `crates/*` package (rule
//!   X1).
//! - `[t1]` — interprocedural determinism-taint paths per simulation
//!   crate (rule T1). Unlike the count ratchets, a `[t1]` regression
//!   reports each offending path with its full source→sink call chain.
//!
//! Every section uses implicit-zero budgets: a key missing from the
//! file may measure zero and nothing else. The file is never
//! hand-edited: `cargo xtask lint --update-baseline` rewrites it
//! deterministically (BTreeMap key order, fixed header, trailing
//! newline), and CI fails when the committed bytes differ from the
//! regenerated ones.

use std::collections::BTreeMap;

use crate::taint::{t1_message, T1Path};
use crate::{Finding, Rule};

/// The committed budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// fn path → allowed non-test panic-surface site count (P2).
    pub p2: BTreeMap<String, usize>,
    /// crate name → allowed non-test numeric-cast count (N1).
    pub n1: BTreeMap<String, usize>,
    /// crate name → allowed dead-pub count (X1).
    pub x1: BTreeMap<String, usize>,
    /// crate name → allowed determinism-taint path count (T1).
    pub t1: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the minimal TOML subset the baseline file uses:
    /// `[p2]` / `[n1]` / `[x1]` / `[t1]` sections of `"name" = count`
    /// lines.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut out = Baseline::default();
        let mut section: Option<&str> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                section = match line {
                    "[p2]" => Some("p2"),
                    "[n1]" => Some("n1"),
                    "[x1]" => Some("x1"),
                    "[t1]" => Some("t1"),
                    other => {
                        return Err(format!(
                            "lint-baseline.toml:{}: unknown section `{other}` (stale \
                             format? regenerate with `cargo xtask lint --update-baseline`)",
                            n + 1
                        ))
                    }
                };
                continue;
            }
            let Some(section) = section else { continue };
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("lint-baseline.toml:{}: expected `name = count`", n + 1))?;
            let key = k.trim().trim_matches('"').to_string();
            let count: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("lint-baseline.toml:{}: bad count `{}`", n + 1, v.trim()))?;
            match section {
                "p2" => out.p2.insert(key, count),
                "n1" => out.n1.insert(key, count),
                "x1" => out.x1.insert(key, count),
                _ => out.t1.insert(key, count),
            };
        }
        Ok(out)
    }

    /// Renders the committed form: fixed header, sorted keys, trailing
    /// newline. `--update-baseline` writes exactly this, and the CI
    /// freshness job diffs the committed file against it byte-for-byte.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# titan-lint ratchet baseline — never hand-edit; regenerate with\n\
             # `cargo xtask lint --update-baseline`. Counts may only go down.\n\
             #\n\
             # [p2]: non-test panic-surface sites (.unwrap()/.expect(/panic!/indexing)\n\
             #       per fully-qualified fn path (rule P2); zero-site fns carry no\n\
             #       entry. Burn down with error returns / .get()-style access, or\n\
             #       annotate invariant-backed sites with `// lint: allow(P2, reason)`.\n\
             # [n1]: non-test `as <numeric-type>` casts per sim crate (rule N1);\n\
             #       burn down via u64 widening / try_into, or annotate benign\n\
             #       sites with `// lint: allow(N1, reason)`.\n\
             # [x1]: unreferenced `pub` items per crate (rule X1); delete the item,\n\
             #       reference it, or annotate with `// lint: allow(X1, reason)`.\n\
             # [t1]: interprocedural determinism-taint paths per sim crate (rule T1);\n\
             #       cut the chain (pass the value in from the runner layer), or\n\
             #       annotate the source read or the importing call site with\n\
             #       `// lint: allow(T1, reason)`.\n\
             \n[p2]\n",
        );
        for (name, count) in &self.p2 {
            out.push_str(&format!("\"{name}\" = {count}\n"));
        }
        out.push_str("\n[n1]\n");
        for (name, count) in &self.n1 {
            out.push_str(&format!("\"{name}\" = {count}\n"));
        }
        out.push_str("\n[x1]\n");
        for (name, count) in &self.x1 {
            out.push_str(&format!("\"{name}\" = {count}\n"));
        }
        out.push_str("\n[t1]\n");
        for (name, count) in &self.t1 {
            out.push_str(&format!("\"{name}\" = {count}\n"));
        }
        out
    }
}

/// Shared ratchet comparison: implicit-zero budgets, regressions are
/// findings, improvements are notes, stale nonzero entries for
/// now-clean keys are notes.
fn check_ratchet(
    rule: Rule,
    what: &str,
    budgets: &BTreeMap<String, usize>,
    measured: &BTreeMap<String, usize>,
    hint: &str,
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for (name, &count) in measured {
        let budget = budgets.get(name).copied().unwrap_or(0);
        if count > budget {
            findings.push(Finding {
                file: format!("crates/xtask/lint-baseline.toml ({name})"),
                line: 0,
                rule,
                message: format!("{what} in `{name}` rose from {budget} to {count}"),
                hint: hint.to_string(),
            });
        } else if count < budget {
            notes.push(format!(
                "`{name}` improved: {budget} → {count} {what}; run \
                 `cargo xtask lint --update-baseline` to ratchet the budget down"
            ));
        }
    }
    // Entries whose key measured nothing at all this run.
    for (name, &budget) in budgets {
        if budget > 0 && !measured.contains_key(name) {
            notes.push(format!(
                "`{name}` improved: {budget} → 0 {what}; run \
                 `cargo xtask lint --update-baseline` to drop the stale entry"
            ));
        }
    }
    (findings, notes)
}

/// Compares measured per-fn P2 counts against `[p2]`. A fn path
/// missing from the section carries an implicit zero budget, so brand
/// new functions must be panic-free (or hatched) from the start.
pub fn check_p2_baseline(
    baseline: &Baseline,
    p2_counts: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    check_ratchet(
        Rule::P2,
        "panic-surface sites",
        &baseline.p2,
        p2_counts,
        "return Result / use .get()-style access instead of the new \
         unwrap/expect/panic!/indexing, or annotate an invariant-backed site with \
         `// lint: allow(P2, reason)`; the budget only ratchets down \
         (p2_counts in `--format json` lists every fn)",
    )
}

/// Compares measured N1 cast counts against `[n1]` (implicit zero for
/// missing crates).
pub fn check_n1_baseline(
    baseline: &Baseline,
    n1_counts: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    check_ratchet(
        Rule::N1,
        "numeric casts",
        &baseline.n1,
        n1_counts,
        "widen to u64 / use try_into with an explicit policy, or annotate a \
         provably-benign cast with `// lint: allow(N1, reason)`; if the new \
         count is truly the floor, run `cargo xtask lint --update-baseline` \
         (n1_sites in `--format json` lists every cast)",
    )
}

/// Compares measured X1 dead-pub counts against `[x1]` (implicit zero
/// for missing crates).
pub fn check_x1_baseline(
    baseline: &Baseline,
    x1_counts: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    check_ratchet(
        Rule::X1,
        "unreferenced pub items",
        &baseline.x1,
        x1_counts,
        "delete the dead item, wire it to a caller, or annotate a deliberate \
         API surface with `// lint: allow(X1, reason)`; x1_sites in \
         `--format json` lists every item",
    )
}

/// Compares measured T1 path counts against `[t1]` (implicit zero for
/// missing crates). Unlike the count-only ratchets, a regressed crate
/// reports **every** offending path individually — each finding anchors
/// at the taint-importing line and carries the full source→sink chain
/// in its message (which is also what the SARIF layer turns into
/// `codeFlows`). Improvements and stale entries are notes, as usual.
pub fn check_t1_baseline(
    baseline: &Baseline,
    t1_counts: &BTreeMap<String, usize>,
    t1_paths: &[T1Path],
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for (name, &count) in t1_counts {
        let budget = baseline.t1.get(name).copied().unwrap_or(0);
        if count > budget {
            for p in t1_paths.iter().filter(|p| &p.crate_name == name) {
                findings.push(Finding {
                    file: p.file.clone(),
                    line: p.line,
                    rule: Rule::T1,
                    message: t1_message(p),
                    hint: format!(
                        "cut the chain (inject the value from the runner layer), or \
                         annotate the source read or this call site with \
                         `// lint: allow(T1, reason)`; `{name}` budget is {budget}, \
                         measured {count} (t1_paths in `--format json` lists every \
                         chain; `cargo xtask lint --explain T1` has the recipe)"
                    ),
                });
            }
        } else if count < budget {
            notes.push(format!(
                "`{name}` improved: {budget} → {count} determinism-taint paths; run \
                 `cargo xtask lint --update-baseline` to ratchet the budget down"
            ));
        }
    }
    for (name, &budget) in &baseline.t1 {
        if budget > 0 && !t1_counts.contains_key(name) {
            notes.push(format!(
                "`{name}` improved: {budget} → 0 determinism-taint paths; run \
                 `cargo xtask lint --update-baseline` to drop the stale entry"
            ));
        }
    }
    (findings, notes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{SinkKind, SourceKind};
    use crate::taint::T1Step;

    #[test]
    fn baseline_roundtrip_is_byte_stable() {
        let mut baseline = Baseline::default();
        baseline.p2.insert("titan_sim::engine::Engine::run".into(), 3);
        baseline.p2.insert("titan_stats::quantile".into(), 1);
        baseline.n1.insert("titan-sim".into(), 7);
        baseline.x1.insert("titan-sim".into(), 0);
        baseline.x1.insert("titan-gpu".into(), 2);
        baseline.t1.insert("titan-obs".into(), 1);
        let text = baseline.render();
        assert_eq!(Baseline::parse(&text).unwrap(), baseline);
        assert!(text.ends_with('\n'), "trailing newline is part of the format");
        assert_eq!(text, baseline.render(), "same value, same bytes");
        // fn paths are quoted TOML keys.
        assert!(text.contains("\"titan_sim::engine::Engine::run\" = 3"));
    }

    #[test]
    fn p2_ratchet_defaults_missing_fns_to_zero() {
        let mut baseline = Baseline::default();
        baseline.p2.insert("titan_sim::engine::run".into(), 2);

        let mut counts = BTreeMap::new();
        counts.insert("titan_sim::engine::run".to_string(), 2);
        let (findings, notes) = check_p2_baseline(&baseline, &counts);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(notes.is_empty());

        // A brand-new fn with a panic site regresses immediately.
        counts.insert("titan_sim::engine::drain".to_string(), 1);
        let (findings, _) = check_p2_baseline(&baseline, &counts);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::P2);
        assert!(findings[0].message.contains("titan_sim::engine::drain"));

        // Improvement is a note; a fn dropping to zero leaves a stale
        // entry note (zero-count fns are absent from the measured map).
        let mut counts = BTreeMap::new();
        counts.insert("titan_sim::engine::run".to_string(), 1);
        let (findings, notes) = check_p2_baseline(&baseline, &counts);
        assert!(findings.is_empty());
        assert_eq!(notes.len(), 1);
        let (findings, notes) = check_p2_baseline(&baseline, &BTreeMap::new());
        assert!(findings.is_empty());
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert!(notes[0].contains("stale"));
    }

    #[test]
    fn n1_and_x1_ratchets_default_missing_entries_to_zero() {
        let mut baseline = Baseline::default();
        baseline.n1.insert("titan-sim".into(), 7);

        let mut counts = BTreeMap::new();
        counts.insert("titan-sim".to_string(), 7);
        counts.insert("titan-faults".to_string(), 0);
        let (findings, notes) = check_n1_baseline(&baseline, &counts);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(notes.is_empty());

        counts.insert("titan-faults".to_string(), 1);
        let (findings, _) = check_n1_baseline(&baseline, &counts);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::N1);
        assert!(findings[0].hint.contains("--update-baseline"));

        let mut x1 = BTreeMap::new();
        x1.insert("titan-gpu".to_string(), 1);
        let (findings, _) = check_x1_baseline(&baseline, &x1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::X1);

        // Improvement is a note, not a finding.
        counts.insert("titan-faults".to_string(), 0);
        counts.insert("titan-sim".to_string(), 3);
        let (findings, notes) = check_n1_baseline(&baseline, &counts);
        assert!(findings.is_empty());
        assert_eq!(notes.len(), 1);
    }

    fn path(crate_name: &str, file: &str, line: usize) -> T1Path {
        T1Path {
            sink_fn: "titan_sim::Engine::apply".into(),
            file: file.into(),
            line,
            crate_name: crate_name.into(),
            sink_kind: SinkKind::StateWrite,
            sink_line: line,
            source_kind: SourceKind::EnvRead,
            source_desc: "env::var(\"W\")".into(),
            source_file: "crates/stats/src/lib.rs".into(),
            source_line: 2,
            steps: vec![
                T1Step {
                    path: "titan_stats::host_width".into(),
                    file: "crates/stats/src/lib.rs".into(),
                    line: 2,
                },
                T1Step { path: "titan_sim::Engine::apply".into(), file: file.into(), line },
            ],
        }
    }

    #[test]
    fn t1_ratchet_reports_each_path_with_its_chain() {
        let baseline = Baseline::default();
        let counts = BTreeMap::from([("titan-sim".to_string(), 2), ("titan-obs".to_string(), 0)]);
        let paths = vec![
            path("titan-sim", "crates/simulator/src/lib.rs", 10),
            path("titan-sim", "crates/simulator/src/lib.rs", 20),
        ];
        let (findings, notes) = check_t1_baseline(&baseline, &counts, &paths);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(notes.is_empty());
        assert_eq!(findings[0].rule, Rule::T1);
        assert_eq!(findings[0].file, "crates/simulator/src/lib.rs");
        assert_eq!(findings[0].line, 10);
        assert!(findings[0].message.contains("titan_stats::host_width"), "{}", findings[0]);
        assert!(findings[0].hint.contains("allow(T1"), "{}", findings[0].hint);

        // Within budget: no findings. Under budget: an improvement note.
        let mut ok = Baseline::default();
        ok.t1.insert("titan-sim".into(), 2);
        let (findings, notes) = check_t1_baseline(&ok, &counts, &paths);
        assert!(findings.is_empty());
        assert!(notes.is_empty());
        let mut loose = Baseline::default();
        loose.t1.insert("titan-sim".into(), 5);
        loose.t1.insert("titan-gone".into(), 3);
        let (findings, notes) = check_t1_baseline(&loose, &counts, &paths);
        assert!(findings.is_empty());
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(notes[0].contains("titan-sim"), "{notes:?}");
        assert!(notes[1].contains("titan-gone"), "{notes:?}");
    }

    #[test]
    fn parse_rejects_unknown_sections_and_bad_counts() {
        assert!(Baseline::parse("[p2]\n\"a::b\" = 1\n").is_ok());
        assert!(Baseline::parse("[x1]\n\"titan-gpu\" = 0\n").is_ok());
        assert!(Baseline::parse("[t1]\n\"titan-sim\" = 1\n").is_ok());
        let stale = Baseline::parse("[budgets]\n\"a\" = 1\n");
        assert!(stale.is_err(), "the pre-v3 [budgets] section must be rejected");
        assert!(stale.unwrap_err().contains("--update-baseline"));
        assert!(Baseline::parse("[p2]\n\"a\" = many\n").is_err());
    }
}
