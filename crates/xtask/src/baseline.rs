//! The committed ratchet baseline (`crates/xtask/lint-baseline.toml`).
//!
//! Two sections, both per-crate, both ratcheting downward only:
//!
//! - `[budgets]` — non-test `.unwrap()` + `panic!` count (rule P1)
//! - `[n1]` — non-test lossy `as <numeric-type>` cast count in
//!   simulation crates (rule N1)
//!
//! The file is never hand-edited: `cargo xtask lint --update-baseline`
//! rewrites it deterministically (BTreeMap key order, fixed header,
//! trailing newline), and CI fails when the committed bytes differ from
//! the regenerated ones.

use std::collections::BTreeMap;

use crate::{Finding, Rule};

/// The committed per-crate budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// crate name → allowed non-test unwrap/panic count (P1).
    pub budgets: BTreeMap<String, usize>,
    /// crate name → allowed non-test numeric-cast count (N1).
    pub n1: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the minimal TOML subset the baseline file uses:
    /// `[budgets]` / `[n1]` sections of `"name" = count` lines.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut out = Baseline::default();
        let mut section: Option<&str> = None;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                section = match line {
                    "[budgets]" => Some("budgets"),
                    "[n1]" => Some("n1"),
                    other => {
                        return Err(format!(
                            "lint-baseline.toml:{}: unknown section `{other}`",
                            n + 1
                        ))
                    }
                };
                continue;
            }
            let Some(section) = section else { continue };
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("lint-baseline.toml:{}: expected `name = count`", n + 1))?;
            let key = k.trim().trim_matches('"').to_string();
            let count: usize = v
                .trim()
                .parse()
                .map_err(|_| format!("lint-baseline.toml:{}: bad count `{}`", n + 1, v.trim()))?;
            match section {
                "budgets" => out.budgets.insert(key, count),
                _ => out.n1.insert(key, count),
            };
        }
        Ok(out)
    }

    /// Renders the committed form: fixed header, sorted keys, trailing
    /// newline. `--update-baseline` writes exactly this, and the CI
    /// freshness job diffs the committed file against it byte-for-byte.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# titan-lint ratchet baseline — never hand-edit; regenerate with\n\
             # `cargo xtask lint --update-baseline`. Counts may only go down.\n\
             #\n\
             # [budgets]: non-test `.unwrap()` + `panic!` per crate (rule P1).\n\
             # [n1]:      non-test `as <numeric-type>` casts per sim crate (rule N1);\n\
             #            burn down via u64 widening / try_into, or annotate benign\n\
             #            sites with `// lint: allow(N1, reason)`.\n\
             \n[budgets]\n",
        );
        for (name, count) in &self.budgets {
            out.push_str(&format!("\"{name}\" = {count}\n"));
        }
        out.push_str("\n[n1]\n");
        for (name, count) in &self.n1 {
            out.push_str(&format!("\"{name}\" = {count}\n"));
        }
        out
    }
}

/// Compares measured P1 counts against `[budgets]`: every scanned crate
/// must have an entry (even at zero), counts may only fall. Returns
/// findings (regressions, missing entries) and improvement notes.
pub fn check_baseline(
    baseline: &Baseline,
    counts: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for (name, &count) in counts {
        match baseline.budgets.get(name) {
            None => findings.push(Finding {
                file: format!("crates/xtask/lint-baseline.toml ({name})"),
                line: 0,
                rule: Rule::P1,
                message: format!("crate `{name}` has no unwrap/panic budget (measured {count})"),
                hint: "run `cargo xtask lint --update-baseline` and commit the file".to_string(),
            }),
            Some(&budget) if count > budget => findings.push(Finding {
                file: format!("crates/xtask/lint-baseline.toml ({name})"),
                line: 0,
                rule: Rule::P1,
                message: format!("unwrap/panic count in `{name}` rose from {budget} to {count}"),
                hint: "replace the new .unwrap()/panic! with error returns; the budget \
                       only ratchets down"
                    .to_string(),
            }),
            Some(&budget) if count < budget => notes.push(format!(
                "`{name}` improved: {budget} → {count} unwrap/panic; run \
                 `cargo xtask lint --update-baseline` to ratchet the budget down"
            )),
            _ => {}
        }
    }
    (findings, notes)
}

/// Compares measured N1 cast counts against `[n1]`. Unlike P1, a crate
/// missing from the section carries an implicit zero budget — the N1
/// ratchet only has to stop *new* casts, not force an entry for every
/// cast-free crate.
pub fn check_n1_baseline(
    baseline: &Baseline,
    n1_counts: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    for (name, &count) in n1_counts {
        let budget = baseline.n1.get(name).copied().unwrap_or(0);
        if count > budget {
            findings.push(Finding {
                file: format!("crates/xtask/lint-baseline.toml ({name})"),
                line: 0,
                rule: Rule::N1,
                message: format!(
                    "lossy-cast count in `{name}` rose from {budget} to {count}"
                ),
                hint: "widen to u64 / use try_into with an explicit policy, or annotate a \
                       provably-benign cast with `// lint: allow(N1, reason)`; if the new \
                       count is truly the floor, run `cargo xtask lint --update-baseline` \
                       (n1_sites in `--format json` lists every cast)"
                    .to_string(),
            });
        } else if count < budget {
            notes.push(format!(
                "`{name}` improved: {budget} → {count} numeric casts; run \
                 `cargo xtask lint --update-baseline` to ratchet the budget down"
            ));
        }
    }
    (findings, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip_and_ratchet() {
        let mut baseline = Baseline::default();
        baseline.budgets.insert("titan-stats".into(), 5);
        baseline.budgets.insert("titan-sim".into(), 0);
        baseline.n1.insert("titan-sim".into(), 7);
        let text = baseline.render();
        assert_eq!(Baseline::parse(&text).unwrap(), baseline);
        assert!(text.ends_with('\n'), "trailing newline is part of the format");

        // Rendering is deterministic: same value, same bytes.
        assert_eq!(text, baseline.render());

        // P1 regression fails.
        let mut counts = BTreeMap::new();
        counts.insert("titan-stats".to_string(), 6);
        counts.insert("titan-sim".to_string(), 0);
        let (findings, notes) = check_baseline(&baseline, &counts);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::P1);
        assert!(notes.is_empty());

        // Improvement passes with a ratchet note.
        counts.insert("titan-stats".to_string(), 3);
        let (findings, notes) = check_baseline(&baseline, &counts);
        assert!(findings.is_empty());
        assert_eq!(notes.len(), 1);

        // Unknown crate requires a budgets entry.
        counts.insert("titan-new".to_string(), 0);
        let (findings, _) = check_baseline(&baseline, &counts);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn n1_ratchet_defaults_missing_entries_to_zero() {
        let mut baseline = Baseline::default();
        baseline.n1.insert("titan-sim".into(), 7);

        let mut counts = BTreeMap::new();
        counts.insert("titan-sim".to_string(), 7);
        counts.insert("titan-faults".to_string(), 0);
        let (findings, notes) = check_n1_baseline(&baseline, &counts);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(notes.is_empty());

        // A crate with no [n1] entry gets an implicit zero budget.
        counts.insert("titan-faults".to_string(), 1);
        let (findings, _) = check_n1_baseline(&baseline, &counts);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::N1);
        assert!(findings[0].hint.contains("--update-baseline"));

        // Improvement is a note, not a finding.
        counts.insert("titan-faults".to_string(), 0);
        counts.insert("titan-sim".to_string(), 3);
        let (findings, notes) = check_n1_baseline(&baseline, &counts);
        assert!(findings.is_empty());
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn parse_rejects_unknown_sections() {
        assert!(Baseline::parse("[budgets]\n\"a\" = 1\n").is_ok());
        assert!(Baseline::parse("[mystery]\n\"a\" = 1\n").is_err());
        assert!(Baseline::parse("[budgets]\n\"a\" = many\n").is_err());
    }
}
