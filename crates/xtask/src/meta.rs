//! The single rule-metadata table: one entry per lint rule, consumed
//! by `cargo xtask lint --explain RULE`, by the SARIF driver rule
//! array ([`crate::sarif`]), and mirrored verbatim in the LINTS.md
//! "SARIF rule descriptions" table (an integration test diffs the two,
//! so the docs cannot drift from the tool again — the pre-v4 SARIF
//! table had stale descriptions for D3/D4/D5/S1).

/// Everything the tool knows about one rule, in prose.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    pub id: &'static str,
    /// One line; the SARIF `shortDescription` and the LINTS.md mirror.
    pub short: &'static str,
    /// Why the rule exists (the determinism-contract tie-in).
    pub why: &'static str,
    /// What the rule looks for.
    pub looks_for: &'static str,
    /// The escape hatch, or the reason there is none.
    pub hatch: &'static str,
    /// T1 only: the source catalog. Empty for other rules.
    pub sources: &'static str,
    /// T1 only: the sink catalog. Empty for other rules.
    pub sinks: &'static str,
}

/// Rule-id order; the SARIF driver table iterates this directly.
pub const RULE_META: &[RuleMeta] = &[
    RuleMeta {
        id: "D1",
        short: "wall-clock or OS entropy source in a simulation crate",
        why: "the contract is seed -> byte-identical output; ambient time or entropy \
              makes two runs of the same seed diverge",
        looks_for: "SystemTime::now, Instant::now, thread_rng, from_entropy, rand::random \
                    anywhere in sim crates, tests included",
        hatch: "none — thread the seed; take time from the simulation clock",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "D2",
        short: "unordered hash container in non-test simulation code",
        why: "HashMap/HashSet iteration order is seeded per process, so any iteration \
              leaks process identity into sim state",
        looks_for: "HashMap/HashSet identifiers in non-test sim-crate code",
        hatch: "`// lint: sorted-iter <why>` for get-only use",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "D3",
        short: "NaN-unsafe partial_cmp().unwrap() inside a comparator",
        why: "partial_cmp panics on NaN and imposes no total order, so one bad sample \
              aborts the run or scrambles the sort",
        looks_for: "partial_cmp + unwrap/expect near sort_by/max_by/min_by/binary_search_by",
        hatch: "none — use f64::total_cmp",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "D4",
        short: "threading primitive in non-test engine code",
        why: "the event loop is single-threaded by contract; parallelism only ever runs \
              across independent simulations (titan-runner::replicate)",
        looks_for: "rayon, std::thread, thread::spawn/scope, into_par_iter, scope_map( in \
                    non-test engine-crate code",
        hatch: "none — fan out whole runs via the runner layer",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "D5",
        short: "wall-clock type in non-test engine code",
        why: "holding an Instant in engine state is already a time-domain leak even \
              before anyone calls .elapsed()",
        looks_for: "std::time:: paths, Instant, SystemTime, .elapsed( in non-test \
                    engine-crate code (lines D1 already reported are not repeated)",
        hatch: "none — telemetry goes through the sim-time titan-obs API",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "D6",
        short: "RNG draw inside a comparator or Drop impl in an engine crate",
        why: "comparator call order and Drop order are implementation details, so draws \
              inside them reorder the seeded stream between toolchains",
        looks_for: "gen/gen_bool/gen_range/sample/next_u32/next_u64/fill_bytes inside \
                    sort/retain/dedup/min/max/binary-search closures or Drop impls",
        hatch: "`// lint: allow(D6, <why>)` on the line or the line above",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "E1",
        short: "fallible simulation result silently discarded",
        why: "a dropped injection Result is a simulation that silently diverges from \
              the paper's error model",
        looks_for: "`let _ = expr;`, bare `.ok();`, and discarded calls to #[must_use] \
                    workspace sim APIs in non-test sim code",
        hatch: "`// lint: allow(E1, <why>)`; `let _ = write!/writeln!` is exempt",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "L1",
        short: "crate dependency violates the committed layering DAG",
        why: "an edge from an engine crate to the runner/CLI lets host state flow back \
              into the simulation",
        looks_for: "crates/*/Cargo.toml [dependencies] edges outside layering::LAYERS; \
                    rayon in engine manifests",
        hatch: "none — fix the edge, or amend LAYERS and the DETERMINISM.md diagram \
                together",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "N1",
        short: "lossy numeric cast budget exceeded in a simulation crate",
        why: "the paper's own DBE counts were corrupted by silent truncation; every \
              `as <numeric>` cast is that failure shape",
        looks_for: "`as u8..f64` casts in non-test sim code, counted per crate against \
                    the [n1] ratchet",
        hatch: "`// lint: allow(N1, <why>)`; plus the [n1] ratchet",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "P2",
        short: "per-function panic-surface budget exceeded",
        why: "every unwrap/index is a site where the simulator aborts instead of \
              returning an error; the budget pins each function at its current count",
        looks_for: ".unwrap()/.expect(/panic!/slice-indexing sites per fully-qualified \
                    fn path against the [p2] ratchet",
        hatch: "`// lint: allow(P2, <why>)`; plus the [p2] ratchet",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "S1",
        short: "frozen output schema drifted from its golden spec",
        why: "the JSON document schemas are contracts; a field rename invisible in \
              review breaks every downstream consumer",
        looks_for: "version literals and ordered field lists in schema-minting files vs \
                    the golden specs in crates/xtask/schemas/",
        hatch: "none — bump the version string and commit a new golden spec",
        sources: "",
        sinks: "",
    },
    RuleMeta {
        id: "T1",
        short: "nondeterminism source reaches a sim sink through a call chain",
        why: "D1/D2/D5 stop at the call site: a helper can read the host environment \
              and launder the value through two calls into sim state unseen. T1 walks \
              the workspace call graph to a fixed point, so the laundering path is \
              reported end to end — the proof obligation behind relaxing D4 to the \
              shard-barrier API (see DETERMINISM.md)",
        looks_for: "call chains from a nondeterminism source to a sim-crate sink, \
                    reported with the full source->sink witness (text, t1_paths in \
                    JSON, SARIF codeFlows) against the [t1] ratchet",
        hatch: "`// lint: allow(T1, <why>)` on the source read (clears every chain \
                through it) or on the importing call site (clears that chain); plus \
                the [t1] ratchet",
        sources: "env::var/var_os/vars + option_env!; Instant::now/SystemTime::now/\
                  .elapsed(); available_parallelism/current_num_threads/num_cpus/\
                  thread::current; .as_ptr()/.as_mut_ptr() as <int> and .addr(); \
                  HashMap/HashSet .iter/.keys/.values/.drain/.into_iter; \
                  thread_rng/from_entropy/rand::random",
        sinks: "assignments and mutating calls (push/insert/extend/append/record/\
                observe/push_str) through `self` in sim-crate fns; print!/println!/\
                eprint!/eprintln!/write!/writeln! and emit_console/fnv1a/write_u64/\
                write_bytes emission",
    },
    RuleMeta {
        id: "X1",
        short: "unreferenced pub item budget exceeded",
        why: "dead public surface rots, escapes review, and silently widens what the \
              determinism rules must police",
        looks_for: "pub items in titan-* crates no visible crate, test, example, or \
                    bench references, against the [x1] ratchet",
        hatch: "`// lint: allow(X1, <why>)`; plus the [x1] ratchet",
        sources: "",
        sinks: "",
    },
];

/// The metadata for one rule id, if it exists.
pub fn find(id: &str) -> Option<&'static RuleMeta> {
    RULE_META.iter().find(|m| m.id == id)
}

/// The `--explain RULE` text: rationale, catalog, hatch recipe.
pub fn explain(id: &str) -> Option<String> {
    let m = find(id)?;
    let mut out = format!("{} — {}\n\nwhy:       {}\nlooks for: {}\n", m.id, m.short, m.why, m.looks_for);
    if !m.sources.is_empty() {
        out.push_str(&format!("sources:   {}\n", m.sources));
    }
    if !m.sinks.is_empty() {
        out.push_str(&format!("sinks:     {}\n", m.sinks));
    }
    out.push_str(&format!("hatch:     {}\n", m.hatch));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    #[test]
    fn every_rule_variant_has_metadata_and_vice_versa() {
        let variants = [
            Rule::D1,
            Rule::D2,
            Rule::D3,
            Rule::D4,
            Rule::D5,
            Rule::D6,
            Rule::E1,
            Rule::N1,
            Rule::L1,
            Rule::S1,
            Rule::P2,
            Rule::X1,
            Rule::T1,
        ];
        assert_eq!(RULE_META.len(), variants.len());
        for v in variants {
            assert!(find(v.as_str()).is_some(), "no metadata for {v}");
        }
        // Table stays in id order (the SARIF document iterates it).
        let ids: Vec<&str> = RULE_META.iter().map(|m| m.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn explain_renders_the_t1_catalog() {
        let text = explain("T1").unwrap();
        assert!(text.starts_with("T1 — "));
        assert!(text.contains("sources:"), "{text}");
        assert!(text.contains("env::var"), "{text}");
        assert!(text.contains("sinks:"), "{text}");
        assert!(text.contains("allow(T1"), "{text}");
        assert!(explain("Z9").is_none());

        // Non-T1 rules have no source/sink catalog lines.
        let d1 = explain("D1").unwrap();
        assert!(!d1.contains("sources:"));
        assert!(d1.contains("hatch:"));
    }
}
