//! Finding renderers: `--format text` (human), `--format json`
//! (machine-readable, byte-stable), `--format github` (workflow
//! annotation commands). `--format sarif` lives in [`crate::sarif`].
//!
//! The JSON document is itself a frozen schema, `titan-lint/4`: CI
//! uploads it as an artifact and downstream dashboards diff it between
//! runs, so its key order and separators must be byte-identical for
//! identical input — everything it serializes is either a BTreeMap or
//! a pre-sorted vector, and the writer uses no HashMap anywhere.
//!
//! `titan-lint/4` supersedes `titan-lint/3`: the `t1_counts` map and
//! the `t1_paths` array (rule T1's per-crate determinism-taint path
//! counts and full source→sink witness chains) are new; everything
//! else is unchanged. (`/3` had replaced the per-crate
//! `unwrap_panic_counts` of `/2` with per-function `p2_counts` and
//! added the `x1_*` dead-pub worklist.)

use crate::LintReport;

/// The lint report's own output schema version.
pub const JSON_SCHEMA: &str = "titan-lint/4";

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the `titan-lint/4` JSON document. Findings are emitted in
/// the report's (already sorted) order; maps iterate in BTreeMap key
/// order; two runs over an identical tree produce identical bytes.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{JSON_SCHEMA}\",\n"));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));

    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"hint\": \"{}\"}}",
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.message),
            esc(&f.hint),
        ));
    }
    out.push_str(if report.findings.is_empty() { "],\n" } else { "\n  ],\n" });

    out.push_str("  \"notes\": [");
    for (i, n) in report.notes.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    \"{}\"", esc(n)));
    }
    out.push_str(if report.notes.is_empty() { "],\n" } else { "\n  ],\n" });

    render_count_map(&mut out, "p2_counts", &report.p2_counts);
    out.push_str(",\n");
    render_count_map(&mut out, "n1_counts", &report.n1_counts);
    out.push_str(",\n");

    out.push_str("  \"n1_sites\": [");
    for (i, s) in report.n1_sites.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"cast\": \"{}\"}}",
            esc(&s.file),
            s.line,
            esc(&s.cast),
        ));
    }
    out.push_str(if report.n1_sites.is_empty() { "],\n" } else { "\n  ],\n" });

    render_count_map(&mut out, "x1_counts", &report.x1_counts);
    out.push_str(",\n");

    out.push_str("  \"x1_sites\": [");
    for (i, s) in report.x1_sites.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"path\": \"{}\"}}",
            esc(&s.file),
            s.line,
            esc(&s.path),
        ));
    }
    out.push_str(if report.x1_sites.is_empty() { "],\n" } else { "\n  ],\n" });

    render_count_map(&mut out, "t1_counts", &report.t1_counts);
    out.push_str(",\n");

    out.push_str("  \"t1_paths\": [");
    for (i, p) in report.t1_paths.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"crate\": \"{}\", \
             \"sink_fn\": \"{}\", \"sink_kind\": \"{}\", \"sink_line\": {}, \
             \"source_kind\": \"{}\", \"source\": \"{}\", \
             \"source_file\": \"{}\", \"source_line\": {}, \"steps\": [",
            esc(&p.file),
            p.line,
            esc(&p.crate_name),
            esc(&p.sink_fn),
            esc(p.sink_kind.as_str()),
            p.sink_line,
            esc(p.source_kind.as_str()),
            esc(&p.source_desc),
            esc(&p.source_file),
            p.source_line,
        ));
        for (j, s) in p.steps.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                esc(&s.path),
                esc(&s.file),
                s.line,
            ));
        }
        out.push_str("]}");
    }
    out.push_str(if report.t1_paths.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

fn render_count_map(
    out: &mut String,
    key: &str,
    map: &std::collections::BTreeMap<String, usize>,
) {
    out.push_str(&format!("  \"{key}\": {{"));
    for (i, (name, count)) in map.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    \"{}\": {}", esc(name), count));
    }
    out.push_str(if map.is_empty() { "}" } else { "\n  }" });
}

/// Escapes a GitHub annotation *property* value (file=, title=):
/// percent, CR, LF, colon, and comma are significant there.
fn esc_gh_prop(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Escapes a GitHub annotation *message*: only percent, CR, LF.
fn esc_gh_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Renders findings as GitHub Actions workflow commands — one
/// `::error` per finding, so they surface as inline PR annotations —
/// followed by a plain summary line.
pub fn render_github(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let mut props = format!("file={}", esc_gh_prop(&f.file));
        if f.line > 0 {
            props.push_str(&format!(",line={}", f.line));
        }
        props.push_str(&format!(",title={}", esc_gh_prop(&format!("titan-lint {}", f.rule))));
        out.push_str(&format!(
            "::error {props}::{}\n",
            esc_gh_data(&format!("{} (hint: {})", f.message, f.hint))
        ));
    }
    for n in &report.notes {
        out.push_str(&format!("::notice title=titan-lint::{}\n", esc_gh_data(n)));
    }
    out.push_str(&format!(
        "titan-lint: {} file(s) scanned, {} violation(s)\n",
        report.files_scanned,
        report.findings.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{SinkKind, SourceKind};
    use crate::taint::{T1Path, T1Step};
    use crate::{Finding, N1Site, Rule, X1Site};

    fn sample_report() -> LintReport {
        let mut report = LintReport::default();
        report.files_scanned = 3;
        report.findings.push(Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: Rule::D2,
            message: "m".into(),
            hint: "h \"quoted\"".into(),
        });
        report.findings.push(Finding {
            file: "crates/xtask/lint-baseline.toml (titan_x::f)".into(),
            line: 0,
            rule: Rule::P2,
            message: "rose from 0 to 1".into(),
            hint: "ratchet".into(),
        });
        report.p2_counts.insert("titan_x::f".into(), 2);
        report.n1_counts.insert("titan-x".into(), 1);
        report.n1_sites.push(N1Site {
            file: "crates/x/src/lib.rs".into(),
            line: 9,
            cast: "as u32".into(),
        });
        report.x1_counts.insert("titan-x".into(), 1);
        report.x1_sites.push(X1Site {
            file: "crates/x/src/lib.rs".into(),
            line: 11,
            path: "titan_x::orphan".into(),
        });
        report.t1_counts.insert("titan-x".into(), 1);
        report.t1_paths.push(T1Path {
            sink_fn: "titan_x::Engine::apply".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 13,
            crate_name: "titan-x".into(),
            sink_kind: SinkKind::StateWrite,
            sink_line: 13,
            source_kind: SourceKind::EnvRead,
            source_desc: "env::var(\"W\")".into(),
            source_file: "crates/stats/src/lib.rs".into(),
            source_line: 2,
            steps: vec![
                T1Step {
                    path: "titan_stats::host_width".into(),
                    file: "crates/stats/src/lib.rs".into(),
                    line: 2,
                },
                T1Step {
                    path: "titan_x::Engine::apply".into(),
                    file: "crates/x/src/lib.rs".into(),
                    line: 13,
                },
            ],
        });
        report.notes.push("a note".into());
        report
    }

    #[test]
    fn json_is_schema_tagged_and_escaped() {
        let json = render_json(&sample_report());
        assert!(json.starts_with("{\n  \"schema\": \"titan-lint/4\",\n"));
        assert!(json.contains("\"rule\": \"D2\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"titan_x::f\": 2"));
        assert!(json.contains("\"n1_counts\""));
        assert!(json.contains("\"cast\": \"as u32\""));
        assert!(json.contains("\"x1_counts\""));
        assert!(json.contains("\"path\": \"titan_x::orphan\""));
        assert!(json.contains("\"t1_counts\""));
        assert!(json.contains("\"source_kind\": \"env read\""));
        assert!(json.contains("\"source\": \"env::var(\\\"W\\\")\""));
        assert!(json.contains("\"sink_kind\": \"a sim-state write\""));
        assert!(json.contains(
            "\"steps\": [{\"fn\": \"titan_stats::host_width\", \
             \"file\": \"crates/stats/src/lib.rs\", \"line\": 2}, "
        ));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_is_byte_stable_for_equal_reports() {
        assert_eq!(render_json(&sample_report()), render_json(&sample_report()));
    }

    #[test]
    fn json_empty_report_has_empty_collections() {
        let json = render_json(&LintReport::default());
        assert!(json.contains("\"findings\": [],"));
        assert!(json.contains("\"p2_counts\": {},"));
        assert!(json.contains("\"n1_sites\": [],"));
        assert!(json.contains("\"x1_sites\": [],"));
        assert!(json.contains("\"t1_counts\": {},"));
        assert!(json.contains("\"t1_paths\": []\n"));
    }

    #[test]
    fn github_format_emits_error_commands() {
        let gh = render_github(&sample_report());
        assert!(gh.contains(
            "::error file=crates/x/src/lib.rs,line=7,title=titan-lint D2::m (hint: h \"quoted\")"
        ));
        // Line-0 findings (crate-level) omit the line= property, and
        // significant property characters are percent-escaped.
        assert!(gh.contains("::error file=crates/xtask/lint-baseline.toml (titan_x%3A%3Af),title="));
        assert!(!gh.contains("line=0"));
        assert!(gh.contains("::notice title=titan-lint::a note"));
        assert!(gh.ends_with("3 file(s) scanned, 2 violation(s)\n"));
    }
}
