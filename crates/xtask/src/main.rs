//! `cargo xtask` — workspace task runner. The one task so far is
//! `lint`, the titan-lint determinism & panic-safety pass (see lib.rs,
//! DETERMINISM.md, and the LINTS.md rule catalog).

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{find_workspace_root, run_lint, Baseline, LintReport, Rule};

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint [--format text|json|github|sarif] [--out FILE] [--sarif FILE]
       [--update-baseline] [--explain RULE]
        Run the titan-lint pass (rules D1-D6, E1, N1, L1, S1, P2, X1,
        T1) over all workspace crates. Exits 1 on any violation.

        --format json       machine-readable titan-lint/4 document on
                            stdout (byte-stable: sorted findings, sorted
                            maps)
        --format github     GitHub Actions ::error annotations on stdout
        --format sarif      SARIF 2.1.0 log on stdout (what GitHub code
                            scanning ingests; T1 results carry codeFlows)
        --out FILE          always write the titan-lint/4 JSON document
                            to FILE, regardless of --format (the CI
                            artifact), even when the lint fails
        --sarif FILE        always write the SARIF 2.1.0 log to FILE,
                            regardless of --format, even when the lint
                            fails
        --update-baseline   rewrite crates/xtask/lint-baseline.toml with
                            the measured [p2] panic-surface, [n1] cast,
                            [x1] dead-pub, and [t1] taint-path counts
                            (deterministic: sorted keys, trailing
                            newline)
        --explain RULE      print one rule's rationale, source/sink
                            catalog, and escape-hatch recipe, then exit
                            (no scan)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") => {
            eprint!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
    Sarif,
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut out_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                Some("sarif") => format = Format::Sarif,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "xtask lint: --format takes `text`, `json`, `github`, or `sarif`, \
                         got {other:?}"
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask lint: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--sarif" => match it.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask lint: --sarif needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--update-baseline" => update_baseline = true,
            "--explain" => match it.next() {
                Some(rule) => match xtask::meta::explain(rule) {
                    Some(text) => {
                        print!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        let known: Vec<&str> =
                            xtask::meta::RULE_META.iter().map(|m| m.id).collect();
                        eprintln!(
                            "xtask lint: unknown rule `{rule}` (known: {})",
                            known.join(", ")
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("xtask lint: --explain needs a rule id (e.g. T1)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    // CARGO_MANIFEST_DIR points at crates/xtask when run via the cargo
    // alias; fall back to the cwd for a bare `./xtask` invocation.
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_workspace_root(&start) else {
        eprintln!("xtask lint: no workspace root found above {}", start.display());
        return ExitCode::FAILURE;
    };

    let baseline_path = root.join("crates/xtask/lint-baseline.toml");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) if update_baseline => {
                // A stale-format file is exactly what --update-baseline
                // exists to replace; start from empty budgets.
                eprintln!("xtask lint: note: replacing unparseable baseline ({e})");
                Baseline::default()
            }
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Baseline::default(),
    };

    let report = match run_lint(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if update_baseline {
        // Budgets are implicit-zero: clean fns/crates carry no entry.
        let nonzero = |m: &std::collections::BTreeMap<String, usize>| {
            m.iter().filter(|(_, &n)| n > 0).map(|(k, &n)| (k.clone(), n)).collect()
        };
        let new = Baseline {
            p2: nonzero(&report.p2_counts),
            n1: nonzero(&report.n1_counts),
            x1: nonzero(&report.x1_counts),
            t1: nonzero(&report.t1_counts),
        };
        for (section, old_map, new_map) in [
            ("p2", &baseline.p2, &new.p2),
            ("n1", &baseline.n1, &new.n1),
            ("x1", &baseline.x1, &new.x1),
            ("t1", &baseline.t1, &new.t1),
        ] {
            for (name, &count) in new_map {
                if let Some(&old) = old_map.get(name) {
                    if count > old {
                        eprintln!(
                            "xtask lint: warning: raising [{section}] `{name}` {old} -> \
                             {count}; the ratchet is meant to go down"
                        );
                    }
                }
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, new.render()) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: wrote {}", baseline_path.display());
    }

    // With a fresh baseline, ratchet findings from this run are stale;
    // the token-rule and structural findings still stand.
    let shown = LintReport {
        findings: if update_baseline {
            report
                .findings
                .iter()
                .filter(|f| {
                    f.rule != Rule::P2
                        && f.rule != Rule::N1
                        && f.rule != Rule::X1
                        && f.rule != Rule::T1
                })
                .cloned()
                .collect()
        } else {
            report.findings.clone()
        },
        notes: report.notes.clone(),
        p2_counts: report.p2_counts.clone(),
        n1_counts: report.n1_counts.clone(),
        n1_sites: report.n1_sites.clone(),
        x1_counts: report.x1_counts.clone(),
        x1_sites: report.x1_sites.clone(),
        t1_counts: report.t1_counts.clone(),
        t1_paths: report.t1_paths.clone(),
        files_scanned: report.files_scanned,
    };

    // The JSON and SARIF artifacts are written unconditionally and
    // before the exit path, so CI can upload findings from a failing
    // run.
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, xtask::render_json(&shown)) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, xtask::render_sarif(&shown)) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    match format {
        Format::Json => print!("{}", xtask::render_json(&shown)),
        Format::Github => print!("{}", xtask::render_github(&shown)),
        Format::Sarif => print!("{}", xtask::render_sarif(&shown)),
        Format::Text => {
            for f in &shown.findings {
                println!("{f}");
            }
            for note in &shown.notes {
                eprintln!("note: {note}");
            }
            eprintln!(
                "xtask lint: {} file(s) scanned, {} violation(s)",
                shown.files_scanned,
                shown.findings.len()
            );
        }
    }

    if shown.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
