//! `cargo xtask` — workspace task runner. The one task so far is
//! `lint`, the titan-lint determinism & panic-safety pass (see lib.rs
//! and DETERMINISM.md).

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{find_workspace_root, run_lint, Baseline};

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint [--format json] [--update-baseline]
        Run the titan-lint determinism & panic-safety pass over all
        workspace crates. Exits 1 on any violation.

        --format json       machine-readable findings on stdout
        --update-baseline   rewrite crates/xtask/lint-baseline.toml with
                            the measured unwrap/panic counts (P1 ratchet)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") => {
            eprint!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("xtask lint: --format takes `json` or `text`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    // CARGO_MANIFEST_DIR points at crates/xtask when run via the cargo
    // alias; fall back to the cwd for a bare `./xtask` invocation.
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_workspace_root(&start) else {
        eprintln!("xtask lint: no workspace root found above {}", start.display());
        return ExitCode::FAILURE;
    };

    let baseline_path = root.join("crates/xtask/lint-baseline.toml");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xtask lint: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Baseline::default(),
    };

    let report = match run_lint(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if update_baseline {
        let new = Baseline { budgets: report.counts.clone() };
        for (name, &count) in &new.budgets {
            if let Some(&old) = baseline.budgets.get(name) {
                if count > old {
                    eprintln!(
                        "xtask lint: warning: raising `{name}` budget {old} -> {count}; \
                         the ratchet is meant to go down"
                    );
                }
            }
        }
        if let Err(e) = std::fs::write(&baseline_path, new.render()) {
            eprintln!("xtask lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: wrote {}", baseline_path.display());
    }

    // With a fresh baseline, P1 findings from this run are stale; the
    // D-rule findings still stand.
    let findings: Vec<_> = if update_baseline {
        report.findings.iter().filter(|f| f.rule != xtask::Rule::P1).collect()
    } else {
        report.findings.iter().collect()
    };

    if json {
        let shown = xtask::LintReport {
            findings: findings.iter().map(|f| (*f).clone()).collect(),
            notes: report.notes.clone(),
            counts: report.counts.clone(),
            files_scanned: report.files_scanned,
        };
        print!("{}", xtask::render_json(&shown));
    } else {
        for f in &findings {
            println!("{f}");
        }
        for note in &report.notes {
            eprintln!("note: {note}");
        }
        eprintln!(
            "xtask lint: {} file(s) scanned, {} violation(s)",
            report.files_scanned,
            findings.len()
        );
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
