//! Property tests for the titan-lint item parser: it must be total
//! (never panic on any input), and its item spans must be
//! token-aligned, ordered, disjoint among siblings, and nested inside
//! their parents — over adversarial Rust-shaped soup and over every
//! real source file in the workspace. The real-tree sweep additionally
//! pins the partition property the structural rules rely on: outside
//! file-level inner attributes, every code token of a well-formed file
//! belongs to exactly one top-level item span.

use std::collections::BTreeSet;
use std::path::Path;

use proptest::prelude::*;
use xtask::lexer::lex;
use xtask::parser::{parse, Item};

/// Fragments chosen to stress the parser: every item kind, attribute
/// and modifier soup, closures in comparator position, plus malformed
/// input (stray tokens, unbalanced brackets, unterminated headers).
fn fragments() -> impl Strategy<Value = String> {
    prop::sample::select(
        [
            "fn f(x: u32) -> u32 { x + 1 }",
            "pub fn g<T: Ord>(v: &mut Vec<T>) { v.sort_by(|a, b| a.cmp(b)); }",
            "mod m { pub fn inner() {} }",
            "mod decl;",
            "#[cfg(test)] mod tests { #[test] fn t() { assert!(x[0] > 1); } }",
            "impl Foo { fn method(&self) -> u32 { self.x } }",
            "impl Drop for Foo { fn drop(&mut self) {} }",
            "impl<T: Ord> From<Vec<T>> for Heap<T> { fn from(v: Vec<T>) -> Self { todo!() } }",
            "pub struct S { pub x: u32 }",
            "struct T(u32);",
            "enum E { A, B(u32) }",
            "union U { a: u32, b: f32 }",
            "pub const N: usize = 4;",
            "static mut COUNTER: u64 = 0;",
            "type Alias = Vec<u32>;",
            "use std::collections::BTreeMap;",
            "pub use crate::engine::Engine;",
            "extern crate alloc;",
            "extern \"C\" { fn abort(); }",
            "extern \"C\" fn callback(x: u32) -> u32 { x }",
            "macro_rules! m { () => {} }",
            "#![allow(dead_code)]",
            "#[must_use] pub fn outcome() -> u32 { 1 }",
            "trait Tr { fn req(&self); }",
            "pub(crate) fn scoped() {}",
            "const unsafe fn tricky() {}",
            "fn h() { let f = |a: u32| { a * 2 }; f(3); }",
            "fn r() { v.retain(|n| keep(n)); }",
            // Malformed tails the parser must survive:
            "let stray = 4;",
            "} } )",
            "fn broken(",
            "{ { {",
            "impl",
            "r#type",
            "|x| x + 1",
            "#",
            "#[",
            "pub",
        ]
        .into_iter()
        .map(String::from)
        .collect::<Vec<_>>(),
    )
}

/// Non-trivia token start/end byte offsets — the only legal span edges.
fn token_boundaries(src: &str) -> (BTreeSet<usize>, BTreeSet<usize>) {
    let mut starts = BTreeSet::new();
    let mut ends = BTreeSet::new();
    for t in lex(src) {
        if !t.kind.is_trivia() {
            starts.insert(t.start);
            ends.insert(t.end);
        }
    }
    (starts, ends)
}

/// Recursively checks: siblings ordered and disjoint, spans non-empty
/// and token-aligned, bodies inside their item, children inside their
/// parent.
fn assert_tree_invariants(
    src: &str,
    items: &[Item],
    lo: usize,
    hi: usize,
    starts: &BTreeSet<usize>,
    ends: &BTreeSet<usize>,
) {
    let mut prev_end = lo;
    for it in items {
        assert!(
            it.start >= prev_end,
            "sibling spans unordered/overlapping: {}..{} after end {} in {src:?}",
            it.start,
            it.end,
            prev_end,
        );
        assert!(it.start < it.end, "empty item span at byte {} in {src:?}", it.start);
        assert!(
            it.end <= hi,
            "span {}..{} escapes its parent bound {hi} in {src:?}",
            it.start,
            it.end,
        );
        assert!(
            starts.contains(&it.start),
            "span start {} is not a token boundary in {src:?}",
            it.start,
        );
        assert!(
            ends.contains(&it.end),
            "span end {} is not a token boundary in {src:?}",
            it.end,
        );
        if let Some((blo, bhi)) = it.body {
            assert!(
                it.start <= blo && blo < bhi && bhi <= it.end,
                "body {blo}..{bhi} escapes item span {}..{} in {src:?}",
                it.start,
                it.end,
            );
        }
        assert_tree_invariants(src, &it.children, it.start, it.end, starts, ends);
        prev_end = it.end;
    }
}

/// For a well-formed file: every non-trivia token is covered by some
/// top-level item span, except file-level inner attributes (`#![...]`),
/// which the parser deliberately consumes without emitting a node.
fn assert_full_coverage(file: &Path, src: &str, items: &[Item]) {
    let code: Vec<_> = lex(src).into_iter().filter(|t| !t.kind.is_trivia()).collect();
    let spans: Vec<(usize, usize)> = items.iter().map(|it| (it.start, it.end)).collect();
    let mut k = 0;
    while k < code.len() {
        let t = &code[k];
        if spans.iter().any(|&(lo, hi)| lo <= t.start && t.start < hi) {
            k += 1;
            continue;
        }
        assert!(
            t.text(src) == "#"
                && code.get(k + 1).map(|n| n.text(src)) == Some("!")
                && code.get(k + 2).map(|n| n.text(src)) == Some("["),
            "{}:{}: token {:?} belongs to no item and is not an inner attribute",
            file.display(),
            t.line,
            t.text(src),
        );
        // Skip the bracketed attribute group.
        let mut depth = 0usize;
        k += 2;
        while k < code.len() {
            match code[k].text(src) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        k += 1;
    }
}

/// The acceptance sweep: parse every real source file in the workspace
/// (the lint targets AND xtask's own macro/string-heavy sources) and
/// hold the partition property on each.
#[test]
fn real_workspace_files_partition_into_items() {
    let root =
        xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let mut files = Vec::new();
    for target in xtask::workspace_targets(&root).expect("targets") {
        files.extend(xtask::rust_files(&target.src_dir).expect("files"));
    }
    files.extend(xtask::rust_files(&root.join("crates/xtask/src")).expect("files"));
    let mut checked = 0usize;
    for file in files {
        let src = std::fs::read_to_string(&file).expect("read");
        let toks = lex(&src);
        let items = parse(&src, &toks);
        let (starts, ends) = token_boundaries(&src);
        assert_tree_invariants(&src, &items, 0, src.len(), &starts, &ends);
        assert_full_coverage(&file, &src, &items);
        checked += 1;
    }
    assert!(checked > 40, "expected to sweep the whole workspace, swept {checked} files");
}

proptest! {
    /// The parser is total and its tree invariants hold on adversarial
    /// item soup glued to printable noise.
    #[test]
    fn adversarial_item_soup_keeps_tree_invariants(
        parts in prop::collection::vec(fragments(), 0..10),
        soup in "\\PC{0,60}",
    ) {
        let mut src = parts.join("\n");
        src.push('\n');
        src.push_str(&soup);
        let toks = lex(&src);
        let items = parse(&src, &toks);
        let (starts, ends) = token_boundaries(&src);
        assert_tree_invariants(&src, &items, 0, src.len(), &starts, &ends);
    }

    /// Well-formed concatenations (items only, newline-separated) keep
    /// full coverage: every code token lands in exactly one item span.
    #[test]
    fn well_formed_item_sequences_are_fully_covered(
        parts in prop::collection::vec(fragments(), 1..8),
    ) {
        // Filter to the well-formed fragments (the malformed ones are
        // for totality, not coverage).
        let clean: Vec<String> = parts
            .into_iter()
            .filter(|p| {
                !matches!(
                    p.as_str(),
                    "let stray = 4;" | "} } )" | "fn broken(" | "{ { {" | "impl" | "r#type"
                        | "|x| x + 1" | "#" | "#[" | "pub"
                )
            })
            .collect();
        let src = clean.join("\n");
        let items = xtask::parser::parse_source(&src);
        assert_full_coverage(Path::new("<generated>"), &src, &items);
    }
}
