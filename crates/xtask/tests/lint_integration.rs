//! End-to-end tests for `cargo xtask lint`: injected violations into
//! synthetic workspaces under CARGO_TARGET_TMPDIR must be found, clean
//! trees must pass, the per-function P2 / per-crate N1 / per-crate X1
//! ratchets must hold, and the committed golden fixtures under
//! `tests/fixtures/` pin one hit and one non-hit per structural rule.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::{check_p2_baseline, run_lint, Baseline, Finding, Rule};

fn mkdirs(p: &Path) {
    fs::create_dir_all(p).expect("mkdir");
}

/// Lays out a minimal workspace: root Cargo.toml with [workspace], one
/// sim-scope crate (`simulator`) and one analysis-scope crate (`stats`).
fn scaffold(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clean slate");
    }
    for krate in ["simulator", "stats"] {
        mkdirs(&root.join("crates").join(krate).join("src"));
        fs::write(
            root.join("crates").join(krate).join("Cargo.toml"),
            format!("[package]\nname = \"{krate}\"\n"),
        )
        .unwrap();
        fs::write(
            root.join("crates").join(krate).join("src/lib.rs"),
            "pub fn ok() {}\n",
        )
        .unwrap();
    }
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .unwrap();
    root
}

/// The committed golden fixture workspaces.
fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint(root: &Path, baseline: &Baseline) -> Vec<(Rule, String)> {
    run_lint(root, baseline)
        .expect("scan")
        .findings
        .into_iter()
        .map(|f| (f.rule, format!("{}:{}", f.file, f.line)))
        .collect()
}

#[test]
fn clean_workspace_passes() {
    let root = scaffold("lint_clean");
    assert!(lint(&root, &Baseline::default()).is_empty());
}

#[test]
fn injected_d1_violation_fails_in_sim_crate_only() {
    let root = scaffold("lint_d1");
    let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    fs::write(root.join("crates/simulator/src/clock.rs"), src).unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D1);
    assert!(found[0].1.ends_with("clock.rs:1"), "got {}", found[0].1);

    // The same code in the analysis-scope crate is allowed: stats may
    // time itself, the simulation may not.
    let root2 = scaffold("lint_d1_stats");
    fs::write(root2.join("crates/stats/src/clock.rs"), src).unwrap();
    assert!(lint(&root2, &Baseline::default()).is_empty());
}

#[test]
fn injected_d2_violation_fails_unless_justified() {
    let root = scaffold("lint_d2");
    fs::write(
        root.join("crates/simulator/src/state.rs"),
        "use std::collections::HashMap;\npub struct S { m: HashMap<u32, u32> }\n",
    )
    .unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.iter().filter(|(r, _)| *r == Rule::D2).count(), 2);

    // The escape hatch silences it.
    fs::write(
        root.join("crates/simulator/src/state.rs"),
        "use std::collections::HashMap; // lint: sorted-iter\n\
         // lint: sorted-iter — get-only cache, never iterated\n\
         pub struct S { m: HashMap<u32, u32> }\n",
    )
    .unwrap();
    assert!(lint(&root, &Baseline::default()).is_empty());
}

/// The hatch fix pinned: a comment-only hatch line reaches across
/// blank/comment lines to the next *code* line — and a hatch already
/// consumed by one code line does not leak onto the next.
#[test]
fn hatch_attaches_to_the_next_code_line_only() {
    let root = scaffold("lint_hatch_detach");
    fs::write(
        root.join("crates/simulator/src/state.rs"),
        "// lint: sorted-iter\n\
         \n\
         // iterated only under a collected-and-sorted view\n\
         pub struct S { m: std::collections::HashMap<u32, u32> }\n",
    )
    .unwrap();
    assert!(
        lint(&root, &Baseline::default()).is_empty(),
        "a hatch must carry across blank and comment lines"
    );

    fs::write(
        root.join("crates/simulator/src/state.rs"),
        "pub struct A { m: std::collections::HashMap<u32, u32> } // lint: sorted-iter\n\
         pub struct B { m: std::collections::HashMap<u32, u32> }\n",
    )
    .unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::D2);
    assert!(found[0].1.ends_with("state.rs:2"), "got {}", found[0].1);
}

#[test]
fn injected_d3_violation_fails_in_any_crate() {
    let root = scaffold("lint_d3");
    fs::write(
        root.join("crates/stats/src/sortit.rs"),
        "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
    )
    .unwrap();
    // Budget the unwrap so only the D3 fires — the comparator is the
    // defect here, not the panic count.
    let mut b = Baseline::default();
    b.p2.insert("stats::sortit::s".into(), 1);
    let found = lint(&root, &b);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::D3);
}

#[test]
fn p2_budget_ratchets_per_function() {
    let root = scaffold("lint_p2");
    fs::write(
        root.join("crates/stats/src/risky.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\npub fn g() -> u32 { 1 }\n",
    )
    .unwrap();

    // Implicit zero budget: the new unwrap is a regression, attributed
    // to the *function*, not the crate.
    let report = run_lint(&root, &Baseline::default()).expect("scan");
    let p2: Vec<&Finding> = report.findings.iter().filter(|f| f.rule == Rule::P2).collect();
    assert_eq!(p2.len(), 1, "{:?}", report.findings);
    assert!(p2[0].message.contains("stats::risky::f"), "{}", p2[0].message);
    assert_eq!(report.p2_counts.get("stats::risky::f"), Some(&1));
    assert_eq!(report.p2_counts.get("stats::risky::g"), None, "clean fns carry no entry");

    // A budget covering exactly that fn passes.
    let mut b = Baseline::default();
    b.p2.insert("stats::risky::f".into(), 1);
    assert!(lint(&root, &b).is_empty());

    // A second unwrap in a *different* fn still regresses — the crate
    // total is not the unit any more.
    fs::write(
        root.join("crates/stats/src/risky.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn g() -> u32 { \"1\".parse().unwrap() }\n",
    )
    .unwrap();
    let found = lint(&root, &b);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::P2);

    // Fixing f leaves a stale-entry note; re-rendering the measured
    // counts (what --update-baseline writes) drops the entry and then
    // rejects a reintroduction.
    fs::write(
        root.join("crates/stats/src/risky.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\npub fn g() -> u32 { 1 }\n",
    )
    .unwrap();
    let report = run_lint(&root, &b).expect("scan");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.notes.len(), 1, "{:?}", report.notes);
    assert!(report.notes[0].contains("--update-baseline"));
    let updated = Baseline {
        p2: report.p2_counts.clone(),
        n1: report.n1_counts.clone(),
        x1: report.x1_counts.clone(),
        t1: report.t1_counts.clone(),
    };
    let reparsed = Baseline::parse(&updated.render()).unwrap();
    assert!(reparsed.p2.is_empty(), "zero-count fns must drop out of [p2]");
    let mut counts = std::collections::BTreeMap::new();
    counts.insert("stats::risky::f".to_string(), 1);
    let (regressions, _) = check_p2_baseline(&reparsed, &counts);
    assert_eq!(regressions.len(), 1);
}

#[test]
fn injected_d4_violation_fails_in_engine_crate_only() {
    let root = scaffold("lint_d4");
    let src = "pub fn go() { rayon::join(|| 1, || 2); }\n";
    fs::write(root.join("crates/simulator/src/par.rs"), src).unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D4);
    assert!(found[0].1.ends_with("par.rs:1"), "got {}", found[0].1);

    // The same code outside the engine scope (stats) is fine: the
    // analysis side may fan out.
    let root2 = scaffold("lint_d4_stats");
    fs::write(root2.join("crates/stats/src/par.rs"), src).unwrap();
    assert!(lint(&root2, &Baseline::default()).is_empty());
}

/// The satellite guarantee: the *real* engine crates (the simulator and
/// everything it builds on) contain no thread-pool or raw-thread call
/// outside test code — `Simulator::run` cannot reach a thread. The
/// whole-tree lint above CI enforces the same thing; this pins it from
/// the test suite so a green `cargo test` implies it too.
#[test]
fn real_engine_crates_have_no_threading() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let baseline_text =
        fs::read_to_string(root.join("crates/xtask/lint-baseline.toml")).expect("baseline");
    let baseline = Baseline::parse(&baseline_text).expect("parse baseline");
    let report = run_lint(&root, &baseline).expect("scan");
    let d4: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D4)
        .map(|f| format!("{}:{}", f.file, f.line))
        .collect();
    assert!(d4.is_empty(), "threading inside engine crates: {d4:?}");
}

#[test]
fn injected_d5_violation_fails_in_engine_crate_only() {
    let root = scaffold("lint_d5");
    // A stored Duration — no `::now()` call, so D1 cannot see it; the
    // wall-clock *type* leaking into engine state is D5's job.
    let src = "pub fn t(d: std::time::Duration) -> u64 { d.as_secs() }\n";
    fs::write(root.join("crates/simulator/src/meter.rs"), src).unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D5);
    assert!(found[0].1.ends_with("meter.rs:1"), "got {}", found[0].1);

    // The same code in the analysis-scope crate is allowed: profiling
    // wall time is exactly what the bench/CLI side does.
    let root2 = scaffold("lint_d5_stats");
    fs::write(root2.join("crates/stats/src/meter.rs"), src).unwrap();
    assert!(lint(&root2, &Baseline::default()).is_empty());
}

/// The satellite guarantee for PR 3: the *real* engine crates
/// (simulator, faults, gpu, workload, topology, conlog, nvsmi, obs)
/// record telemetry only through the sim-time titan-obs API — no
/// wall-clock types or readings anywhere in their non-test code, so
/// every metrics document is byte-identical across thread widths.
#[test]
fn real_engine_crates_record_only_sim_time_telemetry() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let baseline_text =
        fs::read_to_string(root.join("crates/xtask/lint-baseline.toml")).expect("baseline");
    let baseline = Baseline::parse(&baseline_text).expect("parse baseline");
    let report = run_lint(&root, &baseline).expect("scan");
    let wall_clock: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D5 || f.rule == Rule::D1)
        .map(|f| format!("{}:{}: [{}]", f.file, f.line, f.rule))
        .collect();
    assert!(
        wall_clock.is_empty(),
        "wall-clock telemetry inside engine crates: {wall_clock:?}"
    );
}

/// The v2 acceptance fixture: every banned token spelled inside a
/// string literal, raw string, char literal, line comment, doc
/// comment, or (nested) block comment. The v1 substring scanner
/// flagged several of these; the token-aware scanner must flag none.
#[test]
fn tokens_inside_strings_and_comments_do_not_flag() {
    let root = scaffold("lint_fixture_strings");
    fs::write(
        root.join("crates/simulator/src/fixture.rs"),
        "//! Discusses Instant::now(), thread_rng(), and std::thread freely.\n\
         /// A HashMap would break replay; so would SystemTime::now().\n\
         // rayon, into_par_iter, scope_map( — all banned: see DETERMINISM.md\n\
         /* block comment: Instant /* nested: HashSet */ still comment */\n\
         pub const WHY: &str = \"never call Instant::now() or thread_rng()\";\n\
         pub const RAW: &str = r#\"std::thread::spawn(|| {}) in a raw string\"#;\n\
         pub const QUOTE: char = '\"';\n\
         pub struct Instantaneous; // identifier *containing* a banned name\n\
         pub fn from_entropy_docs() {} // same, for from_entropy\n",
    )
    .unwrap();
    let found = lint(&root, &Baseline::default());
    assert!(found.is_empty(), "false positives: {found:?}");
}

#[test]
fn injected_n1_cast_ratchets_and_hatch_silences() {
    let root = scaffold("lint_n1");
    fs::write(
        root.join("crates/simulator/src/cast.rs"),
        "pub fn f(x: u64) -> u32 { x as u32 }\n",
    )
    .unwrap();
    // No [n1] entry: implicit zero budget, the new cast is a regression.
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::N1);

    // A budget covering it passes.
    let mut b = Baseline::default();
    b.n1.insert("simulator".into(), 1);
    assert!(lint(&root, &b).is_empty());

    // So does the allow hatch, against the zero budget.
    fs::write(
        root.join("crates/simulator/src/cast.rs"),
        "// lint: allow(N1, x is a node index < 18,688)\n\
         pub fn f(x: u64) -> u32 { x as u32 }\n",
    )
    .unwrap();
    assert!(lint(&root, &Baseline::default()).is_empty());

    // The same cast in an analysis-scope crate never counts.
    let root2 = scaffold("lint_n1_stats");
    fs::write(
        root2.join("crates/stats/src/cast.rs"),
        "pub fn f(x: u64) -> u32 { x as u32 }\n",
    )
    .unwrap();
    assert!(lint(&root2, &Baseline::default()).is_empty());
}

#[test]
fn injected_l1_layering_violation_fails() {
    let root = scaffold("lint_l1");
    // stats sits below the engine: depending on the simulator inverts
    // the declared DAG.
    fs::write(
        root.join("crates/stats/Cargo.toml"),
        "[package]\nname = \"stats\"\n\n[dependencies]\n\
         simulator = { path = \"../simulator\" }\n",
    )
    .unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::L1);
    assert!(found[0].1.starts_with("crates/stats/Cargo.toml:"), "got {}", found[0].1);

    // A dev-dependency on the same crate is fine: tests may reach up.
    fs::write(
        root.join("crates/stats/Cargo.toml"),
        "[package]\nname = \"stats\"\n\n[dev-dependencies]\n\
         simulator = { path = \"../simulator\" }\n",
    )
    .unwrap();
    assert!(lint(&root, &Baseline::default()).is_empty());
}

#[test]
fn engine_manifest_listing_rayon_is_an_l1_violation() {
    let root = scaffold("lint_l1_rayon");
    fs::write(
        root.join("crates/simulator/Cargo.toml"),
        "[package]\nname = \"simulator\"\n\n[dependencies]\nrayon = \"1\"\n",
    )
    .unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::L1);
}

#[test]
fn s1_unspecced_schema_literal_and_field_drift_fail() {
    let root = scaffold("lint_s1");
    // A root façade minting a schema version: S1 guards src/main.rs.
    mkdirs(&root.join("src"));
    fs::write(
        root.join("src/main.rs"),
        "struct FooDoc { schema: String, count: u64 }\n\
         fn main() { let _ = (\"titan-foo/1\", FooDoc { schema: String::new(), count: 0 }); }\n",
    )
    .unwrap();

    // No golden spec for titan-foo/1: the minted literal is flagged.
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::S1);
    assert!(found[0].1.starts_with("src/main.rs:"), "got {}", found[0].1);

    // With a matching spec the tree is clean...
    mkdirs(&root.join("crates/xtask/schemas"));
    fs::write(
        root.join("crates/xtask/schemas/titan-foo-1.toml"),
        "schema = \"titan-foo/1\"\nfile = \"src/main.rs\"\nstruct = \"FooDoc\"\n\
         fields = [\"schema\", \"count\"]\n",
    )
    .unwrap();
    assert!(lint(&root, &Baseline::default()).is_empty());

    // ...until the struct drifts (field renamed without a version bump).
    fs::write(
        root.join("src/main.rs"),
        "struct FooDoc { schema: String, total: u64 }\n\
         fn main() { let _ = (\"titan-foo/1\", FooDoc { schema: String::new(), total: 0 }); }\n",
    )
    .unwrap();
    let found = lint(&root, &Baseline::default());
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::S1);
}

/// The real tree satisfies the layering contract and the golden
/// schemas: the committed LAYERS table matches every manifest, and the
/// frozen document schemas match their specs.
#[test]
fn real_tree_layering_and_schemas_are_clean() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let baseline_text =
        fs::read_to_string(root.join("crates/xtask/lint-baseline.toml")).expect("baseline");
    let baseline = Baseline::parse(&baseline_text).expect("parse baseline");
    let report = run_lint(&root, &baseline).expect("scan");
    let structural: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::L1 || f.rule == Rule::S1)
        .map(|f| format!("{f}"))
        .collect();
    assert!(structural.is_empty(), "layering/schema violations: {structural:?}");
    // The golden specs themselves must have loaded (an empty schemas
    // dir would pass vacuously).
    let (specs, spec_errs) = xtask::schema::load_specs(&root).expect("specs");
    assert!(spec_errs.is_empty(), "unreadable specs: {spec_errs:?}");
    let mut names: Vec<&str> = specs.iter().map(|s| s.schema.as_str()).collect();
    names.sort_unstable();
    assert_eq!(
        names,
        [
            "titan-bench-trajectory/1",
            "titan-check/1",
            "titan-ckpt/1",
            "titan-health/1",
            "titan-obs-replicate/1",
            "titan-obs/2",
            "titan-prof/2",
            "titan-trace/1",
        ],
        "golden specs missing from crates/xtask/schemas/"
    );
}

// --- golden fixtures, one per structural rule ------------------------------

#[test]
fn p2_fixture_attributes_hits_and_skips_non_hits() {
    let report = run_lint(&fixture("p2"), &Baseline::default()).expect("scan");
    assert_eq!(
        report.p2_counts.get("titan_stats::risky"),
        Some(&2),
        "unwrap + indexing: {:?}",
        report.p2_counts
    );
    assert!(
        report.p2_counts.keys().all(|k| !k.contains("hatched") && !k.contains("tests")),
        "hatched and test fns must stay off the budget: {:?}",
        report.p2_counts
    );
    let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![Rule::P2], "{:?}", report.findings);

    let mut b = Baseline::default();
    b.p2.insert("titan_stats::risky".into(), 2);
    let clean = run_lint(&fixture("p2"), &b).expect("scan");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
}

#[test]
fn e1_fixture_flags_all_three_legs() {
    let report = run_lint(&fixture("e1"), &Baseline::default()).expect("scan");
    let e1: Vec<&Finding> = report.findings.iter().filter(|f| f.rule == Rule::E1).collect();
    assert_eq!(e1.len(), 3, "{:?}", report.findings);
    assert!(e1.iter().all(|f| f.file == "crates/simulator/src/lib.rs"));
    assert!(e1.iter().any(|f| f.message.contains("`let _ = ...`")), "{e1:?}");
    assert!(e1.iter().any(|f| f.message.contains("bare `.ok();`")), "{e1:?}");
    assert!(
        e1.iter().any(|f| f.message.contains("#[must_use] sim API `inject`")),
        "{e1:?}"
    );
    // The non_hits fn contributes nothing, and no other rule fires.
    assert_eq!(report.findings.len(), 3, "{:?}", report.findings);
}

#[test]
fn d6_fixture_flags_comparator_and_drop_draws_only() {
    let report = run_lint(&fixture("d6"), &Baseline::default()).expect("scan");
    let msgs: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D6)
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(msgs.len(), 3, "{:?}", report.findings);
    assert!(msgs.iter().any(|m| m.contains("`sort_by_key` closure")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`retain` closure")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`Drop` impl")), "{msgs:?}");
    // The draw-before-sort and the hatched retain in non_hit stay
    // silent, and no other rule fires.
    assert_eq!(report.findings.len(), 3, "{:?}", report.findings);
}

#[test]
fn x1_fixture_finds_dead_pubs_across_the_reference_graph() {
    let report = run_lint(&fixture("x1"), &Baseline::default()).expect("scan");
    assert_eq!(report.x1_counts.get("titan-stats"), Some(&1), "{:?}", report.x1_sites);
    assert_eq!(report.x1_counts.get("titan-faults"), Some(&1), "{:?}", report.x1_sites);
    let paths: Vec<&str> = report.x1_sites.iter().map(|s| s.path.as_str()).collect();
    assert_eq!(
        paths,
        vec!["titan_faults::dead_report", "titan_stats::orphan_quantile"],
        "mean is kept alive by its dependent, hatched_api by its hatch"
    );
    let x1: Vec<&Finding> = report.findings.iter().filter(|f| f.rule == Rule::X1).collect();
    assert_eq!(x1.len(), 2, "{:?}", report.findings);
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);

    let mut b = Baseline::default();
    b.x1.insert("titan-stats".into(), 1);
    b.x1.insert("titan-faults".into(), 1);
    let budgeted = run_lint(&fixture("x1"), &b).expect("scan");
    assert!(budgeted.findings.is_empty(), "{:?}", budgeted.findings);
}

/// Acceptance criterion: `--format json` is byte-identical across
/// repeated runs of the real binary on the real tree.
#[test]
fn json_output_is_byte_stable_across_runs() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let run = || {
        std::process::Command::new(bin)
            .args(["lint", "--format", "json"])
            .output()
            .expect("spawn xtask")
    };
    let a = run();
    let b = run();
    assert!(a.status.success(), "lint failed: {}", String::from_utf8_lossy(&a.stdout));
    assert_eq!(a.stdout, b.stdout, "json output must be byte-identical");
    let doc = String::from_utf8(a.stdout).expect("utf8");
    assert!(doc.contains("\"schema\": \"titan-lint/4\""));
    assert!(doc.contains("\"p2_counts\""));
    assert!(doc.contains("\"n1_sites\""));
    assert!(doc.contains("\"x1_sites\""));
    assert!(doc.contains("\"t1_counts\""));
    assert!(doc.contains("\"t1_paths\""));
}

/// The SARIF artifact is stable and well-formed on the real tree too.
#[test]
fn sarif_output_is_byte_stable_across_runs() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let run = || {
        std::process::Command::new(bin)
            .args(["lint", "--format", "sarif"])
            .output()
            .expect("spawn xtask")
    };
    let a = run();
    let b = run();
    assert!(a.status.success(), "lint failed: {}", String::from_utf8_lossy(&a.stdout));
    assert_eq!(a.stdout, b.stdout, "sarif output must be byte-identical");
    let doc = String::from_utf8(a.stdout).expect("utf8");
    assert!(doc.contains("\"version\": \"2.1.0\""));
    assert!(doc.contains("\"name\": \"titan-lint\""));
}

#[test]
fn test_modules_are_exempt_from_d2_and_p2_but_not_d1() {
    let root = scaffold("lint_test_mod");
    fs::write(
        root.join("crates/simulator/src/thing.rs"),
        "pub fn ok2() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
             use std::collections::HashMap;\n\
             #[test]\n\
             fn t() {\n\
                 let m: HashMap<u32, u32> = HashMap::new();\n\
                 assert!(m.is_empty());\n\
                 let v = vec![1u32];\n\
                 assert_eq!(v[0], 1);\n\
                 let _ = std::time::SystemTime::now();\n\
             }\n\
         }\n",
    )
    .unwrap();
    let found = lint(&root, &Baseline::default());
    // Only the D1 (wall clock in a sim-crate test still flakes): no
    // D2, no P2 indexing count, no E1 for the test-local `let _ =`.
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, Rule::D1);
}

/// The T1 golden fixture: an env read in the analysis-scope crate is
/// laundered through two sim-crate helpers into a state write. The
/// per-site rules see nothing (no clock, hash container, or time type
/// anywhere in the sim crate), so every finding must be T1 — one
/// interprocedural chain, one intra-fn env hit — with the full witness
/// path in the message.
#[test]
fn t1_fixture_reports_the_laundering_chain_end_to_end() {
    let report = run_lint(&fixture("t1"), &Baseline::default()).expect("scan");
    assert!(
        report.findings.iter().all(|f| f.rule == Rule::T1),
        "per-site rules must stay silent on the laundering fixture: {:?}",
        report.findings
    );
    let t1: Vec<&Finding> = report.findings.iter().filter(|f| f.rule == Rule::T1).collect();
    assert_eq!(t1.len(), 2, "{:?}", report.findings);

    let chain = t1
        .iter()
        .find(|f| f.message.contains("->"))
        .expect("the two-helper chain is reported");
    assert!(
        chain.message.contains(
            "fix_stats::host_width_raw -> fix_sim::width_hint -> fix_sim::clamp_hint \
             -> fix_sim::Engine::apply_hint"
        ),
        "full witness chain expected, got: {}",
        chain.message
    );
    assert!(chain.message.contains("env::var(\"TITAN_NUM_THREADS\")"), "{}", chain.message);
    assert!(chain.message.contains("crates/stats/src/lib.rs"), "{}", chain.message);
    assert_eq!(chain.file, "crates/simulator/src/lib.rs");

    let intra = t1
        .iter()
        .find(|f| !f.message.contains("->"))
        .expect("the intra-fn env read is reported");
    assert!(intra.message.contains("TITAN_WIDTH"), "{}", intra.message);

    assert_eq!(report.t1_counts.get("fix-sim"), Some(&2), "{:?}", report.t1_counts);
    assert_eq!(report.t1_paths.len(), 2);

    // A committed [t1] budget accepts the measured debt.
    let mut b = Baseline::default();
    b.t1.insert("fix-sim".into(), 2);
    let budgeted = run_lint(&fixture("t1"), &b).expect("scan");
    assert!(budgeted.findings.is_empty(), "{:?}", budgeted.findings);
}

/// Acceptance criterion: every T1 result in the SARIF log carries a
/// codeFlow replaying the witness chain.
#[test]
fn t1_fixture_sarif_carries_code_flows_for_every_hit() {
    let report = run_lint(&fixture("t1"), &Baseline::default()).expect("scan");
    let hits = report.findings.iter().filter(|f| f.rule == Rule::T1).count();
    assert!(hits > 0, "fixture must produce T1 results");
    let sarif = xtask::render_sarif(&report);
    assert_eq!(
        sarif.matches("\"codeFlows\"").count(),
        hits,
        "one codeFlows block per T1 result"
    );
    assert!(sarif.contains("tainted value flows through fix_sim::width_hint"), "{sarif}");
    assert!(sarif.contains("a sim-state write in fix_sim::Engine::apply_hint"), "{sarif}");
}

/// `--explain RULE` prints the rule card from the shared metadata
/// table and exits successfully without scanning; unknown ids fail.
#[test]
fn explain_flag_prints_the_rule_card() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let out = std::process::Command::new(bin)
        .args(["lint", "--explain", "T1"])
        .output()
        .expect("spawn xtask");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.starts_with("T1 — "), "{text}");
    assert!(text.contains("sources:"), "{text}");
    assert!(text.contains("sinks:"), "{text}");
    assert!(text.contains("allow(T1"), "{text}");

    let bad = std::process::Command::new(bin)
        .args(["lint", "--explain", "Z9"])
        .output()
        .expect("spawn xtask");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown rule"));
}

/// The LINTS.md "SARIF rule descriptions" mirror must match the
/// metadata table verbatim — this is the drift guard the shared table
/// exists for.
#[test]
fn lints_md_mirror_matches_rule_meta() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let md = fs::read_to_string(root.join("LINTS.md")).expect("LINTS.md");
    for m in xtask::meta::RULE_META {
        let row = format!("| {} | {} |", m.id, m.short);
        assert!(md.contains(&row), "LINTS.md mirror row missing or stale: {row}");
    }
}

/// Acceptance criterion: the full-workspace lint stays under the 2 s
/// cold budget (CI times the built binary as well).
#[test]
fn full_workspace_lint_stays_under_two_seconds() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let t0 = std::time::Instant::now();
    let report = run_lint(&root, &Baseline::default()).expect("scan");
    let elapsed = t0.elapsed();
    assert!(report.files_scanned > 40, "swept {} files", report.files_scanned);
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "full-workspace lint took {elapsed:?}, budget is 2 s"
    );
}
