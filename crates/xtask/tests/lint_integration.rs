//! End-to-end tests for `cargo xtask lint` against a synthetic
//! workspace written to CARGO_TARGET_TMPDIR: injected violations must be
//! found, clean trees must pass, and the P1 baseline must ratchet.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::{check_baseline, run_lint, Baseline, Rule};

fn mkdirs(p: &Path) {
    fs::create_dir_all(p).expect("mkdir");
}

/// Lays out a minimal workspace: root Cargo.toml with [workspace], one
/// sim-scope crate (`simulator`) and one analysis-scope crate (`stats`).
fn scaffold(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clean slate");
    }
    for krate in ["simulator", "stats"] {
        mkdirs(&root.join("crates").join(krate).join("src"));
        fs::write(
            root.join("crates").join(krate).join("Cargo.toml"),
            format!("[package]\nname = \"{krate}\"\n"),
        )
        .unwrap();
        fs::write(
            root.join("crates").join(krate).join("src/lib.rs"),
            "pub fn ok() {}\n",
        )
        .unwrap();
    }
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .unwrap();
    root
}

fn lint(root: &Path, baseline: &Baseline) -> Vec<(Rule, String)> {
    run_lint(root, baseline)
        .expect("scan")
        .findings
        .into_iter()
        .map(|f| (f.rule, format!("{}:{}", f.file, f.line)))
        .collect()
}

fn zero_baseline() -> Baseline {
    let mut b = Baseline::default();
    b.budgets.insert("simulator".into(), 0);
    b.budgets.insert("stats".into(), 0);
    b
}

#[test]
fn clean_workspace_passes() {
    let root = scaffold("lint_clean");
    assert!(lint(&root, &zero_baseline()).is_empty());
}

#[test]
fn injected_d1_violation_fails_in_sim_crate_only() {
    let root = scaffold("lint_d1");
    let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    fs::write(root.join("crates/simulator/src/clock.rs"), src).unwrap();
    let found = lint(&root, &zero_baseline());
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D1);
    assert!(found[0].1.ends_with("clock.rs:1"), "got {}", found[0].1);

    // The same code in the analysis-scope crate is allowed: stats may
    // time itself, the simulation may not.
    let root2 = scaffold("lint_d1_stats");
    fs::write(root2.join("crates/stats/src/clock.rs"), src).unwrap();
    assert!(lint(&root2, &zero_baseline()).is_empty());
}

#[test]
fn injected_d2_violation_fails_unless_justified() {
    let root = scaffold("lint_d2");
    fs::write(
        root.join("crates/simulator/src/state.rs"),
        "use std::collections::HashMap;\npub struct S { m: HashMap<u32, u32> }\n",
    )
    .unwrap();
    let found = lint(&root, &zero_baseline());
    assert_eq!(found.iter().filter(|(r, _)| *r == Rule::D2).count(), 2);

    // The escape hatch silences it.
    fs::write(
        root.join("crates/simulator/src/state.rs"),
        "use std::collections::HashMap; // lint: sorted-iter\n\
         // lint: sorted-iter — get-only cache, never iterated\n\
         pub struct S { m: HashMap<u32, u32> }\n",
    )
    .unwrap();
    assert!(lint(&root, &zero_baseline()).is_empty());
}

#[test]
fn injected_d3_violation_fails_in_any_crate() {
    let root = scaffold("lint_d3");
    fs::write(
        root.join("crates/stats/src/sortit.rs"),
        "pub fn s(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
    )
    .unwrap();
    // Budget the unwrap so only the D3 fires — the comparator is the
    // defect here, not the panic count.
    let mut b = zero_baseline();
    b.budgets.insert("stats".into(), 1);
    let found = lint(&root, &b);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D3);
}

#[test]
fn p1_budget_ratchets() {
    let root = scaffold("lint_p1");
    fs::write(
        root.join("crates/stats/src/risky.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();

    // Against a zero budget: regression, fails.
    let found = lint(&root, &zero_baseline());
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::P1);

    // Against a matching budget: passes.
    let mut b = zero_baseline();
    b.budgets.insert("stats".into(), 1);
    assert!(lint(&root, &b).is_empty());

    // After removing the unwrap, the run passes and reports the ratchet
    // opportunity; --update-baseline (modeled here by re-rendering the
    // measured counts) locks in the lower budget.
    fs::write(
        root.join("crates/stats/src/risky.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    )
    .unwrap();
    let report = run_lint(&root, &b).expect("scan");
    assert!(report.findings.is_empty());
    assert_eq!(report.notes.len(), 1, "improvement should be noted");
    let updated = Baseline { budgets: report.counts.clone() };
    assert_eq!(updated.budgets["stats"], 0);

    // The updated baseline round-trips through its TOML form and now
    // rejects a reintroduction.
    let reparsed = Baseline::parse(&updated.render()).unwrap();
    let mut counts = report.counts.clone();
    counts.insert("stats".into(), 1);
    let (regressions, _) = check_baseline(&reparsed, &counts);
    assert_eq!(regressions.len(), 1);
}

#[test]
fn injected_d4_violation_fails_in_engine_crate_only() {
    let root = scaffold("lint_d4");
    let src = "pub fn go() { rayon::join(|| 1, || 2); }\n";
    fs::write(root.join("crates/simulator/src/par.rs"), src).unwrap();
    let found = lint(&root, &zero_baseline());
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D4);
    assert!(found[0].1.ends_with("par.rs:1"), "got {}", found[0].1);

    // The same code outside the engine scope (stats) is fine: the
    // analysis side may fan out.
    let root2 = scaffold("lint_d4_stats");
    fs::write(root2.join("crates/stats/src/par.rs"), src).unwrap();
    assert!(lint(&root2, &zero_baseline()).is_empty());
}

/// The satellite guarantee: the *real* engine crates (the simulator and
/// everything it builds on) contain no thread-pool or raw-thread call
/// outside test code — `Simulator::run` cannot reach a thread. The
/// whole-tree lint above CI enforces the same thing; this pins it from
/// the test suite so a green `cargo test` implies it too.
#[test]
fn real_engine_crates_have_no_threading() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let baseline_text =
        fs::read_to_string(root.join("crates/xtask/lint-baseline.toml")).expect("baseline");
    let baseline = Baseline::parse(&baseline_text).expect("parse baseline");
    let report = run_lint(&root, &baseline).expect("scan");
    let d4: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D4)
        .map(|f| format!("{}:{}", f.file, f.line))
        .collect();
    assert!(d4.is_empty(), "threading inside engine crates: {d4:?}");
}

#[test]
fn injected_d5_violation_fails_in_engine_crate_only() {
    let root = scaffold("lint_d5");
    // A stored Duration — no `::now()` call, so D1 cannot see it; the
    // wall-clock *type* leaking into engine state is D5's job.
    let src = "pub fn t(d: std::time::Duration) -> u64 { d.as_secs() }\n";
    fs::write(root.join("crates/simulator/src/meter.rs"), src).unwrap();
    let found = lint(&root, &zero_baseline());
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D5);
    assert!(found[0].1.ends_with("meter.rs:1"), "got {}", found[0].1);

    // The same code in the analysis-scope crate is allowed: profiling
    // wall time is exactly what the bench/CLI side does.
    let root2 = scaffold("lint_d5_stats");
    fs::write(root2.join("crates/stats/src/meter.rs"), src).unwrap();
    assert!(lint(&root2, &zero_baseline()).is_empty());
}

/// The satellite guarantee for PR 3: the *real* engine crates
/// (simulator, faults, gpu, workload, topology, conlog, nvsmi, obs)
/// record telemetry only through the sim-time titan-obs API — no
/// wall-clock types or readings anywhere in their non-test code, so
/// every metrics document is byte-identical across thread widths.
#[test]
fn real_engine_crates_record_only_sim_time_telemetry() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let baseline_text =
        fs::read_to_string(root.join("crates/xtask/lint-baseline.toml")).expect("baseline");
    let baseline = Baseline::parse(&baseline_text).expect("parse baseline");
    let report = run_lint(&root, &baseline).expect("scan");
    let wall_clock: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D5 || f.rule == Rule::D1)
        .map(|f| format!("{}:{}: [{}]", f.file, f.line, f.rule))
        .collect();
    assert!(
        wall_clock.is_empty(),
        "wall-clock telemetry inside engine crates: {wall_clock:?}"
    );
}

#[test]
fn missing_baseline_entry_is_reported() {
    let root = scaffold("lint_missing_entry");
    let b = Baseline::default(); // no budgets at all
    let found = lint(&root, &b);
    // One P1 per crate: budgets must exist even at zero, so that a new
    // crate cannot silently join with unwraps in it.
    assert_eq!(found.iter().filter(|(r, _)| *r == Rule::P1).count(), 2);
}

#[test]
fn test_modules_are_exempt_from_d2_and_p1_but_not_d1() {
    let root = scaffold("lint_test_mod");
    fs::write(
        root.join("crates/simulator/src/thing.rs"),
        "pub fn ok() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
             use std::collections::HashMap;\n\
             #[test]\n\
             fn t() {\n\
                 let m: HashMap<u32, u32> = HashMap::new();\n\
                 assert!(m.is_empty());\n\
                 let _ = std::time::SystemTime::now();\n\
             }\n\
         }\n",
    )
    .unwrap();
    let found = lint(&root, &zero_baseline());
    // Only the D1 (wall clock in a sim-crate test still flakes).
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, Rule::D1);
}
