//! Property tests for the titan-lint lexer: it must be *total* (never
//! panic on any input) and its token spans must partition the source
//! exactly — every byte belongs to exactly one token, in order, so
//! reassembling the spans reproduces the input byte-for-byte.

use proptest::prelude::*;
use xtask::lexer::{lex, TokKind};

/// Fragments chosen to stress the tricky lexer states: unterminated
/// strings, raw-string hash counting, nested comments, lifetime/char
/// ambiguity, and quote/backslash soup.
fn fragments() -> impl Strategy<Value = String> {
    prop::sample::select(
        [
            "fn main() {}",
            "let s = \"str with // comment\";",
            "r#\"raw \" quote\"#",
            "r###\"deep\"## not closed by two\"###",
            "br#\"bytes\"#",
            "/* outer /* inner */ still */",
            "/* never closed",
            "\"never closed",
            "'a'",
            "'\\n'",
            "'static",
            "b'x'",
            "// line comment",
            "//! inner doc",
            "/// outer doc",
            "////not a doc",
            "0..10",
            "1_000.5e-3",
            "x as u32",
            "r#type",
            "let r#match = r#fn;",
            "x.r#await",
            "r#",
            "#!/usr/bin/env run-cargo-script",
            "#![allow(dead_code)]",
            "'\\''",
            "\"\\\"escaped\\\\\"",
            "r\"no hashes\"",
            "\\",
            "\"",
            "'",
            "#",
            "🦀",
        ]
        .into_iter()
        .map(String::from)
        .collect::<Vec<_>>(),
    )
}

fn assemble(parts: Vec<String>, soup: String) -> String {
    let mut src = parts.join(" ");
    src.push_str(&soup);
    src
}

proptest! {
    /// Spans partition arbitrary printable soup exactly.
    #[test]
    fn printable_soup_round_trips(src in "\\PC{0,200}") {
        let toks = lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    /// Spans partition adversarial Rust-shaped input exactly, and every
    /// span is non-empty, in-order, and lands on UTF-8 boundaries (the
    /// `text` slicing below would panic otherwise).
    #[test]
    fn rust_shaped_input_round_trips(
        parts in prop::collection::vec(fragments(), 0..12),
        soup in "\\PC{0,60}",
    ) {
        let src = assemble(parts, soup);
        let toks = lex(&src);
        let mut pos = 0;
        for t in &toks {
            prop_assert_eq!(t.start, pos, "gap or overlap before byte {}", t.start);
            prop_assert!(t.end > t.start, "empty token at byte {}", t.start);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len(), "tokens must cover the whole input");
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    /// Line numbers are 1-based and non-decreasing, and a token's line
    /// equals 1 + the number of newlines before its start.
    #[test]
    fn line_numbers_are_consistent(
        parts in prop::collection::vec(fragments(), 0..8),
        soup in "\\PC{0,40}",
    ) {
        let mut src = assemble(parts, soup);
        src.push('\n');
        src.push_str("second line");
        let toks = lex(&src);
        let mut prev = 1;
        for t in &toks {
            let expected = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count();
            prop_assert_eq!(t.line, expected, "token at byte {}", t.start);
            prop_assert!(t.line >= prev);
            prev = t.line;
        }
    }

    /// Raw identifiers are single Ident tokens (`r#type` must not split
    /// into `r`, `#`, `type` — the v2 lexer did exactly that), and they
    /// survive arbitrary trailing soup.
    #[test]
    fn raw_identifiers_stay_single_tokens(soup in "\\PC{0,40}") {
        let src = format!("let r#type = ctx.r#match; {soup}");
        let toks = lex(&src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(&src))
            .collect();
        prop_assert!(idents.contains(&"r#type"), "{idents:?}");
        prop_assert!(idents.contains(&"r#match"), "{idents:?}");
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    /// A shebang line at byte 0 lexes as one comment token (cargo-script
    /// files start this way; the v2 lexer shredded it into punct soup),
    /// while `#![...]` at byte 0 must stay an inner attribute.
    #[test]
    fn shebang_at_byte_zero_is_one_comment(
        parts in prop::collection::vec(fragments(), 0..6),
    ) {
        let mut src = String::from("#!/usr/bin/env run-cargo-script\n");
        src.push_str(&parts.join(" "));
        let toks = lex(&src);
        prop_assert_eq!(toks[0].kind, TokKind::LineComment);
        prop_assert!(toks[0].text(&src).starts_with("#!/usr/bin/env"));
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);

        let attr = format!("#![allow(dead_code)]\n{}", parts.join(" "));
        let toks = lex(&attr);
        prop_assert_eq!(toks[0].kind, TokKind::Punct, "inner attr `#` stays punct");
        prop_assert_eq!(toks[0].text(&attr), "#");
    }

    /// Comment and literal kinds never leak trailing context: a line
    /// comment token never contains a newline, and whitespace tokens are
    /// all-whitespace.
    #[test]
    fn token_kinds_hold_their_invariants(
        parts in prop::collection::vec(fragments(), 0..12),
        soup in "\\PC{0,60}",
    ) {
        let src = assemble(parts, soup);
        for t in lex(&src) {
            let text = t.text(&src);
            match t.kind {
                TokKind::LineComment | TokKind::DocComment if text.starts_with("//") => {
                    prop_assert!(!text.contains('\n'), "line comment spans lines: {text:?}");
                }
                TokKind::Whitespace => {
                    prop_assert!(text.chars().all(char::is_whitespace), "{text:?}");
                }
                _ => {}
            }
        }
    }
}
