//! Sim-scope side of the T1 golden fixture. The laundering path is
//! `width_hint` -> `clamp_hint` -> `Engine::apply_hint`: two helpers
//! sit between the env read (in fix-stats) and the state write, so the
//! per-site rules D1/D2/D5 see nothing — no clock, hash container, or
//! time type appears anywhere in this crate — while T1 must report the
//! chain end to end.

/// First helper: imports the env-derived width from fix-stats.
fn width_hint() -> usize {
    fix_stats::host_width_raw() + 1
}

/// Second helper: launders the hint through one more call.
fn clamp_hint(cap: usize) -> usize {
    width_hint().min(cap)
}

pub struct Engine {
    pub width: usize,
}

impl Engine {
    /// T1 hit: the laundered env read lands in sim state.
    pub fn apply_hint(&mut self) {
        self.width = clamp_hint(64);
    }

    /// Non-hit: same write shape, but the value comes from a clean
    /// helper chain.
    pub fn apply_unit(&mut self) {
        self.width = fix_stats::unit_width();
    }

    /// Non-hit: the tainted value is consumed without touching state
    /// or output.
    pub fn probe_hint(&self) -> bool {
        clamp_hint(64) > self.width
    }

    /// Hatched: the importing call site is reviewed, so the chain is
    /// cut here and only `apply_hint` above is reported.
    pub fn apply_hint_reviewed(&mut self) {
        // lint: allow(T1, the hint is clamped to the fixture cap, so host width never changes results)
        self.width = clamp_hint(64);
    }

    /// Intra-fn hit: the env read and the state write share one body
    /// (no call chain needed, and no site rule covers env reads).
    pub fn width_from_env(&mut self) {
        self.width = std::env::var("TITAN_WIDTH").map(|v| v.len()).unwrap_or(1);
    }
}
