//! Analysis-scope side of the T1 golden fixture: the nondeterminism
//! source lives one crate away from the sink, so only an
//! interprocedural rule can connect them.

/// T1 source: reads the host's requested width from the environment.
pub fn host_width_raw() -> usize {
    std::env::var("TITAN_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Clean helper: no sources, no sinks.
pub fn unit_width() -> usize {
    1
}
