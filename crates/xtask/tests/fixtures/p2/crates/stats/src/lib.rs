//! P2 golden fixture: panic-surface sites attributed per function.

/// Hit: one `.unwrap()` and one indexing site in a live fn — two P2
/// sites on the `titan_stats::risky` budget line.
pub fn risky(xs: &[u32], i: Option<usize>) -> u32 {
    xs[i.unwrap()]
}

/// Non-hit: the invariant-backed site is hatched.
pub fn hatched(xs: &[u32]) -> u32 {
    // lint: allow(P2, caller guarantees xs is non-empty)
    xs[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_panics_are_free() {
        assert_eq!(super::risky(&[7], Some(0)), 7);
        assert_eq!(super::hatched(&[5]), 5);
        let v = vec![3u32];
        assert_eq!(v[0], 3);
    }
}
