//! Keeps the fixture's entry points referenced — the X1 dead-pub pool
//! counts test trees as references.

#[test]
fn fixture_smoke() {
    let mut rng = titan_sim::Rng::new(7);
    let mut nodes = vec![3u64, 1, 2];
    titan_sim::hit(&mut nodes, &mut rng);
    titan_sim::non_hit(&mut nodes, &mut rng);
    let _rec = titan_sim::Recorder { rng };
}
