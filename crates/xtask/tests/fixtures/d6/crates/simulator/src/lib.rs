//! D6 golden fixture: seeded-stream draws in evaluation-order-unstable
//! positions.

/// Minimal seeded stream standing in for the vendored rand API.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
    pub fn gen_range(&mut self, n: u64) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.state % n.max(1)
    }
    pub fn gen_bool(&mut self) -> bool {
        self.gen_range(2) == 0
    }
}

/// Hits: a draw inside a comparator closure and inside a retain sweep.
pub fn hit(nodes: &mut Vec<u64>, rng: &mut Rng) {
    nodes.sort_by_key(|n| n ^ rng.gen_range(8));
    nodes.retain(|_| rng.gen_bool());
}

pub struct Recorder {
    pub rng: Rng,
}

/// Hit: a draw inside a `Drop` impl (drop order is not replayed).
impl Drop for Recorder {
    fn drop(&mut self) {
        let jitter = self.rng.gen_range(4);
        self.rng.state = jitter;
    }
}

/// Non-hits: draw before the comparator, stable closure, hatched site.
pub fn non_hit(nodes: &mut Vec<u64>, rng: &mut Rng) {
    let jitter = rng.gen_range(4);
    nodes.sort_by_key(|n| n ^ jitter);
    // lint: allow(D6, fixture: documents the hatch shape)
    nodes.retain(|_| rng.gen_bool());
}
