//! X1 golden fixture, lower crate: one live API, one dead API, one
//! hatched API.

/// Live: referenced by `titan-faults`, a dependent crate.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Dead: nothing in the workspace spells this name.
pub fn orphan_quantile(_xs: &[f64]) -> f64 {
    0.0
}

// lint: allow(X1, kept as the paper-table replication surface)
pub fn hatched_api() -> u64 {
    42
}
