//! X1 golden fixture, upper crate: references `titan_stats::mean`
//! (keeping it alive); its own entry point stays alive through the
//! test pool, and `dead_report` is referenced by nothing.

pub fn mtbf(samples: &[f64]) -> f64 {
    titan_stats::mean(samples)
}

/// Dead: no caller anywhere.
pub fn dead_report() -> u64 {
    7
}
