//! Keeps `mtbf` referenced — the X1 dead-pub pool counts test trees as
//! references.

#[test]
fn fixture_smoke() {
    assert_eq!(titan_faults::mtbf(&[1.0, 3.0]), 2.0);
}
