//! E1 golden fixture: swallowed fallible results in simulation code.

/// The fixture's fallible sim API; `#[must_use]` marks an outcome the
/// caller must observe.
#[must_use]
pub fn inject(n: u32) -> Result<u32, String> {
    if n == 0 {
        return Err("cannot inject into node 0".to_string());
    }
    Ok(n)
}

/// Hits: all three E1 legs, one per line.
pub fn hits(n: u32) {
    let _ = inject(n);
    inject(n).ok();
    inject(n);
}

/// Non-hits: bound, propagated, fmt-exempt, and hatched discards.
pub fn non_hits(n: u32) -> Result<u32, String> {
    use std::fmt::Write as _;
    let mut log = String::new();
    let _ = write!(log, "inject {n}");
    let got = inject(n)?;
    // lint: allow(E1, best-effort warm-up draw, outcome irrelevant)
    let _ = inject(got);
    Ok(got)
}
