//! Keeps the fixture's entry points referenced — the X1 dead-pub pool
//! counts test trees as references.

#[test]
fn fixture_smoke() {
    titan_sim::hits(1);
    assert!(titan_sim::non_hits(2).is_ok());
}
