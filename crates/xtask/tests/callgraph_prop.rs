//! Property tests for the v4 workspace call graph (T1's substrate):
//!
//! 1. Resolved call edges never leave the symbol graph's reference
//!    relation — every edge the resolver draws is backed by an ident
//!    occurrence of the callee's name in the caller's file, which is
//!    exactly what the PR 6 reference counter sees. The call graph may
//!    over-approximate *within* that relation, never outside it.
//! 2. The taint analysis is a pure function of the harvested fn *set*:
//!    file discovery order must not leak into paths or counts (the
//!    analysis pre-sorts its input, and this pins that contract).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::OnceLock;

use proptest::prelude::*;
use xtask::callgraph::FnDecl;
use xtask::layering::CrateManifest;
use xtask::lexer::{lex, TokKind};
use xtask::symbols::{reachable, Callable, CallableIndex};
use xtask::taint::{analyze, t1_message};

struct Harvest {
    fns: Vec<FnDecl>,
    manifests: Vec<CrateManifest>,
    /// Per file: every ident token in it — the reference relation the
    /// symbol graph counts.
    idents: BTreeMap<String, BTreeSet<String>>,
}

fn harvest() -> &'static Harvest {
    static H: OnceLock<Harvest> = OnceLock::new();
    H.get_or_init(|| {
        let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let manifests = xtask::layering::read_manifests(&root).expect("manifests");
        let mut fns = Vec::new();
        let mut idents: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for target in xtask::workspace_targets(&root).expect("targets") {
            for file in xtask::rust_files(&target.src_dir).expect("files") {
                let text = std::fs::read_to_string(&file).expect("read");
                let rel = file
                    .strip_prefix(&root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                let prefix = xtask::module_prefix(&target.name, &rel);
                fns.extend(xtask::callgraph::harvest_file(
                    &rel,
                    &text,
                    &prefix,
                    &target.name,
                    target.sim_scope,
                ));
                let set = idents.entry(rel).or_default();
                for t in lex(&text) {
                    if t.kind == TokKind::Ident {
                        set.insert(t.text(&text).to_string());
                    }
                }
            }
        }
        Harvest { fns, manifests, idents }
    })
}

/// Every resolved edge's callee name occurs as an ident in the caller's
/// file: call-graph edges ⊆ symbol-graph references.
#[test]
fn resolved_edges_are_a_subset_of_symbol_references() {
    let h = harvest();
    let callables: Vec<Callable> = h
        .fns
        .iter()
        .map(|f| Callable {
            path: f.path.clone(),
            name: f.name.clone(),
            owner: f.owner.clone(),
            pkg: f.pkg.clone(),
        })
        .collect();
    let index = CallableIndex::new(callables);
    let reach = reachable(&h.manifests);
    let mut edges = 0usize;
    for f in &h.fns {
        let refs = h.idents.get(&f.file).expect("caller file was lexed");
        for c in &f.calls {
            for cand in index.resolve(&f.pkg, f.owner.as_deref(), &c.name, &c.quals, c.method, &reach)
            {
                let callee = index.get(cand);
                assert!(
                    refs.contains(&callee.name),
                    "edge {} -> {} has no ident reference in {}",
                    f.path,
                    callee.path,
                    f.file
                );
                edges += 1;
            }
        }
    }
    assert!(edges > 50, "expected a dense real-tree call graph, got {edges} edges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shuffling the harvested fn list never changes the analysis: the
    /// same witness paths (message-identical) and the same per-crate
    /// counts come out in the same order.
    #[test]
    fn analysis_is_independent_of_harvest_order(seed in any::<u64>()) {
        let h = harvest();
        let mut order: Vec<usize> = (0..h.fns.len()).collect();
        // Fisher–Yates keyed by the generated seed (splitmix64 mix).
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let shuffled: Vec<FnDecl> = order.iter().map(|&i| h.fns[i].clone()).collect();

        let (paths_a, counts_a) = analyze(&h.fns, &h.manifests);
        let (paths_b, counts_b) = analyze(&shuffled, &h.manifests);
        prop_assert_eq!(&counts_a, &counts_b);
        let msgs_a: Vec<String> = paths_a.iter().map(t1_message).collect();
        let msgs_b: Vec<String> = paths_b.iter().map(t1_message).collect();
        prop_assert_eq!(msgs_a, msgs_b);
        let sites_a: Vec<(&str, usize)> =
            paths_a.iter().map(|p| (p.file.as_str(), p.line)).collect();
        let sites_b: Vec<(&str, usize)> =
            paths_b.iter().map(|p| (p.file.as_str(), p.line)).collect();
        prop_assert_eq!(sites_a, sites_b);
    }
}
