//! Multi-seed replication: the statistical-confidence engine.
//!
//! The paper's conclusions rest on 21 months × 18,688 GPUs of field
//! data; our substitute is a calibrated simulator, so confidence has to
//! come from *replications* — many seeds per configuration — the way
//! later field studies report rates with confidence intervals across
//! populations. [`replicate`] fans N seeds out over a thread pool (one
//! whole simulation per task — parallelism never reaches inside a run,
//! see DETERMINISM.md), merges the per-seed summaries **in seed order**,
//! and reports mean / 95% CI bands plus per-expectation verdict
//! distributions, so EXPERIMENTS.md can check intervals instead of
//! points.
//!
//! Determinism contract: for a fixed seed list the report is
//! byte-identical at any thread width, and each per-seed digest equals
//! the digest of a plain sequential [`Study`] run of that seed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use titan_conlog::SecEngine;

pub mod ckpt;

pub use ckpt::{
    bisect, checkpoint_digest, parse_checkpoint, render_checkpoint, resume_checkpointed,
    run_checkpointed, BisectInterval, BisectReport, CheckpointDoc, CKPT_SCHEMA,
};
// Re-exported so CLI code can name the telemetry types through the
// runner without a direct titan-obs dependency.
pub use titan_obs::{KindCost, MetricsDoc, Obs};
use titan_obs::TraceKind;
use titan_reliability::{evaluate_all, Expectation, Study, StudyConfig, Verdict};
use titan_sim::SimOutput;
use titan_stats::Summary;

/// z-value for a two-sided 95% interval under the normal approximation.
/// With the handful-of-seeds replication counts used here the Student-t
/// correction would widen bands slightly; the registry's pass bands are
/// an order of magnitude wider than that correction.
const Z95: f64 = 1.96;

/// Recommended fan-out width: the pool's configured width — the
/// `TITAN_NUM_THREADS` override when set, else available parallelism.
pub fn recommended_threads() -> usize {
    rayon::current_num_threads()
}

/// What to replicate and how wide to fan out.
#[derive(Debug, Clone)]
pub struct ReplicateOptions {
    /// Base study configuration; its `sim.seed` is overridden per seed.
    pub base: StudyConfig,
    /// Master seeds, one simulation each. Order defines report order.
    pub seeds: Vec<u64>,
    /// Worker threads (1 = fully sequential, still the same results).
    pub threads: usize,
    /// When true, skip the per-seed expectation registry (figures are
    /// by far the dominant cost when the window is short).
    pub skip_expectations: bool,
    /// When true, run every seed with an enabled [`Obs`] sink and carry
    /// the per-seed metrics document into the report; its flattened
    /// scalars join the metric bands under an `obs.` prefix.
    pub collect_obs: bool,
    /// When true, run every seed with an enabled flight recorder and
    /// return the rendered `titan-trace/1` JSONL per seed (see
    /// [`replicate_full`]). Like `collect_obs`, a pure observer.
    pub collect_trace: bool,
    /// When true, run every seed with an enabled health sink and return
    /// the rendered `titan-health/1` JSONL per seed. A pure observer
    /// like the other two collectors.
    pub collect_health: bool,
}

impl ReplicateOptions {
    /// `count` consecutive seeds derived from `base_seed`, ready to fan
    /// out over `threads`. Rejects a range that would wrap past
    /// `u64::MAX`: wrapping silently re-issues seeds already in the
    /// list, and duplicate seeds make the "independent replications"
    /// premise of every CI band a lie.
    pub fn consecutive(
        base: StudyConfig,
        base_seed: u64,
        count: u64,
        threads: usize,
    ) -> Result<Self, String> {
        let mut seeds = Vec::new();
        for i in 0..count {
            let Some(seed) = base_seed.checked_add(i) else {
                return Err(format!(
                    "seed range overflows: base seed {base_seed} + {count} consecutive seeds \
                     wraps past u64::MAX and would duplicate seeds; lower --seed or --seeds"
                ));
            };
            seeds.push(seed);
        }
        Ok(ReplicateOptions {
            base,
            seeds,
            threads,
            skip_expectations: false,
            collect_obs: false,
            collect_trace: false,
            collect_health: false,
        })
    }
}

/// One seed's compressed outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedRun {
    /// The master seed.
    pub seed: u64,
    /// FNV-1a digest of the full serialized `SimOutput` plus all three
    /// rendered logs — the byte-identity fingerprint replication tests
    /// compare against sequential runs.
    pub output_digest: u64,
    /// Scalar fleet metrics (see [`seed_metrics`] for the catalogue).
    pub metrics: BTreeMap<String, f64>,
    /// The full expectation registry for this seed (empty when
    /// `skip_expectations` was set).
    pub expectations: Vec<Expectation>,
    /// The seed's full metrics document (present only when the run
    /// collected observability metrics).
    pub obs: Option<MetricsDoc>,
}

/// Mean / spread / 95% CI of one metric across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricBand {
    /// Replication count.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (NaN when n < 2).
    pub std_dev: f64,
    /// 95% CI lower bound (normal approximation; equals `mean` at n = 1).
    pub ci_lo: f64,
    /// 95% CI upper bound.
    pub ci_hi: f64,
    /// Per-seed values, in seed order.
    pub per_seed: Vec<f64>,
}

impl MetricBand {
    fn of(per_seed: Vec<f64>) -> Self {
        let s = Summary::of(&per_seed);
        let n = s.count();
        let half = if n >= 2 {
            Z95 * s.std_dev() / (n as f64).sqrt()
        } else {
            0.0
        };
        MetricBand {
            n,
            mean: s.mean(),
            std_dev: s.std_dev(),
            ci_lo: s.mean() - half,
            ci_hi: s.mean() + half,
            per_seed,
        }
    }

    /// Whether `value` lies inside the 95% band.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.ci_lo && value <= self.ci_hi
    }
}

/// One expectation's verdict distribution across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictBand {
    /// Experiment id (e.g. "F2").
    pub id: String,
    /// The paper's claim.
    pub paper: String,
    /// Seeds that passed.
    pub pass: u32,
    /// Seeds that were weak.
    pub weak: u32,
    /// Seeds that failed.
    pub fail: u32,
    /// Interval verdict: Pass when a majority of seeds pass and none
    /// fail; Weak when no seed fails; Fail otherwise. Stricter than any
    /// single-seed check — one failing replication fails the band.
    pub overall: Verdict,
    /// A representative measured string (first seed's).
    pub sample_measured: String,
}

/// The merged multi-seed report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationReport {
    /// Worker threads used (informational; never affects content).
    pub threads: usize,
    /// Study window in days.
    pub window_days: u64,
    /// Per-seed outcomes, in seed order.
    pub runs: Vec<SeedRun>,
    /// Mean/CI bands per metric, keyed by metric name.
    pub metrics: BTreeMap<String, MetricBand>,
    /// Per-expectation verdict distributions, registry order.
    pub expectations: Vec<VerdictBand>,
}

/// Runs one seed sequentially and summarizes it. This is the exact code
/// a replication worker runs; the determinism test compares its digest
/// against threaded output.
pub fn run_seed(base: &StudyConfig, seed: u64, skip_expectations: bool) -> SeedRun {
    run_seed_obs(base, seed, skip_expectations, false)
}

/// [`run_seed`] with optional observability collection. When
/// `collect_obs` is set the study runs with an enabled [`Obs`] sink,
/// the SEC and nvsmi sections are filled by [`collect_metrics`], and
/// the flattened document joins `metrics` under an `obs.` prefix.
pub fn run_seed_obs(
    base: &StudyConfig,
    seed: u64,
    skip_expectations: bool,
    collect_obs: bool,
) -> SeedRun {
    run_seed_full(base, seed, skip_expectations, collect_obs, false, false).0
}

/// [`run_seed_obs`] plus optional flight-recorder capture: when
/// `collect_trace` is set the seed runs with an enabled trace stream,
/// the collect-time SEC replay and nvsmi rollups are stitched into the
/// causal chains, and the rendered `titan-trace/1` JSONL comes back
/// alongside the summary. Tracing is a pure observer — the [`SeedRun`]
/// (digest included) is identical with it on or off.
pub fn run_seed_full(
    base: &StudyConfig,
    seed: u64,
    skip_expectations: bool,
    collect_obs: bool,
    collect_trace: bool,
    collect_health: bool,
) -> (SeedRun, Option<String>, Option<String>) {
    let mut config = base.clone();
    config.sim.seed = seed;
    let window = config.sim.window;
    let mut obs = Obs::new(collect_obs);
    if collect_trace {
        obs.enable_trace();
    }
    if collect_health {
        obs.enable_health();
    }
    let study = Study::new(config).run_with_obs(&mut obs);
    let expectations = if skip_expectations {
        Vec::new()
    } else {
        evaluate_all(&study.figures())
    };
    let mut metrics = seed_metrics(&study.sim);
    // Collection runs for tracing too: the SEC replay and nvsmi rollups
    // it performs are what mint the collect-time trace records.
    let obs_doc = if collect_obs || collect_trace {
        let doc = collect_metrics(&study.sim, seed, window, &mut obs);
        if collect_obs {
            for (k, v) in doc.flatten() {
                metrics.insert(format!("obs.{k}"), v);
            }
            Some(doc)
        } else {
            None
        }
    } else {
        None
    };
    let trace = if collect_trace {
        Some(obs.stream.render_jsonl(seed, window / 86_400))
    } else {
        None
    };
    // The engine closed the health stream in `finalize`; rendering here
    // is a pure read of the flushed records.
    let health = if collect_health {
        Some(obs.health.render_jsonl(seed, window / 86_400))
    } else {
        None
    };
    (
        SeedRun {
            seed,
            output_digest: output_digest(&study.sim),
            metrics,
            expectations,
            obs: obs_doc,
        },
        trace,
        health,
    )
}

/// [`run_seed`] with the `titan-prof/2` cost ledger armed and nothing
/// else: the metrics sink stays off, so the measured wall is comparable
/// to [`run_seed`]'s — this is the bench_pr prof-overhead arm. Returns
/// the summary plus the deterministic per-scope ledger. No allocator
/// probe or wall hook is installed: overhead measurement wants the pure
/// in-loop ledger cost, and the count columns are identical either way.
pub fn run_seed_prof(
    base: &StudyConfig,
    seed: u64,
    skip_expectations: bool,
) -> (SeedRun, BTreeMap<String, titan_obs::KindCost>) {
    let mut config = base.clone();
    config.sim.seed = seed;
    let mut obs = Obs::new(false);
    obs.enable_prof();
    let study = Study::new(config).run_with_obs(&mut obs);
    let expectations = if skip_expectations {
        Vec::new()
    } else {
        evaluate_all(&study.figures())
    };
    let metrics = seed_metrics(&study.sim);
    obs.prof_finish();
    (
        SeedRun {
            seed,
            output_digest: output_digest(&study.sim),
            metrics,
            expectations,
            obs: None,
        },
        obs.prof_ledger().ledger_map(),
    )
}

/// Fills the SEC and nvsmi sections of the registry from a finished
/// run and snapshots everything into the stable [`MetricsDoc`].
///
/// The SEC pipeline is replayed here, at collect time, over the run's
/// console log with the default OLCF rule set — the engine never feeds
/// the SEC during simulation (the paper's correlators run on the SMW,
/// outside the machine), so its rule-hit/suppression counters live in
/// the collector, not the hot loop.
///
/// When the flight recorder is on, the replay runs line by line so each
/// SEC action can be parented to the exact console-line trace record
/// that triggered it, and an `nvsmi_rollup` record is minted per card
/// with retired pages, parented to that card's last retirement.
pub fn collect_metrics(
    sim: &SimOutput,
    seed: u64,
    window: titan_conlog::time::SimTime,
    obs: &mut Obs,
) -> MetricsDoc {
    let mut sec = SecEngine::olcf_default();
    // The engine's stable time-sort makes console-line record i describe
    // console line i (see `TraceStream::console_ids_in_log_order`); the
    // length check keeps a stream from a different run from misparenting.
    let console_ids = obs.stream.console_ids_in_log_order();
    let tracing = obs.stream.is_enabled() && console_ids.len() == sim.console.len();
    for (i, ev) in sim.console.iter().enumerate() {
        let actions = sec.ingest(ev);
        if tracing {
            for a in &actions {
                obs.stream.mint(
                    TraceKind::SecAlert,
                    console_ids[i],
                    a.time(),
                    None,
                    a.node().map(|n| u64::from(n.0)),
                    ev.apid,
                    || format!("sec {}", a.label()),
                );
            }
        }
    }
    let stats = sec.stats();
    for (name, value) in [
        ("events_ingested", stats.events_ingested),
        ("alerts", stats.alerts),
        ("suppressed", stats.suppressed),
        ("threshold_alarms", stats.threshold_alarms),
        ("cluster_alarms", stats.cluster_alarms),
    ] {
        let c = obs.reg.counter("sec", name);
        obs.reg.add(c, value);
    }
    for (desc, hits) in &stats.rule_hits {
        let c = obs.reg.counter("sec", &format!("rule_hits.{desc}"));
        obs.reg.add(c, *hits);
    }

    let fleet = titan_nvsmi::summarize(&sim.final_snapshots);
    for (name, value) in [
        ("fleet_total_sbe", fleet.total_sbe),
        ("fleet_total_dbe", fleet.total_dbe),
        ("retired_pages_dbe", fleet.retired_pages_dbe),
        ("retired_pages_sbe", fleet.retired_pages_sbe),
        ("dbe_exceeds_sbe_cards", fleet.dbe_exceeds_sbe_cards),
        ("cards_with_sbe", fleet.cards_with_sbe),
        ("cards_with_dbe", fleet.cards_with_dbe),
    ] {
        let c = obs.reg.counter("nvsmi", name);
        obs.reg.add(c, value);
    }

    if tracing {
        // Last retirement record per card: the rollup's causal parent.
        let mut last_retirement: BTreeMap<u64, u64> = BTreeMap::new();
        for r in obs.stream.records() {
            if r.kind == TraceKind::Retirement.name() {
                if let Some(c) = r.card {
                    last_retirement.insert(c, r.id);
                }
            }
        }
        let rollups: Vec<(u64, u64, u64, u32, u32)> = sim
            .final_snapshots
            .iter()
            .filter(|s| s.retired_pages != (0, 0))
            .map(|s| {
                let card = u64::from(s.serial.0);
                (
                    last_retirement.get(&card).copied().unwrap_or(0),
                    card,
                    u64::from(s.node.0),
                    s.retired_pages.0,
                    s.retired_pages.1,
                )
            })
            .collect();
        for (parent, card, node, pd, ps) in rollups {
            // A rollup with no retirement ancestor mints parent 0, which
            // `verify_trace` rejects — retired pages with no recorded
            // cause are exactly the provenance hole verify exists for.
            obs.stream.mint(
                TraceKind::NvsmiRollup,
                parent,
                window,
                Some(card),
                Some(node),
                None,
                || format!("retired_pages dbe={pd} sbe={ps}"),
            );
        }
    }

    MetricsDoc::from_obs(obs, seed, window / 86_400)
}

/// Fans the seeds out over `threads` workers and merges in seed order.
///
/// Each worker runs one *whole* simulation; results are gathered by
/// input index and folded in seed order, so the report is byte-identical
/// at any thread width (the same guarantee the vendored pool makes for
/// every `map`/`reduce`, see `rayon::scope_map`).
pub fn replicate(opts: &ReplicateOptions) -> Result<ReplicationReport, String> {
    replicate_full(opts).map(|(report, _, _)| report)
}

/// [`replicate`] that also returns each seed's rendered `titan-trace/1`
/// and `titan-health/1` JSONL (all `None` unless `collect_trace` /
/// `collect_health` was set). Both ride the same seed-order merge, so
/// for a fixed seed list every document is byte-identical at any thread
/// width.
#[allow(clippy::type_complexity)]
pub fn replicate_full(
    opts: &ReplicateOptions,
) -> Result<(ReplicationReport, Vec<Option<String>>, Vec<Option<String>>), String> {
    if opts.seeds.is_empty() {
        return Err("replicate: need at least one seed".into());
    }
    if opts.threads == 0 {
        return Err("replicate: need at least one thread".into());
    }
    {
        let mut sorted = opts.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != opts.seeds.len() {
            return Err("replicate: duplicate seeds (replications must be independent)".into());
        }
    }
    opts.base.sim.validate()?;

    let base = &opts.base;
    let skip = opts.skip_expectations;
    let collect = opts.collect_obs;
    let collect_trace = opts.collect_trace;
    let collect_health = opts.collect_health;
    let triples: Vec<(SeedRun, Option<String>, Option<String>)> =
        rayon::scope_map(opts.seeds.clone(), opts.threads, |seed| {
            run_seed_full(base, seed, skip, collect, collect_trace, collect_health)
        });
    let mut runs = Vec::with_capacity(triples.len());
    let mut traces = Vec::with_capacity(triples.len());
    let mut healths = Vec::with_capacity(triples.len());
    for (run, trace, health) in triples {
        runs.push(run);
        traces.push(trace);
        healths.push(health);
    }

    Ok((merge(runs, opts.threads, base.sim.window / 86_400), traces, healths))
}

/// Merges per-seed runs (already in seed order) into the report.
fn merge(runs: Vec<SeedRun>, threads: usize, window_days: u64) -> ReplicationReport {
    // Metric bands: every metric name present in any run; a run missing
    // a name contributes 0 (metrics are counts).
    let mut names: Vec<String> = Vec::new();
    for r in &runs {
        for k in r.metrics.keys() {
            if !names.contains(k) {
                names.push(k.clone());
            }
        }
    }
    names.sort_unstable();
    let mut metrics = BTreeMap::new();
    for name in names {
        let per_seed: Vec<f64> = runs
            .iter()
            .map(|r| r.metrics.get(&name).copied().unwrap_or(0.0))
            .collect();
        metrics.insert(name, MetricBand::of(per_seed));
    }

    // Verdict bands, in the first run's registry order. The registry is
    // deterministic, so every seed reports the same ids in the same
    // order; assert-by-lookup keeps a drifting registry from silently
    // misaligning counts.
    let mut expectations = Vec::new();
    if let Some(first) = runs.first() {
        for e in &first.expectations {
            let (mut pass, mut weak, mut fail) = (0u32, 0u32, 0u32);
            for r in &runs {
                let v = r
                    .expectations
                    .iter()
                    .find(|x| x.id == e.id)
                    .map(|x| x.verdict);
                match v {
                    Some(Verdict::Pass) => pass += 1,
                    Some(Verdict::Weak) => weak += 1,
                    _ => fail += 1,
                }
            }
            let overall = if fail > 0 {
                Verdict::Fail
            } else if weak > pass {
                Verdict::Weak
            } else {
                Verdict::Pass
            };
            expectations.push(VerdictBand {
                id: e.id.clone(),
                paper: e.paper.clone(),
                pass,
                weak,
                fail,
                overall,
                sample_measured: e.measured.clone(),
            });
        }
    }

    ReplicationReport {
        threads,
        window_days,
        runs,
        metrics,
        expectations,
    }
}

/// Scalar fleet metrics extracted from one run's output.
pub fn seed_metrics(sim: &SimOutput) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    m.insert("console_events".into(), sim.console.len() as f64);
    m.insert("jobs_completed".into(), sim.jobs.len() as f64);
    m.insert("dbe_count".into(), sim.truth.dbe.len() as f64);
    m.insert("otb_count".into(), sim.truth.otb.len() as f64);
    m.insert("retirements".into(), sim.truth.retirements.len() as f64);
    m.insert(
        "retirements_emitted".into(),
        sim.truth.retirements.iter().filter(|r| r.emitted).count() as f64,
    );
    m.insert("swaps".into(), sim.truth.swaps.len() as f64);
    m.insert(
        "sbe_total".into(),
        sim.truth.sbe_by_card.iter().sum::<u64>() as f64,
    );
    m
}

/// FNV-1a digest of the full serialized output plus all rendered logs —
/// any byte of divergence between two runs changes it.
pub fn output_digest(sim: &SimOutput) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    let json = serde_json::to_string(sim).unwrap_or_default();
    eat(json.as_bytes());
    eat(sim.render_console_log().as_bytes());
    eat(sim.render_job_log().as_bytes());
    eat(sim.render_aprun_log().as_bytes());
    h
}

/// The `--metrics FILE` artifact of a replicate run: every seed's full
/// metrics document plus the cross-seed bands of the flattened scalars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReplicateDoc {
    /// Schema identifier.
    pub schema: String,
    /// Study window in days.
    pub window_days: u64,
    /// Per-seed metrics documents, in seed order.
    pub per_seed: Vec<MetricsDoc>,
    /// Mean/CI bands of the flattened observability scalars, keyed by
    /// the un-prefixed metric name (`engine.events_dequeued`, ...).
    pub bands: BTreeMap<String, MetricBand>,
}

/// Builds the replicate metrics artifact; `None` when the report was
/// produced without `collect_obs`.
pub fn obs_replicate_doc(report: &ReplicationReport) -> Option<ObsReplicateDoc> {
    let per_seed: Vec<MetricsDoc> =
        report.runs.iter().filter_map(|r| r.obs.clone()).collect();
    if per_seed.len() != report.runs.len() {
        return None;
    }
    let bands = report
        .metrics
        .iter()
        .filter_map(|(k, b)| {
            k.strip_prefix("obs.").map(|name| (name.to_string(), b.clone()))
        })
        .collect();
    Some(ObsReplicateDoc {
        schema: "titan-obs-replicate/1".to_string(),
        window_days: report.window_days,
        per_seed,
        bands,
    })
}

/// Renders the replicate metrics artifact as pretty JSON.
pub fn render_obs_metrics_json(doc: &ObsReplicateDoc) -> String {
    let mut s = serde_json::to_string_pretty(doc).unwrap_or_else(|_| "{}".to_string());
    s.push('\n');
    s
}

/// Human-readable report table for the CLI.
pub fn render_report(report: &ReplicationReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "replication: {} seeds x {} days, {} threads",
        report.runs.len(),
        report.window_days,
        report.threads
    );
    let _ = writeln!(s, "\nper-seed digests:");
    for r in &report.runs {
        let _ = writeln!(s, "  seed {:>6}  {:016x}", r.seed, r.output_digest);
    }
    let _ = writeln!(s, "\nmetric bands (mean [95% CI]):");
    let mut obs_bands = 0usize;
    for (name, b) in &report.metrics {
        // Observability scalars go to the --metrics artifact; the
        // human table stays the fleet summary.
        if name.starts_with("obs.") {
            obs_bands += 1;
            continue;
        }
        let _ = writeln!(
            s,
            "  {name:<22} {:>12.1}  [{:>12.1}, {:>12.1}]  sd {:.1}",
            b.mean,
            b.ci_lo,
            b.ci_hi,
            if b.std_dev.is_nan() { 0.0 } else { b.std_dev }
        );
    }
    if obs_bands > 0 {
        let _ = writeln!(
            s,
            "  (+ {obs_bands} observability metric bands; write them with --metrics FILE)"
        );
    }
    if !report.expectations.is_empty() {
        let _ = writeln!(s, "\nexpectation verdicts across seeds (pass/weak/fail):");
        for v in &report.expectations {
            let _ = writeln!(
                s,
                "  [{}] {:<6} {}/{}/{}  {}",
                v.overall, v.id, v.pass, v.weak, v.fail, v.paper
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(days: u64, n: u64, threads: usize) -> ReplicateOptions {
        let mut o = ReplicateOptions::consecutive(StudyConfig::quick(days, 0), 100, n, threads)
            .expect("test seed range never overflows");
        // Figures are the dominant cost; the runner's own tests exercise
        // fan-out and merge, not the registry.
        o.skip_expectations = true;
        o
    }

    /// Regression: consecutive seed derivation used `wrapping_add`, so a
    /// base seed near u64::MAX silently wrapped to 0, 1, … and could
    /// duplicate seeds already in the list. Overflow is now rejected.
    #[test]
    fn consecutive_seed_overflow_is_rejected() {
        let base = StudyConfig::quick(10, 0);
        // Exactly fits: MAX-2, MAX-1, MAX.
        let ok = ReplicateOptions::consecutive(base.clone(), u64::MAX - 2, 3, 1)
            .expect("range that ends exactly at u64::MAX is fine");
        assert_eq!(ok.seeds, vec![u64::MAX - 2, u64::MAX - 1, u64::MAX]);
        // One more wraps — rejected, not silently duplicated.
        let err = ReplicateOptions::consecutive(base, u64::MAX - 2, 4, 1)
            .expect_err("wrapping range must be rejected");
        assert!(err.contains("overflows"), "unexpected error: {err}");
    }

    /// The tentpole determinism guarantee: a threaded replicate run is
    /// byte-identical to N sequential runs, per seed.
    #[test]
    fn threaded_replicate_matches_sequential_per_seed() {
        let threaded = replicate(&opts(10, 4, 3)).unwrap();
        let sequential = replicate(&opts(10, 4, 1)).unwrap();
        assert_eq!(threaded.runs, sequential.runs);
        assert_eq!(threaded.metrics, sequential.metrics);
        // And each per-seed digest equals a direct single-study run.
        let base = StudyConfig::quick(10, 0);
        for r in &threaded.runs {
            let solo = run_seed(&base, r.seed, true);
            assert_eq!(r, &solo, "seed {} diverged from sequential", r.seed);
        }
    }

    #[test]
    fn report_is_in_seed_order_and_seeds_differ() {
        let rep = replicate(&opts(10, 3, 2)).unwrap();
        let seeds: Vec<u64> = rep.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![100, 101, 102]);
        // Different seeds must not produce identical outputs.
        let digests: std::collections::BTreeSet<u64> =
            rep.runs.iter().map(|r| r.output_digest).collect();
        assert_eq!(digests.len(), 3);
    }

    #[test]
    fn bands_cover_their_samples() {
        let rep = replicate(&opts(10, 4, 2)).unwrap();
        let dbe = &rep.metrics["dbe_count"];
        assert_eq!(dbe.n, 4);
        assert_eq!(dbe.per_seed.len(), 4);
        let mn = dbe.per_seed.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = dbe
            .per_seed
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(dbe.mean >= mn && dbe.mean <= mx);
        assert!(dbe.ci_lo <= dbe.mean && dbe.mean <= dbe.ci_hi);
    }

    #[test]
    fn single_seed_band_degenerates_to_point() {
        let rep = replicate(&opts(10, 1, 1)).unwrap();
        let b = &rep.metrics["console_events"];
        assert_eq!(b.n, 1);
        assert_eq!(b.ci_lo, b.mean);
        assert_eq!(b.ci_hi, b.mean);
    }

    #[test]
    fn bad_options_are_rejected() {
        let mut o = opts(10, 2, 2);
        o.seeds = vec![];
        assert!(replicate(&o).is_err());
        let mut o = opts(10, 2, 0);
        o.threads = 0;
        assert!(replicate(&o).is_err());
        let mut o = opts(10, 2, 2);
        o.seeds = vec![5, 5];
        assert!(replicate(&o).is_err());
    }

    /// Telemetry must be a pure observer: a metrics-collecting run and
    /// a plain run of the same seed produce byte-identical sim output.
    #[test]
    fn metrics_collection_never_perturbs_the_run() {
        let base = StudyConfig::quick(10, 0);
        let plain = run_seed(&base, 100, true);
        let observed = run_seed_obs(&base, 100, true, true);
        assert_eq!(plain.output_digest, observed.output_digest);
        assert!(plain.obs.is_none());
        let doc = observed.obs.expect("collected");
        // The engine counted real work.
        assert!(doc.engine["events_dequeued"] > 0);
        assert!(doc.engine["console_lines"] > 0);
        assert!(doc.faults["dbe_drafts"] > 0);
        assert!(doc.sec["events_ingested"] > 0);
        assert!(doc.nvsmi["final_snapshots"] > 0);
        assert!(doc.spans.recorded > 0);
        // Flattened scalars joined the band metrics.
        assert_eq!(
            observed.metrics["obs.engine.events_dequeued"],
            doc.engine["events_dequeued"] as f64
        );
        // Fleet metrics agree between the two paths.
        assert_eq!(plain.metrics["dbe_count"], observed.metrics["dbe_count"]);
    }

    /// Engine counters must agree with ground truth where both exist.
    #[test]
    fn engine_metrics_consistent_with_truth() {
        let mut config = StudyConfig::quick(30, 9);
        config.sim.seed = 9;
        let mut obs = Obs::enabled();
        let study = Study::new(config).run_with_obs(&mut obs);
        let doc = collect_metrics(&study.sim, 9, 30 * 86_400, &mut obs);
        assert_eq!(doc.engine["ev_dbe"], study.sim.truth.dbe.len() as u64);
        assert_eq!(doc.engine["sbe_thinned"], study.sim.truth.sbe_rejected);
        assert_eq!(
            doc.engine["sbe_accepted"],
            study.sim.truth.sbe_by_card.iter().sum::<u64>()
        );
        assert_eq!(
            doc.engine["console_lines"],
            study.sim.console.len() as u64
        );
        assert_eq!(
            doc.engine["swaps_fired"],
            study.sim.truth.swaps.len() as u64
        );
        // SEC replay saw every console line.
        assert_eq!(doc.sec["events_ingested"], study.sim.console.len() as u64);
        // nvsmi fleet rollup matches a direct summarize.
        let fleet = titan_nvsmi::summarize(&study.sim.final_snapshots);
        assert_eq!(doc.nvsmi["fleet_total_sbe"], fleet.total_sbe);
        // Accepted + thinned = drafts that reached an in-production card.
        assert!(doc.engine["sbe_accepted"] + doc.engine["sbe_thinned"] <= doc.faults["sbe_drafts"]);
    }

    /// Replicate with collect_obs: per-seed documents are identical at
    /// any thread width, and the artifact carries the obs bands.
    #[test]
    fn replicate_obs_docs_are_thread_width_invariant() {
        let mut a = opts(10, 3, 1);
        a.collect_obs = true;
        let mut b = opts(10, 3, 3);
        b.collect_obs = true;
        let seq = replicate(&a).unwrap();
        let par = replicate(&b).unwrap();
        for (x, y) in seq.runs.iter().zip(&par.runs) {
            let dx = x.obs.as_ref().expect("seq doc");
            let dy = y.obs.as_ref().expect("par doc");
            assert_eq!(dx.to_json(), dy.to_json(), "seed {}", x.seed);
        }
        let doc = obs_replicate_doc(&seq).expect("all seeds collected");
        assert_eq!(doc.per_seed.len(), 3);
        assert!(doc.bands.contains_key("engine.events_dequeued"));
        let json = render_obs_metrics_json(&doc);
        assert!(json.contains("titan-obs-replicate/1"));
        // Without collection there is no artifact.
        assert!(obs_replicate_doc(&replicate(&opts(10, 2, 1)).unwrap()).is_none());
    }

    /// Acceptance pin: the fixed-bucket timeseries in the metrics doc
    /// sums exactly to the run-end counters it shadows.
    #[test]
    fn timeseries_buckets_sum_to_run_end_counters() {
        let base = StudyConfig::quick(30, 0);
        let run = run_seed_obs(&base, 100, true, true);
        let doc = run.obs.expect("collected");
        assert_eq!(doc.schema, "titan-obs/2");
        for name in [
            "console_lines",
            "ev_dbe",
            "ev_otb",
            "ev_sbe",
            "sbe_accepted",
            "swaps_fired",
        ] {
            let series = &doc.timeseries.series[name];
            assert_eq!(series.len() as u64, doc.timeseries.buckets, "{name} length");
            assert_eq!(
                series.iter().sum::<u64>(),
                doc.engine[name],
                "{name} bucket sum != counter"
            );
        }
        // 30 days at the default weekly bucket = 5 buckets.
        assert_eq!(doc.timeseries.bucket_secs, 7 * 86_400);
        assert_eq!(doc.timeseries.buckets, 5);
        assert!(doc.engine["console_lines"] > 0);
    }

    /// Tracing must be a pure observer: the seed summary (digest
    /// included) and the metrics document are identical with the flight
    /// recorder on or off.
    #[test]
    fn trace_capture_never_perturbs_run_or_metrics() {
        let base = StudyConfig::quick(10, 0);
        let plain = run_seed_obs(&base, 100, true, true);
        let (traced, trace, _) = run_seed_full(&base, 100, true, true, true, false);
        assert_eq!(plain, traced, "tracing changed the seed summary");
        let text = trace.expect("trace requested");
        assert!(text.starts_with("{\"schema\":\"titan-trace/1\""));
        // Trace-only capture (no metrics) leaves the digest alone too.
        let (bare, _, _) = run_seed_full(&base, 100, true, false, true, false);
        assert_eq!(plain.output_digest, bare.output_digest);
        assert!(bare.obs.is_none());
        // And so does health collection — the third pure observer.
        let (healthy, _, health) = run_seed_full(&base, 100, true, false, false, true);
        assert_eq!(plain.output_digest, healthy.output_digest);
        let htext = health.expect("health requested");
        assert!(htext.starts_with("{\"schema\":\"titan-health/1\""));
    }

    /// Full-pipeline provenance: a traced run's chains — SEC alerts and
    /// nvsmi rollups included — all walk back to injected fault drafts.
    #[test]
    fn traced_run_passes_provenance_verification() {
        let base = StudyConfig::quick(30, 0);
        let (_, trace, _) = run_seed_full(&base, 7, true, false, true, false);
        let text = trace.expect("trace requested");
        let (header, records) = titan_obs::parse_trace(&text).expect("parse");
        let report = titan_obs::verify_trace(&header, &records);
        assert!(report.ok(), "{:?}", report.errors);
        assert!(report.chains_walked > 0, "no SEC alerts in 30 days");
        // draft -> engine event -> console line -> SEC alert.
        assert!(report.max_depth >= 4, "max depth {}", report.max_depth);
        assert!(records
            .iter()
            .any(|r| r.kind == TraceKind::SecAlert.name()));
    }

    /// Replicate traces are byte-identical at any thread width.
    #[test]
    fn replicate_traces_are_thread_width_invariant() {
        let mut a = opts(10, 2, 1);
        a.collect_trace = true;
        let mut b = opts(10, 2, 2);
        b.collect_trace = true;
        let (_, seq, _) = replicate_full(&a).unwrap();
        let (_, par, _) = replicate_full(&b).unwrap();
        assert_eq!(seq, par);
        assert!(seq.iter().all(|t| t.is_some()));
        let texts: std::collections::BTreeSet<&String> =
            seq.iter().flatten().collect();
        assert_eq!(texts.len(), 2, "different seeds must trace differently");
    }

    /// Replicate health docs are byte-identical at any thread width.
    #[test]
    fn replicate_health_docs_are_thread_width_invariant() {
        let mut a = opts(10, 2, 1);
        a.collect_health = true;
        let mut b = opts(10, 2, 2);
        b.collect_health = true;
        let (_, _, seq) = replicate_full(&a).unwrap();
        let (_, _, par) = replicate_full(&b).unwrap();
        assert_eq!(seq, par);
        assert!(seq.iter().all(|h| h.is_some()));
        let texts: std::collections::BTreeSet<&String> =
            seq.iter().flatten().collect();
        assert_eq!(texts.len(), 2, "different seeds must differ in health");
    }

    #[test]
    fn expectation_bands_aggregate_verdicts() {
        let mut o = opts(12, 2, 2);
        o.skip_expectations = false;
        let rep = replicate(&o).unwrap();
        assert!(!rep.expectations.is_empty());
        for v in &rep.expectations {
            assert_eq!(v.pass + v.weak + v.fail, 2, "{} counts", v.id);
            if v.fail > 0 {
                assert_eq!(v.overall, Verdict::Fail);
            }
        }
        let rendered = render_report(&rep);
        assert!(rendered.contains("expectation verdicts"));
        assert!(rendered.contains("metric bands"));
    }
}
