//! Hash-chained checkpoint/restore: the `titan-ckpt/1` document.
//!
//! A 638-day window is minutes of wall time, but the reliability story
//! the paper tells is about *recovering* long computations — so the
//! runner can freeze the whole deterministic machine state at fixed
//! sim-time boundaries and resume it later with **byte-identical**
//! output: same console log, same `titan-obs/2` metrics document, same
//! `titan-trace/1` flight recording as a run that passed straight
//! through the boundary (pinned by `tests/checkpoint_determinism.rs`).
//!
//! Each checkpoint is one JSON document carrying the engine snapshot
//! ([`titan_sim::EngineSnapshot`]: heap, payload tail, fleet, job
//! table, RNG stream positions), the observability snapshot
//! ([`titan_obs::ObsSnapshot`]: counters, spans, trace-id watermark),
//! and an FNV-1a digest **chained over the previous checkpoint's
//! digest** (the `prev_digest` field is part of the hashed bytes). The
//! chain is what makes [`bisect`] work: because the state at boundary
//! *k* is a pure function of the state at *k−1*, the first index where
//! two runs' chained digests differ brackets the first diverging event
//! to one checkpoint interval — no replay needed, though a resumed run
//! re-produces the identical chain, which is how the tests confirm it.
//!
//! Corruption is detected, never propagated: [`parse_checkpoint`]
//! recomputes the digest and refuses a document whose stored digest
//! does not match (a single flipped byte fails cleanly, without a
//! panic and without resuming from poisoned state).

use serde::{Deserialize, Serialize};
use titan_conlog::time::SimTime;
use titan_obs::{Obs, ObsSnapshot};
use titan_reliability::study::CompletedStudy;
use titan_reliability::{Study, StudyConfig};
use titan_sim::{EngineSnapshot, EngineState};

/// Schema identifier written into every checkpoint document.
pub const CKPT_SCHEMA: &str = "titan-ckpt/1";

/// One frozen machine state. Field order is part of the on-disk format
/// (lint S1, `titan-ckpt-1` golden spec): the digest is FNV-1a over the
/// serialized document with `digest` zeroed, so any reordering would
/// invalidate every existing checkpoint file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointDoc {
    /// Schema identifier ([`CKPT_SCHEMA`]).
    pub schema: String,
    /// Master seed of the run being checkpointed.
    pub seed: u64,
    /// Study window in days.
    pub window_days: u64,
    /// Sim time (seconds since window start) of this boundary.
    pub t: u64,
    /// Checkpoint number within the run, 0-based, cadence order.
    pub index: u64,
    /// Whether the run collected metrics (`--metrics`). Resuming with
    /// different observability flags than the original run breaks
    /// metrics byte-identity (see DETERMINISM.md).
    pub metrics_enabled: bool,
    /// Whether the run carried a flight recorder (`--trace`).
    pub trace_enabled: bool,
    /// The previous checkpoint's `digest` (0 for index 0). Hashing this
    /// field is what chains the digests.
    pub prev_digest: u64,
    /// FNV-1a digest of this document serialized with `digest = 0`.
    pub digest: u64,
    /// The full study configuration; a resumed run needs no CLI config.
    pub config: StudyConfig,
    /// The engine state at `t` (heap, fleet, jobs, RNG positions).
    pub engine: EngineSnapshot,
    /// The observability state at `t` (counters, spans, trace ids).
    pub obs: ObsSnapshot,
}

/// FNV-1a over `bytes`, continuing from `h` (same constants as
/// [`output_digest`](crate::output_digest) so the two fingerprint
/// families are comparable in tooling).
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The chained digest of a document: FNV-1a over its JSON serialization
/// with the `digest` field zeroed. `prev_digest` is inside the hashed
/// bytes, so this value commits to the entire chain back to index 0.
pub fn checkpoint_digest(doc: &CheckpointDoc) -> u64 {
    let mut zeroed = doc.clone();
    zeroed.digest = 0;
    let json = serde_json::to_string(&zeroed).unwrap_or_default();
    fnv1a(FNV_OFFSET, json.as_bytes())
}

/// Renders a sealed document as compact JSON (one line + newline).
pub fn render_checkpoint(doc: &CheckpointDoc) -> String {
    let mut s = serde_json::to_string(doc).unwrap_or_else(|_| "{}".to_string());
    s.push('\n');
    s
}

/// Parses and **verifies** a checkpoint document: schema must match and
/// the recomputed chained digest must equal the stored one. A corrupted
/// file (any flipped byte) fails here with a clean error.
pub fn parse_checkpoint(text: &str) -> Result<CheckpointDoc, String> {
    let doc: CheckpointDoc =
        serde_json::from_str(text.trim_end()).map_err(|e| format!("checkpoint parse: {e}"))?;
    if doc.schema != CKPT_SCHEMA {
        return Err(format!(
            "unsupported checkpoint schema `{}` (expected `{CKPT_SCHEMA}`)",
            doc.schema
        ));
    }
    let computed = checkpoint_digest(&doc);
    if computed != doc.digest {
        return Err(format!(
            "checkpoint digest mismatch: stored {:016x}, computed {computed:016x} \
             (file corrupted, truncated, or hand-edited — refusing to resume)",
            doc.digest
        ));
    }
    Ok(doc)
}

/// Runs `st` forward writing a checkpoint at every multiple of `every`
/// past `start_t` (strictly inside the window), feeding each sealed
/// document to `on_checkpoint` as it is produced so callers can stream
/// them to disk instead of holding the whole run in memory.
fn advance_with_checkpoints(
    st: &mut EngineState,
    config: &StudyConfig,
    every: SimTime,
    start_t: SimTime,
    first_index: u64,
    mut prev_digest: u64,
    obs: &mut Obs,
    on_checkpoint: &mut dyn FnMut(&CheckpointDoc) -> Result<(), String>,
) -> Result<(), String> {
    let window = config.sim.window;
    let mut index = first_index;
    let mut t = start_t.saturating_add(every);
    while t < window {
        st.run_until(t, obs);
        let mut doc = CheckpointDoc {
            schema: CKPT_SCHEMA.to_string(),
            seed: config.sim.seed,
            window_days: window / 86_400,
            t,
            index,
            metrics_enabled: obs.is_enabled(),
            trace_enabled: obs.trace_enabled(),
            prev_digest,
            digest: 0,
            config: config.clone(),
            engine: st.snapshot(t),
            obs: ObsSnapshot::capture(obs),
        };
        doc.digest = checkpoint_digest(&doc);
        prev_digest = doc.digest;
        on_checkpoint(&doc)?;
        // The snapshot/serialization machinery above allocates heavily;
        // none of it is engine cost, so the ledger discards the delta at
        // its next scope switch instead of charging the next event kind.
        obs.prof_rebaseline();
        index += 1;
        t = t.saturating_add(every);
    }
    Ok(())
}

/// Drains the engine to the horizon and completes the study (render →
/// parse → bundle), exactly as a straight-through run would.
fn finish(mut st: EngineState, config: &StudyConfig, obs: &mut Obs) -> CompletedStudy {
    st.run_until(SimTime::MAX, obs);
    let sim = st.finalize(obs);
    Study::new(config.clone()).complete_from_sim(sim, obs)
}

/// Runs a full study, checkpointing every `every` sim seconds. Each
/// sealed [`CheckpointDoc`] is handed to `on_checkpoint` the moment its
/// boundary is reached. `divergence` arms the engine's test-only
/// divergence probe (`--inject-divergence`): one extra RNG draw at that
/// sim time, used to validate [`bisect`] localization.
pub fn run_checkpointed(
    config: &StudyConfig,
    every: SimTime,
    divergence: Option<SimTime>,
    obs: &mut Obs,
    mut on_checkpoint: impl FnMut(&CheckpointDoc) -> Result<(), String>,
) -> Result<CompletedStudy, String> {
    if every == 0 {
        return Err("checkpoint interval must be at least 1 sim second".into());
    }
    config.sim.validate()?;
    let mut st = EngineState::new(&config.sim, obs);
    st.set_divergence_probe(divergence);
    advance_with_checkpoints(&mut st, config, every, 0, 0, 0, obs, &mut on_checkpoint)?;
    Ok(finish(st, config, obs))
}

/// Resumes a verified checkpoint and runs it to completion. With
/// `every > 0` the run keeps checkpointing on the same absolute grid
/// (`doc.t + every`, `doc.t + 2·every`, …), continuing the digest
/// chain from `doc.digest` — a deterministic resume therefore produces
/// checkpoints *identical* to the original run's, which is the
/// property `ckpt bisect` leans on. With `every == 0` no further
/// checkpoints are written.
///
/// The caller's `obs` must be built with the same collection flags as
/// the original run for metrics/trace byte-identity; the engine output
/// itself is byte-identical regardless (telemetry is a pure observer).
pub fn resume_checkpointed(
    doc: &CheckpointDoc,
    every: SimTime,
    divergence: Option<SimTime>,
    obs: &mut Obs,
    mut on_checkpoint: impl FnMut(&CheckpointDoc) -> Result<(), String>,
) -> Result<CompletedStudy, String> {
    let mut st = EngineState::restore(&doc.config.sim, &doc.engine, obs)?;
    // Engine setup during restore re-registers and pollutes the sinks;
    // the absolute, name-addressed obs restore overwrites all of it.
    doc.obs.restore(obs);
    st.set_divergence_probe(divergence);
    if every > 0 {
        advance_with_checkpoints(
            &mut st,
            &doc.config,
            every,
            doc.t,
            doc.index + 1,
            doc.digest,
            obs,
            &mut on_checkpoint,
        )?;
    }
    Ok(finish(st, &doc.config, obs))
}

/// Where two checkpointed runs first disagree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BisectInterval {
    /// Index of the first checkpoint whose chained digest differs.
    pub index: u64,
    /// Sim time of the last agreeing checkpoint (0 when the very first
    /// checkpoint already differs).
    pub t_lo: u64,
    /// Sim time of the first diverging checkpoint: the divergent event
    /// lies in `(t_lo, t_hi]`.
    pub t_hi: u64,
}

/// Outcome of comparing two runs' checkpoint chains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BisectReport {
    /// Checkpoint pairs compared (the shorter chain's length).
    pub compared: u64,
    /// First diverging interval, `None` when every compared pair
    /// agrees.
    pub divergence: Option<BisectInterval>,
}

/// Localizes the first divergence between two checkpointed runs of the
/// same configuration. Because each digest is chained over the previous
/// one and the machine state at boundary *k* is a pure function of the
/// state at *k−1*, comparing the chains index by index is equivalent to
/// replaying from each successive common checkpoint: the first
/// mismatching digest brackets the first diverging event to one
/// interval. Both slices must be index-sorted on the same cadence grid.
pub fn bisect(a: &[CheckpointDoc], b: &[CheckpointDoc]) -> Result<BisectReport, String> {
    if a.is_empty() || b.is_empty() {
        return Err("bisect: both runs need at least one checkpoint".into());
    }
    let mut prev_t = 0u64;
    let mut compared = 0u64;
    for (x, y) in a.iter().zip(b.iter()) {
        if x.index != y.index || x.t != y.t {
            return Err(format!(
                "bisect: checkpoint grids differ (index {} t {}s vs index {} t {}s) — \
                 both runs must use the same --checkpoint-every cadence",
                x.index, x.t, y.index, y.t
            ));
        }
        compared += 1;
        if x.digest != y.digest {
            return Ok(BisectReport {
                compared,
                divergence: Some(BisectInterval {
                    index: x.index,
                    t_lo: prev_t,
                    t_hi: x.t,
                }),
            });
        }
        prev_t = x.t;
    }
    Ok(BisectReport {
        compared,
        divergence: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    fn collect(
        config: &StudyConfig,
        every: u64,
        divergence: Option<u64>,
    ) -> (CompletedStudy, Vec<CheckpointDoc>) {
        let mut docs = Vec::new();
        let mut obs = Obs::disabled();
        let study = run_checkpointed(config, every, divergence, &mut obs, |d| {
            docs.push(d.clone());
            Ok(())
        })
        .expect("checkpointed run");
        (study, docs)
    }

    /// The tentpole invariant at the library level: resuming from any
    /// checkpoint reproduces the run-through output exactly, and the
    /// resumed run re-produces the identical digest chain.
    #[test]
    fn resume_reproduces_run_through_exactly() {
        let config = StudyConfig::quick(30, 7);
        let (through, docs) = collect(&config, 10 * DAY, None);
        assert_eq!(docs.len(), 2, "30 days / 10-day cadence => t=10d, t=20d");
        for doc in &docs {
            let mut redone = Vec::new();
            let mut obs = Obs::disabled();
            let resumed = resume_checkpointed(doc, 10 * DAY, None, &mut obs, |d| {
                redone.push(d.clone());
                Ok(())
            })
            .expect("resume");
            assert_eq!(resumed.sim, through.sim, "resume from t={} diverged", doc.t);
            assert_eq!(
                crate::output_digest(&resumed.sim),
                crate::output_digest(&through.sim)
            );
            // The continued chain matches the original run's tail.
            let tail: Vec<&CheckpointDoc> =
                docs.iter().filter(|d| d.index > doc.index).collect();
            assert_eq!(redone.len(), tail.len());
            for (r, t) in redone.iter().zip(tail) {
                assert_eq!(r, t, "resumed checkpoint {} differs", r.index);
            }
        }
    }

    /// Metrics and trace survive a resume byte-for-byte.
    #[test]
    fn resume_preserves_metrics_and_trace_bytes() {
        let config = StudyConfig::quick(30, 11);
        let seed = config.sim.seed;
        let window = config.sim.window;
        let mk_obs = || {
            let mut o = Obs::enabled();
            o.enable_trace();
            o
        };
        let mut docs = Vec::new();
        let mut obs_a = mk_obs();
        let through = run_checkpointed(&config, 12 * DAY, None, &mut obs_a, |d| {
            docs.push(d.clone());
            Ok(())
        })
        .expect("run");
        let doc_a = crate::collect_metrics(&through.sim, seed, window, &mut obs_a);
        let trace_a = obs_a.stream.render_jsonl(seed, window / DAY);

        let mut obs_b = mk_obs();
        let resumed =
            resume_checkpointed(&docs[0], 0, None, &mut obs_b, |_| Ok(())).expect("resume");
        let doc_b = crate::collect_metrics(&resumed.sim, seed, window, &mut obs_b);
        let trace_b = obs_b.stream.render_jsonl(seed, window / DAY);

        assert_eq!(through.sim.render_console_log(), resumed.sim.render_console_log());
        assert_eq!(doc_a.to_json(), doc_b.to_json(), "metrics doc diverged");
        assert_eq!(trace_a, trace_b, "trace JSONL diverged");
    }

    #[test]
    fn digests_chain_and_verify() {
        let config = StudyConfig::quick(30, 3);
        let (_, docs) = collect(&config, 10 * DAY, None);
        assert_eq!(docs[0].prev_digest, 0);
        assert_eq!(docs[1].prev_digest, docs[0].digest);
        for doc in &docs {
            let text = render_checkpoint(doc);
            let back = parse_checkpoint(&text).expect("round trip");
            assert_eq!(&back, doc);
        }
        // A flipped byte anywhere in the JSON fails verification
        // cleanly — no panic, no resume from poisoned state.
        let text = render_checkpoint(&docs[0]);
        let mid = text.len() / 2;
        let mut bytes = text.into_bytes();
        bytes[mid] ^= 0x01;
        match String::from_utf8(bytes) {
            Ok(corrupt) => {
                let err = parse_checkpoint(&corrupt).expect_err("corruption must fail");
                assert!(
                    err.contains("digest mismatch") || err.contains("parse"),
                    "unexpected error: {err}"
                );
            }
            Err(_) => { /* flip landed in a multibyte char — not valid UTF-8, unreadable anyway */ }
        }
    }

    #[test]
    fn bisect_localizes_an_injected_divergence() {
        let config = StudyConfig::quick(30, 5);
        let (_, clean) = collect(&config, 10 * DAY, None);
        // One extra RNG draw at day 15: inside the (10d, 20d] interval.
        let (_, dirty) = collect(&config, 10 * DAY, Some(15 * DAY));
        assert_eq!(clean.len(), dirty.len());
        let report = bisect(&clean, &dirty).expect("bisect");
        let div = report.divergence.expect("probe must diverge the chain");
        assert_eq!(div.t_lo, 10 * DAY);
        assert_eq!(div.t_hi, 20 * DAY);
        assert_eq!(div.index, 1);
        // Identical runs: no divergence, full chain compared.
        let (_, again) = collect(&config, 10 * DAY, None);
        let same = bisect(&clean, &again).expect("bisect");
        assert_eq!(same.compared, clean.len() as u64);
        assert!(same.divergence.is_none());
    }

    #[test]
    fn mismatched_grids_and_bad_input_are_rejected() {
        let config = StudyConfig::quick(30, 5);
        let (_, a) = collect(&config, 10 * DAY, None);
        let (_, b) = collect(&config, 15 * DAY, None);
        assert!(bisect(&a, &b).is_err(), "different cadences must not compare");
        assert!(bisect(&a, &[]).is_err());
        assert!(run_checkpointed(&config, 0, None, &mut Obs::disabled(), |_| Ok(()))
            .is_err());
        // A checkpoint from one config must not resume under another:
        // parse succeeds (the doc is intact) but restore rejects it.
        let mut doc = a[0].clone();
        doc.config = StudyConfig::quick(20, 5);
        doc.config.sim.seed = 5;
        assert!(
            resume_checkpointed(&doc, 0, None, &mut Obs::disabled(), |_| Ok(())).is_err(),
            "tampered config must be rejected by the engine's setup fingerprint"
        );
    }
}
