//! The deterministic event loop.
//!
//! All stochastic choices are drawn from per-subsystem RNG streams, and
//! events are ordered by `(time, sequence)`, so a given [`SimConfig`]
//! always produces bit-identical output.
//!
//! The loop is strictly single-threaded by design: parallelism in this
//! workspace only ever runs *across* independent simulations (see the
//! replication runner in `titan-runner` and DETERMINISM.md), never
//! inside one. titan-lint rule D4 enforces this mechanically.
//!
//! The engine is split into an explicit [`EngineState`] so a run can be
//! paused at any sim-time boundary, captured as an [`EngineSnapshot`],
//! and resumed later (or in another process) with byte-identical
//! output — the checkpoint/restore contract pinned by the `titan-ckpt/1`
//! tests in `titan-runner`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use titan_conlog::time::SimTime;
use titan_conlog::{ConsoleEvent, JobRecord};
use titan_faults::calibration;
use titan_faults::cascade::CascadeModel;
use titan_faults::hardware::{DbeProcess, OtbProcess, SbeProcess};
use titan_faults::rngstream::{RngStreams, StreamTag};
use titan_faults::software::SoftwareXidModel;
use titan_faults::telemetry::{
    dbe_draft_payload, otb_draft_payload, sbe_draft_payload, soft_draft_payload, DbeDraftStats,
    OtbDraftStats, SbeDraftStats, SoftDraftStats,
};
use titan_obs::{metric_key, CostKind, HealthEvent, Obs, Span, SpanKind, TraceKind, TsSeries};
use titan_gpu::pages::{RetireDecision, RetirementCause};
use titan_gpu::{ErrorCategory, GpuErrorKind, MemoryStructure, PageAddress};
use titan_nvsmi::{GpuSnapshot, JobEccDelta};
use titan_topology::{node_to_gpu_index, NodeId, TOTAL_SLOTS};
use titan_workload::{ScheduledJob, WorkloadSchedule};

use crate::config::SimConfig;
use crate::fleet::{Fleet, FleetSnapshot};
use crate::output::{DbeTruth, OtbTruth, RetireTruth, SimOutput, SwapTruth};

/// Sentinel: no job on this node / job not active.
const NO_JOB: u32 = u32::MAX;

/// One schedulable event. Every payload is plain-old-data, so the event
/// loop reads it by copy — no per-event clone on the hot path — and a
/// checkpoint can serialize the dynamic payload tail directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Ev {
    JobStart(u32),
    JobEnd(u32),
    Dbe {
        structure: MemoryStructure,
        page: Option<PageAddress>,
        persisted: bool,
        /// Flight-recorder id of the fault draft (0 when tracing is off).
        trace: u64,
    },
    Otb {
        trace: u64,
    },
    Sbe {
        structure: MemoryStructure,
        hot_page: Option<u32>,
        trace: u64,
    },
    Soft {
        kind: GpuErrorKind,
        job_wide: bool,
        trace: u64,
    },
    /// Cascade child event landing on a specific node. Carries the apid
    /// of the originating job: by the time the child lands the job has
    /// usually crashed, but the console line still names the application
    /// that caused it (the driver logs the context's apid).
    Child {
        node: NodeId,
        kind: GpuErrorKind,
        apid: Option<u64>,
        /// Flight-recorder id of the engine event that spawned the
        /// cascade (0 when tracing is off).
        trace: u64,
    },
    /// Deferred XID 63 console record for a retirement on `card`.
    RetireRecord {
        card: u32,
        /// Flight-recorder id of the retirement decision.
        trace: u64,
    },
    /// Hot-spare maintenance swap for `slot`, scheduled because `card`
    /// (the occupant at schedule time) crossed the pull threshold. The
    /// card id travels with the event so the fire-time check can tell a
    /// stale schedule from a live one.
    Swap {
        slot: u32,
        card: u32,
        /// Flight-recorder id of the DBE engine event that scheduled it.
        trace: u64,
    },
}

/// Per-job runtime state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct JobState {
    started: bool,
    ended: bool,
    /// Reported per-structure SBE totals per node at job start, in
    /// `MemoryStructure::ECC_COUNTED` order. Present only while running.
    pre_sbe: Option<Vec<[u64; 5]>>,
    actual_end: SimTime,
}

/// Runtime job bookkeeping: per-job state, node occupancy, and the
/// active set with O(1) membership updates (`active_pos` tracks each
/// job's index in `active`, so ending a job is a `swap_remove` instead
/// of an O(active) scan).
#[derive(Debug)]
struct JobTable {
    state: Vec<JobState>,
    /// Node → running job (NO_JOB when idle).
    node_job: Vec<u32>,
    /// Currently running jobs.
    active: Vec<u32>,
    /// Job → index in `active` (NO_JOB when not active).
    active_pos: Vec<u32>,
    /// Recycled pre-SBE snapshot buffers (one allocation per concurrent
    /// job, reused across the whole run).
    spare_pre: Vec<Vec<[u64; 5]>>,
}

/// Portable [`JobTable`] state for checkpointing. The recycled
/// `spare_pre` buffers are captured as a *count* only: their contents
/// are cleared before every reuse, so only how many exist matters (it
/// decides the `pre_sbe_reuse_hits` / `pre_sbe_allocs` counter split on
/// the resumed run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JobTableSnapshot {
    state: Vec<JobState>,
    node_job: Vec<u32>,
    active: Vec<u32>,
    active_pos: Vec<u32>,
    spare_pre_len: u64,
}

impl JobTable {
    fn new(n_jobs: usize) -> Self {
        JobTable {
            state: vec![JobState::default(); n_jobs],
            node_job: vec![NO_JOB; TOTAL_SLOTS],
            active: Vec::new(),
            active_pos: vec![NO_JOB; n_jobs],
            spare_pre: Vec::new(),
        }
    }

    fn snapshot(&self) -> JobTableSnapshot {
        JobTableSnapshot {
            state: self.state.clone(),
            node_job: self.node_job.clone(),
            active: self.active.clone(),
            active_pos: self.active_pos.clone(),
            // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
            spare_pre_len: self.spare_pre.len() as u64,
        }
    }

    fn from_snapshot(s: &JobTableSnapshot) -> JobTable {
        JobTable {
            state: s.state.clone(),
            node_job: s.node_job.clone(),
            active: s.active.clone(),
            active_pos: s.active_pos.clone(),
            spare_pre: (0..s.spare_pre_len).map(|_| Vec::new()).collect(),
        }
    }

    /// Marks job `j` started: occupies its nodes and snapshots the
    /// reported SBE counters (the nvidia-smi prologue).
    fn start(&mut self, j: u32, job: &ScheduledJob, fleet: &Fleet, obs: &mut Obs) {
        let mut pre = match self.spare_pre.pop() {
            Some(buf) => {
                obs.reg.inc(obs.cat.engine.pre_sbe_reuse_hits);
                buf
            }
            None => {
                obs.reg.inc(obs.cat.engine.pre_sbe_allocs);
                Vec::new()
            }
        };
        let Some(st) = self.state.get_mut(j as usize) else {
            return;
        };
        st.started = true;
        st.actual_end = job.end;
        pre.clear();
        pre.reserve(job.nodes.len());
        for n in &job.nodes {
            if let Some(slot) = self.node_job.get_mut(n.0 as usize) {
                *slot = j;
            }
            pre.push(reported_sbe_vector(fleet, *n));
        }
        obs.reg.add(obs.cat.nvsmi.prologue_reads, job.nodes.len() as u64);
        st.pre_sbe = Some(pre);
        let pos = self.active.len();
        if let Some(p) = self.active_pos.get_mut(j as usize) {
            // lint: allow(N1, active job count is bounded by the schedule length, far below 2^32)
            *p = pos as u32;
        }
        self.active.push(j);
    }

    /// Ends job `j` at `t` (normal completion or crash), producing the
    /// job record and the nvidia-smi prologue/epilogue SBE delta.
    fn end(
        &mut self,
        j: u32,
        t: SimTime,
        schedule: &WorkloadSchedule,
        fleet: &Fleet,
        out: &mut SimOutput,
        obs: &mut Obs,
    ) {
        let Some(st) = self.state.get_mut(j as usize) else {
            return;
        };
        if !st.started || st.ended {
            return;
        }
        st.ended = true;
        st.actual_end = t;
        let Some(job) = schedule.jobs.get(j as usize) else {
            return;
        };
        for n in &job.nodes {
            if let Some(slot) = self.node_job.get_mut(n.0 as usize) {
                if *slot == j {
                    *slot = NO_JOB;
                }
            }
        }
        // O(1) active-set removal.
        let pos = self
            .active_pos
            .get(j as usize)
            .copied()
            .unwrap_or(NO_JOB) as usize;
        if let Some(p) = self.active_pos.get_mut(j as usize) {
            *p = NO_JOB;
        }
        if pos < self.active.len() {
            self.active.swap_remove(pos);
            if let Some(&moved) = self.active.get(pos) {
                if let Some(p) = self.active_pos.get_mut(moved as usize) {
                    // lint: allow(N1, pos indexes the active vec, bounded by the schedule length)
                    *p = pos as u32;
                }
            }
        }

        // nvidia-smi epilogue: per-node SBE delta.
        let pre = st.pre_sbe.take().unwrap_or_default();
        let mut per_node_sbe = Vec::with_capacity(job.nodes.len());
        let mut per_structure_sbe = vec![0u64; 5];
        for (n, before) in job.nodes.iter().zip(&pre) {
            let after = reported_sbe_vector(fleet, *n);
            let mut node_total = 0;
            for ((a, b), ps) in after
                .iter()
                .zip(before.iter())
                .zip(per_structure_sbe.iter_mut())
            {
                let d = a.saturating_sub(*b);
                node_total += d;
                *ps += d;
            }
            per_node_sbe.push((*n, node_total));
        }
        self.spare_pre.push(pre);
        obs.reg.add(obs.cat.nvsmi.epilogue_reads, job.nodes.len() as u64);
        obs.trace.record(Span {
            kind: SpanKind::JobLifecycle,
            start: job.start,
            end: t,
            key: job.spec.apid,
            extra: job.nodes.len() as u64,
        });
        out.job_sbe.push(JobEccDelta {
            apid: job.spec.apid,
            per_node_sbe,
            per_structure_sbe,
        });

        // Job log record with *actual* runtime.
        let wall = t.saturating_sub(job.start);
        let frac = if job.spec.wall == 0 {
            0.0
        } else {
            wall as f64 / job.spec.wall as f64
        };
        out.jobs.push(JobRecord {
            apid: job.spec.apid,
            user: job.spec.user,
            nodes: job.nodes.clone(),
            start: job.start,
            end: t,
            gpu_core_hours: job.spec.gpu_core_hours() * frac.min(1.0),
            max_memory_bytes: job.spec.mem_max_bytes,
            total_memory_byte_hours: job.spec.total_memory_byte_hours() * frac.min(1.0),
        });
    }

    fn job_at(&self, node: NodeId) -> Option<u32> {
        let j = self
            .node_job
            .get(node.0 as usize)
            .copied()
            .unwrap_or(NO_JOB);
        (j != NO_JOB).then_some(j)
    }

    fn apid_at(&self, schedule: &WorkloadSchedule, node: NodeId) -> Option<u64> {
        self.job_at(node)
            .and_then(|j| schedule.jobs.get(j as usize))
            .map(|job| job.spec.apid)
    }
}

/// A paused simulation: the full mutable state of the event loop plus
/// everything needed to keep executing it. [`Simulator::run_with`] is
/// now a thin `new → run_until(∞) → finalize` over this type; the
/// checkpoint path instead stops at interval boundaries, captures an
/// [`EngineSnapshot`], and keeps going.
pub struct EngineState {
    cfg: SimConfig,
    schedule: WorkloadSchedule,
    heap: BinaryHeap<Reverse<(SimTime, u8, u64)>>,
    payloads: Vec<Ev>,
    /// How many payload slots the deterministic setup (job schedule +
    /// fault drafts) produced. Everything after this index was appended
    /// dynamically by the event loop — that tail is what a checkpoint
    /// must carry, because the prefix is regenerated from the config.
    initial_payload_len: usize,
    fleet: Fleet,
    cascades: CascadeModel,
    sim_rng: StdRng,
    cascade_rng: StdRng,
    spare_rng: StdRng,
    jobs: JobTable,
    swap_pending: Vec<bool>,
    /// Scratch for the weighted job pick, reused across soft events.
    weight_scratch: Vec<f64>,
    out: SimOutput,
    /// Test hook (`run --inject-divergence SECS`): burn one extra
    /// `sim_rng` draw at the first event at/after this time. Never
    /// serialized — a resumed run does not repeat the burn, which is
    /// exactly the artificial divergence `ckpt bisect` must localize.
    divergence_probe: Option<SimTime>,
}

/// Everything the event loop mutates, captured at a sim-time boundary.
/// Together with the originating [`SimConfig`] this is sufficient to
/// resume the run with byte-identical output; the `titan-ckpt/1` doc in
/// `titan-runner` wraps it with a chained FNV digest.
///
/// The deterministic *setup* products (workload schedule, fault drafts,
/// susceptibility, thermal model) are deliberately not captured — they
/// are pure functions of the config and are regenerated on restore,
/// which keeps checkpoints small and makes a config/checkpoint mismatch
/// detectable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    t: SimTime,
    /// Remaining `(time, class, seq)` heap entries, ascending. Keys are
    /// unique (seq is a global sequence number), so heap pop order is a
    /// pure function of this set.
    heap: Vec<(SimTime, u8, u64)>,
    /// Payload slots appended by the event loop after setup.
    payload_tail: Vec<Ev>,
    /// Setup payload count — must match the regenerated setup exactly.
    initial_payload_len: u64,
    fleet: FleetSnapshot,
    jobs: JobTableSnapshot,
    sim_rng: [u64; 4],
    cascade_rng: [u64; 4],
    spare_rng: [u64; 4],
    swap_pending: Vec<bool>,
    out: SimOutput,
}

impl EngineSnapshot {
    /// The sim-time boundary this snapshot was taken at.
    pub fn sim_time(&self) -> SimTime {
        self.t
    }
}

impl EngineState {
    /// Builds the initial engine state for `cfg`: generates the
    /// workload, drafts every fault stream, and seeds the runtime RNGs.
    /// This is the deterministic prefix shared by fresh runs and
    /// restores alike.
    pub fn new(cfg: &SimConfig, obs: &mut Obs) -> EngineState {
        let streams = RngStreams::new(cfg.seed);
        let window = cfg.window;
        let cat = obs.cat;

        // --- Generate the workload and fault drafts -------------------
        obs.phase("engine:workload");
        let schedule = {
            let mut rng = streams.stream(StreamTag::Workload);
            let schedule = WorkloadSchedule::generate(&cfg.schedule, &mut rng);
            // Setup streams are local to their block and never reach a
            // ledger scope switch, so their draws are charged directly.
            obs.prof_rng_direct(rng.draws());
            schedule
        };

        let mut heap: BinaryHeap<Reverse<(SimTime, u8, u64)>> =
            BinaryHeap::with_capacity(schedule.jobs.len() * 2);
        let mut payloads: Vec<Ev> = Vec::with_capacity(schedule.jobs.len() * 2);
        // Ties at one timestamp order by class (job starts before faults
        // before job ends), then by insertion sequence — so a fault at a
        // job's exact start second sees the job as running.
        let push = |heap: &mut BinaryHeap<Reverse<(SimTime, u8, u64)>>,
                    payloads: &mut Vec<Ev>,
                    t: SimTime,
                    class: u8,
                    ev: Ev| {
            // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
            let seq = payloads.len() as u64;
            payloads.push(ev);
            heap.push(Reverse((t, class, seq)));
        };

        // Job lifecycle events. Class 0 = starts (before same-time faults),
        // class 2 = ends (after same-time faults).
        for (i, j) in schedule.jobs.iter().enumerate() {
            // lint: allow(N1, job index: the window's schedule holds far fewer than 2^32 jobs)
            push(&mut heap, &mut payloads, j.start, 0, Ev::JobStart(i as u32));
            push(&mut heap, &mut payloads, j.end, 2, Ev::JobEnd(i as u32));
        }
        // Bulk attribution: every payload so far is a workload push.
        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
        let workload_payloads = payloads.len() as u64;
        obs.prof_heap_push(workload_payloads);

        obs.phase("engine:fault_drafts");
        if cfg.enable_dbe {
            let mut rng = streams.stream(StreamTag::Dbe);
            let drafts = DbeProcess::default().sample(&mut rng);
            obs.prof_rng_direct(rng.draws());
            if obs.is_enabled() {
                let s = DbeDraftStats::collect(drafts.iter().filter(|d| d.time < window));
                obs.reg.add(cat.faults.dbe_drafts, s.total);
                obs.reg.add(cat.faults.dbe_device_memory, s.device_memory);
                obs.reg.add(cat.faults.dbe_register_file, s.register_file);
                obs.reg.add(cat.faults.dbe_inforom_lost, s.inforom_lost);
            }
            payloads.reserve(drafts.len());
            heap.reserve(drafts.len());
            for d in drafts {
                if d.time < window {
                    let trace = obs.stream.mint(TraceKind::FaultDraft, 0, d.time, None, None, None, || {
                        dbe_draft_payload(&d)
                    });
                    push(
                        &mut heap,
                        &mut payloads,
                        d.time,
                        1,
                        Ev::Dbe {
                            structure: d.structure,
                            page: d.page,
                            persisted: d.inforom_persisted,
                            trace,
                        },
                    );
                }
            }
        }
        if cfg.enable_otb {
            let mut rng = streams.stream(StreamTag::OffTheBus);
            let drafts = OtbProcess::default().sample(&mut rng);
            obs.prof_rng_direct(rng.draws());
            if obs.is_enabled() {
                let s = OtbDraftStats::collect(drafts.iter().filter(|d| d.time < window));
                obs.reg.add(cat.faults.otb_drafts, s.total);
                obs.reg.add(cat.faults.otb_cluster_roots, s.cluster_roots);
                obs.reg.add(cat.faults.otb_cluster_children, s.cluster_children);
            }
            payloads.reserve(drafts.len());
            heap.reserve(drafts.len());
            for d in drafts {
                if d.time < window {
                    let trace = obs.stream.mint(TraceKind::FaultDraft, 0, d.time, None, None, None, || {
                        otb_draft_payload(&d)
                    });
                    push(&mut heap, &mut payloads, d.time, 1, Ev::Otb { trace });
                }
            }
        }
        if cfg.enable_sbe {
            let mut rng = streams.stream(StreamTag::Sbe);
            let drafts = SbeProcess::default().sample(&mut rng);
            obs.prof_rng_direct(rng.draws());
            if obs.is_enabled() {
                let s = SbeDraftStats::collect(drafts.iter().filter(|d| d.time < window));
                obs.reg.add(cat.faults.sbe_drafts, s.total);
                for (m, c) in s.per_structure() {
                    let name = format!("sbe_draft_{}", metric_key(m.label()));
                    let handle = obs.reg.counter("faults", &name);
                    obs.reg.add(handle, c);
                }
            }
            payloads.reserve(drafts.len());
            heap.reserve(drafts.len());
            for d in drafts {
                if d.time < window {
                    let trace = obs.stream.mint(TraceKind::FaultDraft, 0, d.time, None, None, None, || {
                        sbe_draft_payload(&d)
                    });
                    push(
                        &mut heap,
                        &mut payloads,
                        d.time,
                        1,
                        Ev::Sbe {
                            structure: d.structure,
                            hot_page: d.page.map(|p| p.0),
                            trace,
                        },
                    );
                }
            }
        }
        if cfg.enable_software {
            let mut rng = streams.stream(StreamTag::SoftwareXid);
            let incidents = SoftwareXidModel::default().sample(&mut rng);
            obs.prof_rng_direct(rng.draws());
            if obs.is_enabled() {
                let s = SoftDraftStats::collect(incidents.iter().filter(|i| i.time < window));
                obs.reg.add(cat.faults.soft_incidents, s.total);
                obs.reg.add(cat.faults.soft_job_wide, s.job_wide);
            }
            payloads.reserve(incidents.len());
            heap.reserve(incidents.len());
            for inc in incidents {
                if inc.time < window {
                    let trace = obs.stream.mint(TraceKind::FaultDraft, 0, inc.time, None, None, None, || {
                        soft_draft_payload(&inc)
                    });
                    push(
                        &mut heap,
                        &mut payloads,
                        inc.time,
                        1,
                        Ev::Soft {
                            kind: inc.kind,
                            job_wide: inc.job_wide,
                            trace,
                        },
                    );
                }
            }
        }
        let initial_payload_len = payloads.len();
        // Bulk attribution: everything pushed since the workload block
        // is a fault-draft payload.
        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
        obs.prof_heap_push(initial_payload_len as u64 - workload_payloads);

        // --- Runtime state ---------------------------------------------
        let fleet = {
            let mut rng = streams.stream(StreamTag::Susceptibility);
            let fleet = Fleet::new(cfg.spare_cards, &mut rng);
            obs.prof_rng_direct(rng.draws());
            fleet
        };
        let cascades = if cfg.enable_cascades {
            CascadeModel::default()
        } else {
            CascadeModel::disabled()
        };
        let sim_rng = streams.stream(StreamTag::Simulator);
        let cascade_rng = streams.stream(StreamTag::Cascade);
        let spare_rng = streams.stream(StreamTag::HotSpare);

        let jobs = JobTable::new(schedule.jobs.len());
        let swap_pending: Vec<bool> = vec![false; fleet.n_cards()];

        let mut out = SimOutput {
            schedule_dropped: schedule.dropped,
            ..SimOutput::default()
        };
        out.truth.sbe_by_card = vec![0; fleet.n_cards()];
        out.truth.sbe_by_slot = vec![0; titan_topology::COMPUTE_NODES];
        out.truth.sbe_by_structure = vec![0; MemoryStructure::ECC_COUNTED.len()];
        // Most payload events emit at most one console line; job-wide
        // soft events add a line per job node on top.
        out.console.reserve(payloads.len());
        out.jobs.reserve(schedule.jobs.len());
        out.job_sbe.reserve(schedule.jobs.len());

        EngineState {
            cfg: cfg.clone(),
            schedule,
            heap,
            payloads,
            initial_payload_len,
            fleet,
            cascades,
            sim_rng,
            cascade_rng,
            spare_rng,
            jobs,
            swap_pending,
            weight_scratch: Vec::new(),
            out,
            divergence_probe: None,
        }
    }

    /// Captures the full mutable loop state at boundary `t`. The caller
    /// must have advanced the loop to exactly `t` via
    /// [`EngineState::run_until`] for resume identity to hold.
    pub fn snapshot(&self, t: SimTime) -> EngineSnapshot {
        let mut heap: Vec<(SimTime, u8, u64)> = self.heap.iter().map(|r| r.0).collect();
        heap.sort_unstable();
        EngineSnapshot {
            t,
            heap,
            payload_tail: self
                .payloads
                .get(self.initial_payload_len..)
                .unwrap_or(&[])
                .to_vec(),
            // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
            initial_payload_len: self.initial_payload_len as u64,
            fleet: self.fleet.snapshot(),
            jobs: self.jobs.snapshot(),
            sim_rng: self.sim_rng.state(),
            cascade_rng: self.cascade_rng.state(),
            spare_rng: self.spare_rng.state(),
            swap_pending: self.swap_pending.clone(),
            out: self.out.clone(),
        }
    }

    /// Rebuilds a paused run from `snap`: re-runs the deterministic
    /// setup for `cfg`, then overlays the captured loop state. Fails if
    /// the regenerated setup does not line up with the snapshot — the
    /// cheap tell that `cfg` is not the config the checkpoint came from.
    pub fn restore(
        cfg: &SimConfig,
        snap: &EngineSnapshot,
        obs: &mut Obs,
    ) -> Result<EngineState, String> {
        let mut st = EngineState::new(cfg, obs);
        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
        if st.payloads.len() as u64 != snap.initial_payload_len {
            return Err(format!(
                "checkpoint does not match this config: setup generated {} events, \
                 checkpoint recorded {}",
                st.payloads.len(),
                snap.initial_payload_len
            ));
        }
        st.payloads.extend(snap.payload_tail.iter().copied());
        st.heap = snap.heap.iter().copied().map(Reverse).collect();
        st.fleet.restore(&snap.fleet);
        st.jobs = JobTable::from_snapshot(&snap.jobs);
        st.sim_rng = StdRng::from_state(snap.sim_rng);
        st.cascade_rng = StdRng::from_state(snap.cascade_rng);
        st.spare_rng = StdRng::from_state(snap.spare_rng);
        st.swap_pending = snap.swap_pending.clone();
        st.out = snap.out.clone();
        Ok(st)
    }

    /// Arms the divergence test hook: the first event dequeued at or
    /// after `at` burns one extra `sim_rng` draw, silently corrupting
    /// every draw after it. Deliberately absent from [`EngineSnapshot`].
    pub fn set_divergence_probe(&mut self, at: Option<SimTime>) {
        self.divergence_probe = at;
    }

    /// Executes every queued event strictly before `t_stop` (pass
    /// `SimTime::MAX` to drain the heap). Calling this repeatedly with
    /// increasing boundaries pops the exact same event sequence as one
    /// uninterrupted drain — the slicing only decides *when* control
    /// returns, never *what* runs.
    pub fn run_until(&mut self, t_stop: SimTime, obs: &mut Obs) {
        obs.phase("engine:event_loop");
        let cat = obs.cat;
        // Seed the hot-spare gauge before the first swap fires; no-op on
        // later slices (the baseline latches) and when health is off.
        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
        obs.health.set_spares_baseline(self.fleet.n_spares() as u64);
        let EngineState {
            cfg,
            schedule,
            heap,
            payloads,
            fleet,
            cascades,
            sim_rng,
            cascade_rng,
            spare_rng,
            jobs,
            swap_pending,
            weight_scratch,
            out,
            divergence_probe,
            ..
        } = self;
        let window = cfg.window;

        // --- Event loop --------------------------------------------------
        while let Some(&Reverse((t, _class, seq))) = heap.peek() {
            if t >= t_stop {
                break;
            }
            let _popped = heap.pop();
            obs.reg.inc(cat.engine.events_dequeued);
            // Ledger scope switch rides the pop itself — *before* the
            // health tick and horizon check — so every cost from here to
            // the next pop is charged to the event being dispatched,
            // identically in straight and checkpoint-resumed runs.
            if obs.prof_enabled() {
                let kind = if t >= window {
                    CostKind::Horizon
                } else {
                    payloads
                        // lint: allow(N1, seq is minted from payloads.len(), lossless on 64-bit)
                        .get(seq as usize)
                        .map(cost_kind)
                        .unwrap_or(CostKind::Horizon)
                };
                obs.prof_event(kind, sim_rng.draws() + cascade_rng.draws() + spare_rng.draws());
            }
            // Health grid runs on the monotone loop clock, advanced
            // *before* the event is fed, so interval boundaries land
            // identically however `run_until` slices the drain.
            obs.health.tick(t);
            obs.reg.set_max(cat.engine.heap_high_water, heap.len() as u64 + 1);
            if let Some(p) = *divergence_probe {
                if t >= p {
                    // One stolen draw shifts every subsequent sim_rng
                    // sample — an artificial nondeterminism for the
                    // `ckpt bisect` acceptance test.
                    let _burn: u64 = sim_rng.gen();
                    *divergence_probe = None;
                }
            }
            if t >= window {
                // Horizon: everything at/after the window is dropped.
                // Jobs still running are closed at `window` after the
                // loop; nothing else may land in the log.
                obs.reg.inc(cat.engine.events_past_horizon);
                continue;
            }
            let Some(ev) = payloads.get(seq as usize).copied() else {
                continue;
            };
            match ev {
                Ev::JobStart(j) => {
                    obs.reg.inc(cat.engine.ev_job_start);
                    let Some(job) = schedule.jobs.get(j as usize) else {
                        continue;
                    };
                    jobs.start(j, job, fleet, obs);
                    obs.reg
                        .set_max(cat.engine.active_jobs_high_water, jobs.active.len() as u64);
                    obs.reg.observe(cat.engine.job_nodes, job.nodes.len() as u64);
                }
                Ev::JobEnd(j) => {
                    obs.reg.inc(cat.engine.ev_job_end);
                    jobs.end(j, t, schedule, fleet, out, obs);
                }
                Ev::Dbe {
                    structure,
                    page,
                    persisted,
                    trace,
                } => {
                    obs.reg.inc(cat.engine.ev_dbe);
                    obs.ts.inc(TsSeries::EvDbe, t);
                    let slot = fleet.pick_dbe_slot(sim_rng);
                    let node = fleet.node_of_slot(slot);
                    let card = fleet.card_at_slot(slot);
                    let apid = jobs.apid_at(schedule, node);
                    let ev_id = obs.stream.mint(
                        TraceKind::EngineEvent,
                        trace,
                        t,
                        Some(u64::from(card)),
                        Some(u64::from(node.0)),
                        apid,
                        || format!("dbe {structure:?}"),
                    );

                    // Page-retirement state may only change once the
                    // Jan'14 driver exists (satellite bugfix: the gate
                    // is on the state itself, not just the record).
                    let retirement_active = t >= calibration::retirement_xid_introduced();
                    let decision = fleet
                        .card_mut(card)
                        .apply_dbe(structure, page, persisted, retirement_active);
                    emit_console(
                        out,
                        obs,
                        ev_id,
                        Some(u64::from(card)),
                        ConsoleEvent {
                            time: t,
                            node,
                            kind: GpuErrorKind::DoubleBitError,
                            structure: Some(structure),
                            page: page.map(|p| p.0),
                            apid,
                        },
                    );
                    out.truth.dbe.push(DbeTruth {
                        time: t,
                        node,
                        card,
                        structure,
                        persisted,
                        crashed_apid: apid,
                    });

                    // Crash the job and reboot the node.
                    if let Some(j) = jobs.job_at(node) {
                        jobs.end(j, t, schedule, fleet, out, obs);
                    }
                    fleet.card_mut(card).inforom.driver_reload(persisted);
                    // The node repair/reboot is instantaneous in sim
                    // time; the span still marks where it happened.
                    obs.trace.record(Span {
                        kind: SpanKind::RepairReboot,
                        start: t,
                        end: t,
                        key: node.0 as u64,
                        extra: 48, // XID 48: double-bit error
                    });

                    if let RetireDecision::Retired(cause) = decision {
                        schedule_retirement(
                            t, window, card, cause, ev_id, heap, payloads, cascade_rng, out, obs,
                        );
                    }

                    // Cascade children (XID 45 and friends).
                    let children = cascades.spawn(GpuErrorKind::DoubleBitError, cascade_rng);
                    obs.reg.inc(cat.faults.cascade_parents);
                    obs.reg.add(cat.faults.cascade_children, children.len() as u64);
                    obs.reg.observe(cat.faults.cascade_fanout, children.len() as u64);
                    for child in children {
                        let seq2 = payloads.len() as u64;
                        payloads.push(Ev::Child {
                            node,
                            kind: child.kind,
                            apid,
                            trace: ev_id,
                        });
                        heap.push(Reverse((t + child.delay, 1, seq2)));
                        obs.prof_heap_push(1);
                    }

                    // Hot-spare policy. The schedule-time checks are a
                    // cheap gate; the authoritative checks re-run when
                    // the swap fires (see Ev::Swap).
                    if cfg.enable_hot_spare_policy
                        && fleet.card(card).lifetime_dbe >= calibration::CARD_PULL_DBE_THRESHOLD
                        && !swap_pending.get(card as usize).copied().unwrap_or(true)
                        && fleet.n_spares() > 0
                    {
                        if let Some(p) = swap_pending.get_mut(card as usize) {
                            *p = true;
                        }
                        let seq2 = payloads.len() as u64;
                        payloads.push(Ev::Swap {
                            slot,
                            card,
                            trace: ev_id,
                        });
                        // Next maintenance window: 24 h later.
                        heap.push(Reverse((t + 24 * 3600, 1, seq2)));
                        obs.prof_heap_push(1);
                    }
                }
                Ev::Otb { trace } => {
                    obs.reg.inc(cat.engine.ev_otb);
                    obs.ts.inc(TsSeries::EvOtb, t);
                    let Some(slot) = fleet.pick_otb_slot(sim_rng) else {
                        continue;
                    };
                    let node = fleet.node_of_slot(slot);
                    let card = fleet.card_at_slot(slot);
                    let apid = jobs.apid_at(schedule, node);
                    fleet.mark_otb_done(card);
                    let ev_id = obs.stream.mint(
                        TraceKind::EngineEvent,
                        trace,
                        t,
                        Some(u64::from(card)),
                        Some(u64::from(node.0)),
                        apid,
                        || "otb".to_string(),
                    );
                    emit_console(
                        out,
                        obs,
                        ev_id,
                        Some(u64::from(card)),
                        ConsoleEvent {
                            time: t,
                            node,
                            kind: GpuErrorKind::OffTheBus,
                            structure: None,
                            page: None,
                            apid,
                        },
                    );
                    out.truth.otb.push(OtbTruth {
                        time: t,
                        node,
                        card,
                    });
                    if let Some(j) = jobs.job_at(node) {
                        jobs.end(j, t, schedule, fleet, out, obs);
                    }
                    // Node reboots after repair; volatile counters clear.
                    fleet.card_mut(card).inforom.driver_reload(false);
                    obs.trace.record(Span {
                        kind: SpanKind::RepairReboot,
                        start: t,
                        end: t,
                        key: node.0 as u64,
                        extra: 0, // off the bus (no XID in the paper's tables)
                    });
                }
                Ev::Sbe {
                    structure,
                    hot_page,
                    trace,
                } => {
                    obs.reg.inc(cat.engine.ev_sbe);
                    obs.ts.inc(TsSeries::EvSbe, t);
                    let Some(card) = fleet.pick_sbe_card(sim_rng) else {
                        continue;
                    };
                    let Some(slot) = fleet.slot_of_card(card) else {
                        continue; // card sits in the spare pool right now
                    };
                    let node = fleet.node_of_slot(slot);
                    // Activity thinning: busy GPUs accumulate SBEs faster
                    // (monotone but sublinear — Observation 12).
                    let accept_p = match jobs
                        .job_at(node)
                        .and_then(|j| schedule.jobs.get(j as usize))
                    {
                        Some(job) => job
                            .spec
                            .gpu_util
                            .powf(calibration::SBE_ACTIVITY_EXPONENT),
                        None => 0.25,
                    };
                    if sim_rng.gen::<f64>() >= accept_p {
                        out.truth.sbe_rejected += 1;
                        obs.reg.inc(cat.engine.sbe_thinned);
                        obs.stream.mint(
                            TraceKind::EngineEvent,
                            trace,
                            t,
                            Some(u64::from(card)),
                            Some(u64::from(node.0)),
                            None,
                            || format!("sbe {structure:?} thinned"),
                        );
                        continue;
                    }
                    obs.reg.inc(cat.engine.sbe_accepted);
                    obs.ts.inc(TsSeries::SbeAccepted, t);
                    let ev_id = obs.stream.mint(
                        TraceKind::EngineEvent,
                        trace,
                        t,
                        Some(u64::from(card)),
                        Some(u64::from(node.0)),
                        None,
                        || format!("sbe {structure:?}"),
                    );
                    obs.health.on_sbe(u64::from(card), t, ev_id);
                    let page = hot_page.map(PageAddress);
                    let retirement_active = t >= calibration::retirement_xid_introduced();
                    let decision = fleet
                        .card_mut(card)
                        .apply_sbe(structure, page, retirement_active);
                    if let Some(c) = out.truth.sbe_by_card.get_mut(card as usize) {
                        *c += 1;
                    }
                    if let Some(c) = out.truth.sbe_by_slot.get_mut(slot as usize) {
                        *c += 1;
                    }
                    if let Some(i) = MemoryStructure::ECC_COUNTED
                        .iter()
                        .position(|&m| m == structure)
                    {
                        if let Some(c) = out.truth.sbe_by_structure.get_mut(i) {
                            *c += 1;
                        }
                    }
                    if let RetireDecision::Retired(cause) = decision {
                        schedule_retirement(
                            t, window, card, cause, ev_id, heap, payloads, cascade_rng, out, obs,
                        );
                    }
                }
                Ev::Soft {
                    kind,
                    job_wide,
                    trace,
                } => {
                    obs.reg.inc(cat.engine.ev_soft);
                    if job_wide {
                        // Strike a running job, debug runs 8x as likely.
                        let Some(&j) =
                            weighted_job_pick(&jobs.active, schedule, sim_rng, weight_scratch)
                        else {
                            out.truth.software_skipped += 1;
                            obs.reg.inc(cat.engine.soft_no_target);
                            continue;
                        };
                        let Some(job) = schedule.jobs.get(j as usize) else {
                            continue;
                        };
                        let Some(&first) = job.nodes.first() else {
                            continue;
                        };
                        let apid = Some(job.spec.apid);
                        let ev_id = obs.stream.mint(
                            TraceKind::EngineEvent,
                            trace,
                            t,
                            None,
                            None,
                            apid,
                            || format!("soft {kind:?} job_wide"),
                        );
                        // "errors appear on all the nodes allocated to the
                        // job within five seconds" — clamped to the study
                        // horizon like every other console record.
                        for (k, n) in job.nodes.iter().enumerate() {
                            let skew = if k == 0 {
                                0
                            } else {
                                sim_rng.gen_range(0..=calibration::APP_XID_NODE_SPREAD_SEC)
                            };
                            emit_console(
                                out,
                                obs,
                                ev_id,
                                None,
                                ConsoleEvent {
                                    time: (t + skew).min(window - 1),
                                    node: *n,
                                    kind,
                                    structure: None,
                                    page: None,
                                    apid,
                                },
                            );
                        }
                        // Cascade consequences land on the first node.
                        let children = cascades.spawn(kind, cascade_rng);
                        obs.reg.inc(cat.faults.cascade_parents);
                        obs.reg.add(cat.faults.cascade_children, children.len() as u64);
                        obs.reg.observe(cat.faults.cascade_fanout, children.len() as u64);
                        for child in children {
                            // Target draw comes from the cascade stream so
                            // that disabling cascades leaves every other
                            // stream untouched (clean ablations).
                            let target = if child.same_node || job.nodes.len() == 1 {
                                first
                            } else {
                                job.nodes
                                    .get(cascade_rng.gen_range(0..job.nodes.len()))
                                    .copied()
                                    .unwrap_or(first)
                            };
                            let seq2 = payloads.len() as u64;
                            payloads.push(Ev::Child {
                                node: target,
                                kind: child.kind,
                                apid,
                                trace: ev_id,
                            });
                            heap.push(Reverse((t + child.delay, 1, seq2)));
                            obs.prof_heap_push(1);
                        }
                        if kind.crashes_application() {
                            jobs.end(j, t, schedule, fleet, out, obs);
                        }
                    } else {
                        // Driver-level: one node, busy nodes preferred.
                        let node = match pick_any_job_node(&jobs.active, schedule, sim_rng) {
                            Some(n) => n,
                            None => {
                                // Idle machine: any compute node.
                                let slot = sim_rng
                                    // lint: allow(N1, COMPUTE_NODES is the constant 18,688)
                                    .gen_range(0..titan_topology::COMPUTE_NODES as u32);
                                fleet.node_of_slot(slot)
                            }
                        };
                        let apid = jobs.apid_at(schedule, node);
                        let ev_id = obs.stream.mint(
                            TraceKind::EngineEvent,
                            trace,
                            t,
                            None,
                            Some(u64::from(node.0)),
                            apid,
                            || format!("soft {kind:?}"),
                        );
                        emit_console(
                            out,
                            obs,
                            ev_id,
                            None,
                            ConsoleEvent {
                                time: t,
                                node,
                                kind,
                                structure: None,
                                page: None,
                                apid,
                            },
                        );
                        let children = cascades.spawn(kind, cascade_rng);
                        obs.reg.inc(cat.faults.cascade_parents);
                        obs.reg.add(cat.faults.cascade_children, children.len() as u64);
                        obs.reg.observe(cat.faults.cascade_fanout, children.len() as u64);
                        for child in children {
                            let seq2 = payloads.len() as u64;
                            payloads.push(Ev::Child {
                                node,
                                kind: child.kind,
                                apid,
                                trace: ev_id,
                            });
                            heap.push(Reverse((t + child.delay, 1, seq2)));
                            obs.prof_heap_push(1);
                        }
                        if kind.crashes_application() {
                            if let Some(j) = jobs.job_at(node) {
                                jobs.end(j, t, schedule, fleet, out, obs);
                            }
                        }
                    }
                }
                Ev::Child {
                    node,
                    kind,
                    apid,
                    trace,
                } => {
                    obs.reg.inc(cat.engine.ev_child);
                    let ev_id = obs.stream.mint(
                        TraceKind::EngineEvent,
                        trace,
                        t,
                        None,
                        Some(u64::from(node.0)),
                        apid,
                        || format!("cascade {kind:?}"),
                    );
                    emit_console(
                        out,
                        obs,
                        ev_id,
                        None,
                        ConsoleEvent {
                            time: t,
                            node,
                            kind,
                            structure: None,
                            page: None,
                            apid,
                        },
                    );
                }
                Ev::RetireRecord { card, trace } => {
                    obs.reg.inc(cat.engine.ev_retire_record);
                    // The card may have moved to the spare pool meanwhile.
                    if let Some(slot) = fleet.slot_of_card(card) {
                        let node = fleet.node_of_slot(slot);
                        let apid = jobs.apid_at(schedule, node);
                        let ev_id = obs.stream.mint(
                            TraceKind::EngineEvent,
                            trace,
                            t,
                            Some(u64::from(card)),
                            Some(u64::from(node.0)),
                            apid,
                            || "retire_record".to_string(),
                        );
                        emit_console(
                            out,
                            obs,
                            ev_id,
                            Some(u64::from(card)),
                            ConsoleEvent {
                                time: t,
                                node,
                                kind: GpuErrorKind::EccPageRetirement,
                                structure: Some(MemoryStructure::DeviceMemory),
                                page: None,
                                apid,
                            },
                        );
                    }
                }
                Ev::Swap { slot, card, trace } => {
                    obs.reg.inc(cat.engine.ev_swap);
                    // The schedule is 24 h stale by now: re-verify before
                    // pulling anything, and clear the pending flag either
                    // way so the card can be re-scheduled later (e.g. when
                    // no spare was available at fire time).
                    if let Some(p) = swap_pending.get_mut(card as usize) {
                        *p = false;
                    }
                    if !swap_fire_check(fleet, slot, card) {
                        obs.reg.inc(cat.engine.swaps_stale);
                        obs.stream.mint(
                            TraceKind::EngineEvent,
                            trace,
                            t,
                            Some(u64::from(card)),
                            None,
                            None,
                            || "swap_stale".to_string(),
                        );
                        continue;
                    }
                    if let Some((old_card, new_card)) = fleet.swap_out(slot) {
                        obs.reg.inc(cat.engine.swaps_fired);
                        obs.ts.inc(TsSeries::SwapsFired, t);
                        let sid = obs.stream.mint(
                            TraceKind::EngineEvent,
                            trace,
                            t,
                            Some(u64::from(old_card)),
                            None,
                            None,
                            || "swap_fired".to_string(),
                        );
                        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
                        obs.health.on_swap(t, fleet.n_spares() as u64, sid);
                        // Span covers schedule (24 h earlier) to fire.
                        obs.trace.record(Span {
                            kind: SpanKind::HotSpareSwap,
                            start: t.saturating_sub(24 * 3600),
                            end: t,
                            key: slot as u64,
                            extra: old_card as u64,
                        });
                        // Hot-spare stress testing: burn the pulled card
                        // in under accelerated load. Its latent DBE
                        // proneness (lemons were usually what crossed the
                        // pull threshold) decides whether errors
                        // reproduce and the card goes back to the vendor.
                        let outcome = crate::hotspare::stress_test(
                            &crate::hotspare::StressTestConfig::default(),
                            fleet.susceptibility.dbe_weight(old_card as usize),
                            spare_rng,
                        );
                        if outcome.returned_to_vendor {
                            fleet.card_mut(old_card).return_to_vendor();
                        }
                        out.truth.swaps.push(SwapTruth {
                            time: t,
                            slot,
                            old_card,
                            new_card,
                            returned_to_vendor: outcome.returned_to_vendor,
                        });
                    }
                }
            }
        }
        // Close the open span at the slice boundary with the true loop
        // totals, so a checkpoint captured here rides a fully-attributed
        // table (capture-time serialization costs are then discarded by
        // the post-capture rebaseline).
        if obs.prof_enabled() {
            obs.prof_flush(sim_rng.draws() + cascade_rng.draws() + spare_rng.draws());
        }
    }

    /// Closes out the run: ends horizon-straddling jobs, derives the
    /// aprun log, takes the final fleet snapshots, and returns the
    /// completed [`SimOutput`]. Must only be called once the heap has
    /// been drained with `run_until(SimTime::MAX, ..)`.
    pub fn finalize(mut self, obs: &mut Obs) -> SimOutput {
        let cat = obs.cat;
        let window = self.cfg.window;

        // End any jobs still running at the horizon.
        obs.phase("engine:finalize");
        // Close the health stream at the horizon: flush every remaining
        // interval boundary plus the final partial interval.
        obs.health.finish(window);
        let still_active: Vec<u32> = self.jobs.active.clone();
        obs.reg
            .add(cat.engine.jobs_closed_at_horizon, still_active.len() as u64);
        for j in still_active {
            self.jobs
                .end(j, window, &self.schedule, &self.fleet, &mut self.out, obs);
        }
        let mut out = self.out;

        // Aprun structure for every completed job (the ALPS log). Uses a
        // dedicated substream so the main workload stream is untouched;
        // the substream is re-derived from the seed, so a resumed run
        // reproduces it without carrying any extra RNG state.
        {
            let streams = RngStreams::new(self.cfg.seed);
            let mut aprun_rng = streams.substream(StreamTag::Workload, 1);
            let is_debug: std::collections::BTreeMap<u64, bool> = self
                .schedule
                .jobs
                .iter()
                .map(|j| (j.spec.apid, j.spec.is_debug))
                .collect();
            for rec in &out.jobs {
                out.apruns.extend(titan_workload::apruns::subdivide_span(
                    rec.apid,
                    rec.start,
                    rec.end,
                    is_debug.get(&rec.apid).copied().unwrap_or(false),
                    8,
                    &mut aprun_rng,
                ));
            }
            obs.prof_rng_direct(aprun_rng.draws());
        }

        // Final fleet snapshots (per production slot).
        // lint: allow(N1, COMPUTE_NODES is the constant 18,688)
        out.final_snapshots = (0..titan_topology::COMPUTE_NODES as u32)
            .map(|slot| {
                let node = self.fleet.node_of_slot(slot);
                GpuSnapshot::take(node, self.fleet.card(self.fleet.card_at_slot(slot)), window)
            })
            .collect();

        obs.reg
            .add(cat.nvsmi.final_snapshots, out.final_snapshots.len() as u64);
        obs.reg
            .add(cat.engine.console_lines, out.console.len() as u64);
        obs.reg
            .set_max(cat.engine.payload_slots, self.payloads.len() as u64);

        out.console.sort_by_key(|e| e.time);
        out.jobs.sort_by_key(|j| j.start);
        SimOutput {
            console: out.console,
            jobs: out.jobs,
            job_sbe: out.job_sbe,
            apruns: out.apruns,
            final_snapshots: out.final_snapshots,
            schedule_dropped: out.schedule_dropped,
            truth: out.truth,
        }
    }
}

/// The fleet simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator; the config must validate.
    pub fn new(config: SimConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the full simulation.
    pub fn run(&self) -> SimOutput {
        self.run_with(&mut Obs::disabled())
    }

    /// Runs the full simulation, recording telemetry into `obs`.
    ///
    /// The sink never influences the run: every record call is a pure
    /// observation of state the engine computes anyway, so
    /// `run_with(&mut Obs::enabled())` and `run()` produce identical
    /// [`SimOutput`]s (pinned by the telemetry determinism tests).
    pub fn run_with(&self, obs: &mut Obs) -> SimOutput {
        let mut st = EngineState::new(&self.config, obs);
        st.run_until(SimTime::MAX, obs);
        st.finalize(obs)
    }
}

/// Reported per-structure SBE vector for the card on `node`.
fn reported_sbe_vector(fleet: &Fleet, node: NodeId) -> [u64; 5] {
    let mut v = [0u64; 5];
    if let Some(slot) = node_to_gpu_index(node) {
        let card = fleet.card(fleet.card_at_slot(slot));
        for (slot_v, &s) in v.iter_mut().zip(MemoryStructure::ECC_COUNTED.iter()) {
            *slot_v = card.inforom.reported_sbe(s);
        }
    }
    v
}

/// Fire-time validation for a scheduled hot-spare swap. The swap was
/// scheduled a maintenance window (24 h) earlier against the card that
/// crossed the pull threshold; by fire time the slot may have been
/// serviced already (pulling whoever occupies it now would pull an
/// innocent replacement), and the spare pool may have drained. Pull only
/// if the *offending card* still occupies the slot, is still over the
/// threshold, and a spare is available now.
fn swap_fire_check(fleet: &Fleet, slot: u32, card: u32) -> bool {
    fleet.slot_of_card(card) == Some(slot)
        && fleet.card(card).lifetime_dbe >= calibration::CARD_PULL_DBE_THRESHOLD
        && fleet.n_spares() > 0
}

/// Picks an active job for an application XID: debug runs weighted 20:1
/// (graphics engine exceptions overwhelmingly come from code under
/// development, per the paper's "debug and test runs" reading).
/// `weights` is caller-provided scratch, reused across calls.
fn weighted_job_pick<'a>(
    active: &'a [u32],
    schedule: &WorkloadSchedule,
    rng: &mut StdRng,
    weights: &mut Vec<f64>,
) -> Option<&'a u32> {
    if active.is_empty() {
        return None;
    }
    weights.clear();
    weights.extend(active.iter().map(|&j| {
        match schedule.jobs.get(j as usize) {
            Some(job) if job.spec.is_debug => 20.0,
            _ => 1.0,
        }
    }));
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return active.get(i);
        }
    }
    active.last()
}

/// A uniformly random node of a uniformly random active job.
fn pick_any_job_node(
    active: &[u32],
    schedule: &WorkloadSchedule,
    rng: &mut StdRng,
) -> Option<NodeId> {
    if active.is_empty() {
        return None;
    }
    let j = active.get(rng.gen_range(0..active.len())).copied()?;
    let nodes = &schedule.jobs.get(j as usize)?.nodes;
    if nodes.is_empty() {
        return None;
    }
    nodes.get(rng.gen_range(0..nodes.len())).copied()
}

/// Pushes a console line, mirroring it into the flight recorder and the
/// time-bucketed series first. Pure observation: the pushed event is
/// byte-identical to the untraced path, and the `(time, id)` pair the
/// stream keeps lets collect-time SEC replay recover the line's id even
/// after the final stable time-sort of the console log.
fn emit_console(out: &mut SimOutput, obs: &mut Obs, parent: u64, card: Option<u64>, ev: ConsoleEvent) {
    obs.ts.inc(TsSeries::ConsoleLines, ev.time);
    let cid = obs.stream.mint_console(
        parent,
        ev.time,
        card,
        Some(u64::from(ev.node.0)),
        ev.apid,
        || format!("console {:?}", ev.kind),
    );
    if obs.health.is_enabled() {
        let loc = ev.node.location();
        obs.health.on_console(HealthEvent {
            t: ev.time,
            class: ev.kind.short_name(),
            hardware: matches!(ev.kind.category(), ErrorCategory::Hardware),
            row: loc.row,
            col: loc.col,
            cage: loc.cage,
            trace: cid,
        });
    }
    if obs.prof_enabled() {
        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
        obs.prof_console(titan_conlog::rendered_len(&ev) as u64);
    }
    out.console.push(ev);
}

/// Ledger scope for a dispatched payload. Horizon drops are classed
/// separately at the call site; every live payload maps 1:1 onto a
/// [`CostKind`].
fn cost_kind(ev: &Ev) -> CostKind {
    match ev {
        Ev::JobStart(_) => CostKind::JobStart,
        Ev::JobEnd(_) => CostKind::JobEnd,
        Ev::Dbe { .. } => CostKind::Dbe,
        Ev::Otb { .. } => CostKind::Otb,
        Ev::Sbe { .. } => CostKind::Sbe,
        Ev::Soft { .. } => CostKind::Soft,
        Ev::Child { .. } => CostKind::Child,
        Ev::RetireRecord { .. } => CostKind::RetireRecord,
        Ev::Swap { .. } => CostKind::Swap,
    }
}

/// Schedules the XID 63 console record for a retirement, honouring the
/// prompt / delayed / missing split of Fig. 8. A record whose delay
/// carries it past the study horizon can never appear in the console
/// log, so truth records it as unemitted (satellite bugfix: truth and
/// console must agree at the horizon). `parent` is the flight-recorder
/// id of the engine event that triggered the retirement.
#[allow(clippy::too_many_arguments)]
fn schedule_retirement(
    t: SimTime,
    window: SimTime,
    card: u32,
    cause: RetirementCause,
    parent: u64,
    heap: &mut BinaryHeap<Reverse<(SimTime, u8, u64)>>,
    payloads: &mut Vec<Ev>,
    rng: &mut StdRng,
    out: &mut SimOutput,
    obs: &mut Obs,
) {
    let (emitted, delay) = match cause {
        RetirementCause::DoubleBitError => {
            let roll: f64 = rng.gen();
            if roll < calibration::RETIRE_MISSING_PROB {
                (false, 0)
            } else if roll < calibration::RETIRE_MISSING_PROB + calibration::RETIRE_DELAYED_PROB {
                // Delayed past the prompt path: 10 min – 6 h.
                (true, rng.gen_range(600..21_600))
            } else {
                // Prompt: exponential with the calibrated mean, capped
                // inside the 10-minute bucket. The mean is a positive
                // constant, so the fallback branch never runs.
                let d = titan_stats::Exponential::new(
                    1.0 / calibration::RETIRE_AFTER_DBE_MEAN_DELAY_SEC,
                )
                .map(|e| e.sample(rng))
                .unwrap_or(calibration::RETIRE_AFTER_DBE_MEAN_DELAY_SEC)
                .min(590.0) as u64; // lint: allow(N1, clamped to ≤ 590 before the cast)
                (true, d.max(1))
            }
        }
        // The two-SBE path always records (it is the driver's own
        // bookkeeping, no crash race).
        RetirementCause::MultipleSingleBitErrors => (true, rng.gen_range(1..120)),
    };
    let emitted = emitted && t + delay < window;
    let rid = obs.stream.mint(
        TraceKind::Retirement,
        parent,
        t,
        Some(u64::from(card)),
        None,
        None,
        || format!("retire cause={cause:?} emitted={emitted}"),
    );
    obs.health.on_retirement(t, rid);
    out.truth.retirements.push(RetireTruth {
        time: t,
        card,
        cause,
        emitted,
    });
    if emitted {
        // Fault → SEC-visible record causal chain: the XID 63 line the
        // SEC will see lands `delay` seconds after the triggering fault.
        obs.trace.record(Span {
            kind: SpanKind::FaultChain,
            start: t,
            end: t + delay,
            key: card as u64,
            extra: match cause {
                RetirementCause::DoubleBitError => 0,
                RetirementCause::MultipleSingleBitErrors => 1,
            },
        });
        // lint: allow(N1, usize to u64 is lossless on 64-bit targets)
        let seq = payloads.len() as u64;
        payloads.push(Ev::RetireRecord { card, trace: rid });
        heap.push(Reverse((t + delay, 1, seq)));
        obs.prof_heap_push(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn quick_run(days: u64, seed: u64) -> SimOutput {
        Simulator::new(SimConfig::quick(days, seed))
            .expect("valid config")
            .run()
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick_run(14, 7);
        let b = quick_run(14, 7);
        assert_eq!(a.console, b.console);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.truth.sbe_by_card, b.truth.sbe_by_card);
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick_run(14, 1);
        let b = quick_run(14, 2);
        assert_ne!(a.console, b.console);
    }

    #[test]
    fn console_sorted_and_strictly_inside_window() {
        let out = quick_run(20, 3);
        assert!(out.console.windows(2).all(|w| w[0].time <= w[1].time));
        // The horizon rule is strict: job-wide skew is clamped and heap
        // events at/after the window are dropped, so nothing may land at
        // or past it.
        assert!(out.console.iter().all(|e| e.time < 20 * 86_400));
    }

    #[test]
    fn sbes_never_in_console_log() {
        let out = quick_run(30, 5);
        assert!(out
            .console
            .iter()
            .all(|e| e.kind != GpuErrorKind::SingleBitError));
        // But SBEs did happen.
        let total: u64 = out.truth.sbe_by_card.iter().sum();
        assert!(total > 100, "sbe total {total}");
    }

    #[test]
    fn sbe_visible_through_snapshots() {
        let out = quick_run(30, 5);
        let snap_total: u64 = out.final_snapshots.iter().map(|s| s.total_sbe()).sum();
        assert!(snap_total > 0);
        // Snapshot totals can undercount truth (crash-lost pending) but
        // never exceed it.
        let truth_total: u64 = out.truth.sbe_by_card.iter().sum();
        assert!(snap_total <= truth_total, "{snap_total} vs {truth_total}");
    }

    #[test]
    fn dbe_crashes_running_job() {
        let out = quick_run(60, 11);
        // At least one DBE struck a busy node; its job record must end at
        // the DBE time.
        let crashed: Vec<_> = out
            .truth
            .dbe
            .iter()
            .filter_map(|d| d.crashed_apid.map(|a| (a, d.time)))
            .collect();
        assert!(!crashed.is_empty(), "no DBE hit a running job in 60 days");
        for (apid, t) in crashed {
            let job = out.jobs.iter().find(|j| j.apid == apid).expect("job record");
            assert_eq!(job.end, t, "job must end at the DBE");
        }
    }

    #[test]
    fn app_xids_replicate_across_job_nodes() {
        let out = quick_run(30, 13);
        let x13 = out.console_of_kind(GpuErrorKind::GraphicsEngineException);
        assert!(!x13.is_empty());
        // Group by apid: each incident must cover > 1 node for multi-node
        // jobs and span ≤ 5 s.
        let mut by_apid: std::collections::HashMap<u64, Vec<&ConsoleEvent>> = Default::default();
        for e in &x13 {
            if let Some(a) = e.apid {
                by_apid.entry(a).or_default().push(e);
            }
        }
        let mut multi = 0;
        for (apid, evs) in &by_apid {
            let job = out.jobs.iter().find(|j| j.apid == *apid);
            if let Some(job) = job {
                let nodes: std::collections::HashSet<NodeId> =
                    evs.iter().map(|e| e.node).collect();
                if job.nodes.len() > 1 {
                    assert!(nodes.len() > 1, "apid {apid} reported on one node only");
                    multi += 1;
                }
                let lo = evs.iter().map(|e| e.time).min().unwrap();
                let hi = evs.iter().map(|e| e.time).max().unwrap();
                assert!(hi - lo <= calibration::APP_XID_NODE_SPREAD_SEC);
            }
        }
        assert!(multi > 0, "no multi-node XID 13 incident observed");
    }

    #[test]
    fn no_retirement_before_jan14_driver() {
        // Full-window features need the real window; run 8 months.
        let out = quick_run(240, 17);
        let cut = calibration::retirement_xid_introduced();
        for e in out.console_of_kind(GpuErrorKind::EccPageRetirement) {
            assert!(e.time >= cut, "retirement record at {} < {cut}", e.time);
        }
        for r in &out.truth.retirements {
            assert!(r.time >= cut);
        }
    }

    /// Regression (pre-Jan'14 state): before the driver feature exists,
    /// not only must no retirement *record* appear — the cards' page
    /// tables themselves must stay empty. Previously `apply_dbe` /
    /// `apply_sbe` mutated retirement state unconditionally and only the
    /// console record was gated, so snapshots of a pre-Jan'14 window
    /// showed retired pages months before the feature shipped.
    #[test]
    fn pre_jan14_window_has_zero_retired_pages_in_snapshots() {
        let days = 200;
        assert!(days * 86_400 < calibration::retirement_xid_introduced());
        let out = quick_run(days, 17);
        // DBEs on device memory did happen — the retirement trigger was
        // exercised, not just absent.
        assert!(out
            .truth
            .dbe
            .iter()
            .any(|d| d.structure == MemoryStructure::DeviceMemory));
        assert!(out.truth.retirements.is_empty());
        for s in &out.final_snapshots {
            assert_eq!(
                s.retired_pages,
                (0, 0),
                "node {:?} retired pages before the Jan'14 driver",
                s.node
            );
        }
    }

    /// Regression (horizon truth/console agreement): every retirement
    /// truth record marked `emitted` must have exactly one XID 63 line
    /// in the console log. Previously a record whose delay landed past
    /// the window was dropped silently while truth still claimed it.
    /// (Hot-spare policy off so no card leaves production, the one other
    /// legitimate way a scheduled record can vanish.)
    #[test]
    fn emitted_retirements_all_have_console_records() {
        let mut cfg = SimConfig::quick(300, 41);
        cfg.enable_hot_spare_policy = false;
        let out = Simulator::new(cfg).unwrap().run();
        assert!(!out.truth.retirements.is_empty(), "no retirements in 300 days");
        let emitted = out.truth.retirements.iter().filter(|r| r.emitted).count();
        let records = out
            .console_of_kind(GpuErrorKind::EccPageRetirement)
            .len();
        assert_eq!(
            emitted, records,
            "truth claims {emitted} emitted records, console has {records}"
        );
    }

    /// Regression (horizon rule in schedule_retirement): a retirement
    /// right at the edge of the window can never emit — its record
    /// would land at/after the horizon.
    #[test]
    fn retirement_at_window_edge_is_marked_unemitted() {
        let mut heap = BinaryHeap::new();
        let mut payloads: Vec<Ev> = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = SimOutput::default();
        let window = 86_400;
        // The two-SBE path always wants to record, with delay ≥ 1 — at
        // t = window - 1 the record must be suppressed and truth must
        // say so.
        schedule_retirement(
            window - 1,
            window,
            7,
            RetirementCause::MultipleSingleBitErrors,
            0,
            &mut heap,
            &mut payloads,
            &mut rng,
            &mut out,
            &mut Obs::disabled(),
        );
        assert_eq!(out.truth.retirements.len(), 1);
        assert!(!out.truth.retirements[0].emitted);
        assert!(heap.is_empty(), "no console record may be scheduled");
        // Far from the horizon the same path emits.
        schedule_retirement(
            1000,
            window,
            7,
            RetirementCause::MultipleSingleBitErrors,
            0,
            &mut heap,
            &mut payloads,
            &mut rng,
            &mut out,
            &mut Obs::disabled(),
        );
        assert!(out.truth.retirements[1].emitted);
        assert_eq!(heap.len(), 1);
    }

    /// Regression (hot-spare swap mis-targeting): a swap scheduled for
    /// card A in slot S must not fire if the slot was serviced in the
    /// meantime — the card now in S is an innocent replacement.
    #[test]
    fn swap_fire_check_rejects_stale_schedules() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fleet = Fleet::new(4, &mut rng);
        let slot = 10;
        let offender = fleet.card_at_slot(slot);
        // Offender crosses the pull threshold.
        for _ in 0..calibration::CARD_PULL_DBE_THRESHOLD {
            fleet
                .card_mut(offender)
                .apply_dbe(MemoryStructure::DeviceMemory, None, true, true);
        }
        assert!(
            swap_fire_check(&fleet, slot, offender),
            "live schedule must pass"
        );

        // Slot serviced before the maintenance window fires: the
        // offender leaves, a spare moves in.
        let (old, replacement) = fleet.swap_out(slot).unwrap();
        assert_eq!(old, offender);
        // The stale schedule must now be rejected: the offender is gone
        // and the replacement must not be pulled in its stead.
        assert!(
            !swap_fire_check(&fleet, slot, offender),
            "stale schedule pulled an innocent card"
        );
        assert_eq!(fleet.card_at_slot(slot), replacement);
        assert_eq!(fleet.card(replacement).lifetime_dbe, 0);
    }

    /// Fire-time spare-pool check: a swap scheduled while spares existed
    /// must not fire after the pool drained.
    #[test]
    fn swap_fire_check_requires_spares_at_fire_time() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut fleet = Fleet::new(1, &mut rng);
        let slot = 3;
        let offender = fleet.card_at_slot(slot);
        for _ in 0..calibration::CARD_PULL_DBE_THRESHOLD {
            fleet
                .card_mut(offender)
                .apply_dbe(MemoryStructure::DeviceMemory, None, true, true);
        }
        assert!(swap_fire_check(&fleet, slot, offender));
        // Another slot consumes the last spare first.
        fleet.swap_out(77).unwrap();
        assert_eq!(fleet.n_spares(), 0);
        assert!(
            !swap_fire_check(&fleet, slot, offender),
            "swap fired with an empty spare pool"
        );
    }

    /// Engine-level invariant: every executed swap pulled a card that
    /// had crossed the DBE pull threshold by the swap time (no innocent
    /// replacement is ever pulled).
    #[test]
    fn every_swap_pulls_a_threshold_offender() {
        let mut cfg = SimConfig::quick(120, 23);
        cfg.enable_hot_spare_policy = true;
        let out = Simulator::new(cfg).unwrap().run();
        for s in &out.truth.swaps {
            let dbe_before_swap = out
                .truth
                .dbe
                .iter()
                .filter(|d| d.card == s.old_card && d.time <= s.time)
                .count() as u32;
            assert!(
                dbe_before_swap >= calibration::CARD_PULL_DBE_THRESHOLD,
                "swap at t={} pulled card {} with only {} DBEs",
                s.time,
                s.old_card,
                dbe_before_swap
            );
        }
    }

    #[test]
    fn hot_spare_policy_pulls_repeat_offenders() {
        // Crank DBEs by running long enough; with MTBF 160 h a 120-day
        // window yields ~18 DBEs — repeat offenders are unlikely, so
        // check the mechanism directly instead through config toggle.
        let mut cfg = SimConfig::quick(120, 23);
        cfg.enable_hot_spare_policy = true;
        let out = Simulator::new(cfg).unwrap().run();
        for s in &out.truth.swaps {
            // Every swap was justified by the threshold.
            assert!(s.old_card != s.new_card);
        }
        // Swaps only happen when some card hit 2 DBEs; consistency check:
        let mut dbe_per_card: std::collections::HashMap<u32, u32> = Default::default();
        for d in &out.truth.dbe {
            *dbe_per_card.entry(d.card).or_default() += 1;
        }
        let repeat_cards = dbe_per_card.values().filter(|&&c| c >= 2).count();
        assert!(out.truth.swaps.len() <= repeat_cards.max(1));
    }

    #[test]
    fn toggles_suppress_their_streams() {
        let mut cfg = SimConfig::quick(30, 29);
        cfg.enable_dbe = false;
        cfg.enable_otb = false;
        cfg.enable_software = false;
        let out = Simulator::new(cfg).unwrap().run();
        assert!(out.truth.dbe.is_empty());
        assert!(out.truth.otb.is_empty());
        assert!(out
            .console
            .iter()
            .all(|e| e.kind == GpuErrorKind::EccPageRetirement));
        // SBEs still flow.
        assert!(out.truth.sbe_by_card.iter().sum::<u64>() > 0);
    }

    #[test]
    fn job_records_cover_started_jobs() {
        let out = quick_run(20, 31);
        assert!(!out.jobs.is_empty());
        // apids unique.
        let mut apids: Vec<u64> = out.jobs.iter().map(|j| j.apid).collect();
        apids.sort_unstable();
        let n = apids.len();
        apids.dedup();
        assert_eq!(apids.len(), n);
        // Every job record has a matching SBE delta.
        assert_eq!(out.jobs.len(), out.job_sbe.len());
    }

    /// The flight recorder is a pure observer: running with the trace
    /// stream on produces a byte-identical [`SimOutput`], and the
    /// stream's console-id alignment recovers the exact post-sort
    /// console order.
    #[test]
    fn tracing_never_perturbs_the_run() {
        let cfg = SimConfig::quick(20, 19);
        let plain = Simulator::new(cfg.clone()).unwrap().run();
        let mut obs = Obs::disabled();
        obs.enable_trace();
        let traced = Simulator::new(cfg).unwrap().run_with(&mut obs);
        assert_eq!(plain.console, traced.console);
        assert_eq!(plain.jobs, traced.jobs);
        assert_eq!(plain.truth.sbe_by_card, traced.truth.sbe_by_card);
        assert!(!obs.stream.records().is_empty(), "stream recorded nothing");
        // Alignment: console-line record i describes console line i.
        let ids = obs.stream.console_ids_in_log_order();
        assert_eq!(ids.len(), traced.console.len());
        let by_id: std::collections::HashMap<u64, &titan_obs::TraceRecord> =
            obs.stream.records().iter().map(|r| (r.id, r)).collect();
        for (i, line) in traced.console.iter().enumerate() {
            let rec = by_id[&ids[i]];
            assert_eq!(rec.ts, line.time, "console record {i} time mismatch");
            assert_eq!(rec.node, Some(u64::from(line.node.0)));
            assert_eq!(rec.apid, line.apid);
        }
    }

    /// Every retirement in the trace walks back to an injected fault
    /// draft (engine-side provenance; the SEC/nvsmi legs are stitched at
    /// collect time and verified in the runner tests).
    #[test]
    fn engine_trace_chains_verify() {
        // Retirements only exist after the Jan'14 driver (~7 months in),
        // so use a window long enough to produce terminal records.
        let mut obs = Obs::disabled();
        obs.enable_trace();
        let out = Simulator::new(SimConfig::quick(240, 17))
            .unwrap()
            .run_with(&mut obs);
        let text = obs.stream.render_jsonl(17, 240);
        let (h, r) = titan_obs::parse_trace(&text).expect("parse");
        let rep = titan_obs::verify_trace(&h, &r);
        assert!(rep.ok(), "{:?}", rep.errors);
        assert!(rep.chains_walked > 0, "no terminal records in 240 days");
        // draft -> engine event -> retirement is depth 3 minimum.
        assert!(rep.max_depth >= 3, "max depth {}", rep.max_depth);
        assert!(!out.truth.retirements.is_empty());
    }

    #[test]
    fn otb_never_repeats_on_same_card() {
        let out = quick_run(120, 37);
        let mut seen = std::collections::HashSet::new();
        for o in &out.truth.otb {
            assert!(seen.insert(o.card), "card {} had two OTBs", o.card);
        }
        assert!(!out.truth.otb.is_empty(), "no OTB in 120 epidemic days");
    }

    /// Checkpoint contract, engine level: pausing at a boundary,
    /// snapshotting, restoring into a fresh state, and finishing must
    /// equal the uninterrupted run exactly (the binary-level byte
    /// identity tests build on this).
    #[test]
    fn snapshot_resume_is_identical() {
        let cfg = SimConfig::quick(30, 7);
        let full = Simulator::new(cfg.clone()).expect("valid config").run();

        let t = 10 * 86_400;
        let mut st = EngineState::new(&cfg, &mut Obs::disabled());
        st.run_until(t, &mut Obs::disabled());
        let snap = st.snapshot(t);
        assert_eq!(snap.sim_time(), t);

        let mut resumed =
            EngineState::restore(&cfg, &snap, &mut Obs::disabled()).expect("restore");
        resumed.run_until(SimTime::MAX, &mut Obs::disabled());
        let out = resumed.finalize(&mut Obs::disabled());
        assert_eq!(full, out);
    }

    /// Snapshots chain: a snapshot taken later in a resumed run equals
    /// the snapshot the uninterrupted run takes at the same boundary —
    /// this is what lets `ckpt bisect` compare per-interval digests from
    /// two independent runs.
    #[test]
    fn snapshot_after_resume_matches_run_through() {
        let cfg = SimConfig::quick(30, 11);
        let t1 = 8 * 86_400;
        let t2 = 16 * 86_400;

        let mut a = EngineState::new(&cfg, &mut Obs::disabled());
        a.run_until(t1, &mut Obs::disabled());
        let snap1 = a.snapshot(t1);
        a.run_until(t2, &mut Obs::disabled());
        let direct = a.snapshot(t2);

        let mut b = EngineState::restore(&cfg, &snap1, &mut Obs::disabled()).expect("restore");
        b.run_until(t2, &mut Obs::disabled());
        let resumed = b.snapshot(t2);
        assert_eq!(direct, resumed);
    }

    /// Restore must refuse a snapshot taken under a different config:
    /// the regenerated setup would not line up with the captured tail.
    #[test]
    fn restore_rejects_mismatched_config() {
        let cfg = SimConfig::quick(10, 7);
        let mut st = EngineState::new(&cfg, &mut Obs::disabled());
        st.run_until(86_400, &mut Obs::disabled());
        let snap = st.snapshot(86_400);

        let other = SimConfig::quick(40, 7);
        let err = EngineState::restore(&other, &snap, &mut Obs::disabled());
        assert!(err.is_err(), "restore accepted a mismatched config");
    }

    /// The divergence probe visibly corrupts the run (it steals one RNG
    /// draw), and a resumed run does not repeat the burn — the injected
    /// nondeterminism `ckpt bisect` exists to localize.
    #[test]
    fn divergence_probe_changes_the_output() {
        let cfg = SimConfig::quick(30, 13);
        let base = Simulator::new(cfg.clone()).expect("valid config").run();

        let mut st = EngineState::new(&cfg, &mut Obs::disabled());
        st.set_divergence_probe(Some(5 * 86_400));
        st.run_until(SimTime::MAX, &mut Obs::disabled());
        let diverged = st.finalize(&mut Obs::disabled());
        assert_ne!(base.console, diverged.console);
    }
}
