//! The hot-spare cluster: stress testing for pulled cards.
//!
//! §3.1: "We identify cards which incur double bit errors and put them
//! out of the production use (such cards undergo further rigorous
//! testing in a hot-spare cluster before being returned to the vendor
//! after encountering a threshold number of DBEs). We have returned the
//! GPUs to the vendor after they were stress tested in the hot-spare
//! cluster and GPU system failures were encountered. Such errors would
//! have likely occurred in production, but we avoided that by moving
//! error-encountering cards to the hot-spare cluster."
//!
//! The stress test runs the card under accelerated load: its *latent*
//! DBE proneness (which the simulator knows, the operators do not)
//! drives a Poisson error count over the burn-in. Cards that reproduce
//! errors go back to the vendor; clean cards return to the spare pool.
//! The errors observed during burn-in are exactly the paper's "errors
//! that would have likely occurred in production".

use rand::Rng;
use serde::{Deserialize, Serialize};
use titan_stats::PoissonCounter;

/// Stress-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressTestConfig {
    /// Burn-in length, hours.
    pub burn_in_hours: f64,
    /// Load-acceleration factor over production duty cycle.
    pub acceleration: f64,
    /// Baseline per-card DBE rate per hour under production load (the
    /// fleet rate divided across cards).
    pub base_rate_per_hour: f64,
    /// Errors during burn-in at/above which the card goes back to the
    /// vendor.
    pub fail_threshold: u32,
}

impl Default for StressTestConfig {
    fn default() -> Self {
        StressTestConfig {
            // Two weeks of burn-in under margined voltage, elevated
            // temperature and pathological access patterns — vendors'
            // in-house stress tests reach effective acceleration factors
            // in the hundreds over nominal duty cycles.
            burn_in_hours: 14.0 * 24.0,
            acceleration: 200.0,
            // Fleet MTBF 160 h over 18,688 cards -> per-card ~3.3e-7/h;
            // pulled cards are not average cards though — their dbe
            // weight multiplies this.
            base_rate_per_hour: 1.0 / (160.0 * 18_688.0),
            fail_threshold: 1,
        }
    }
}

/// Outcome of one card's burn-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StressOutcome {
    /// Errors reproduced during burn-in. `u64` like every event count
    /// in the simulator: `PoissonCounter::sample` returns `u64`, and
    /// its normal-approximation branch (mean > 30) can legitimately
    /// exceed `u32::MAX` for a pathological card under a long,
    /// heavily-accelerated burn-in — a `u32` here once wrapped that
    /// count and could flip `returned_to_vendor` back to false for
    /// exactly the worst cards.
    pub errors_reproduced: u64,
    /// Whether the card is returned to the vendor.
    pub returned_to_vendor: bool,
}

/// Runs the burn-in for a card with latent DBE-proneness multiplier
/// `dbe_weight` (1.0 = fleet average; pulled cards are typically well
/// above it, which is why they were pulled).
pub fn stress_test<R: Rng + ?Sized>(
    config: &StressTestConfig,
    dbe_weight: f64,
    rng: &mut R,
) -> StressOutcome {
    let mean =
        config.base_rate_per_hour * dbe_weight * config.acceleration * config.burn_in_hours;
    let errors = PoissonCounter::new(mean.max(0.0))
        .expect("nonnegative mean")
        .sample(rng);
    StressOutcome {
        errors_reproduced: errors,
        returned_to_vendor: errors >= u64::from(config.fail_threshold),
    }
}

/// Expected burn-in error count for a card (the detection-power planning
/// number: how long must burn-in be to catch a `weight`-times-worse
/// card?).
pub fn expected_errors(config: &StressTestConfig, dbe_weight: f64) -> f64 {
    config.base_rate_per_hour * dbe_weight * config.acceleration * config.burn_in_hours
}

/// Burn-in hours needed to reproduce at least one error with probability
/// `confidence` for a card `dbe_weight` times the fleet average.
pub fn required_burn_in_hours(
    config: &StressTestConfig,
    dbe_weight: f64,
    confidence: f64,
) -> f64 {
    // P(N >= 1) = 1 - exp(-rate * h) >= confidence.
    let rate = config.base_rate_per_hour * dbe_weight * config.acceleration;
    if rate <= 0.0 || !(0.0..1.0).contains(&confidence) {
        return f64::INFINITY;
    }
    -(1.0 - confidence).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn average_card_rarely_fails_burn_in() {
        let cfg = StressTestConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let fails = (0..10_000)
            .filter(|_| stress_test(&cfg, 1.0, &mut rng).returned_to_vendor)
            .count();
        // Expected errors for an average card over burn-in ≈ 0.022, so
        // roughly 2% false-return rate — a real cost of aggressive
        // screening, but far from the lemons' near-certain reproduction.
        assert!((50..500).contains(&fails), "{fails}");
    }

    #[test]
    fn pathological_card_usually_fails() {
        let cfg = StressTestConfig::default();
        // A card 10,000x the fleet average (the kind that throws 2 DBEs
        // in months) reproduces during accelerated burn-in most times.
        let mut rng = StdRng::seed_from_u64(2);
        let fails = (0..1_000)
            .filter(|_| stress_test(&cfg, 10_000.0, &mut rng).returned_to_vendor)
            .count();
        assert!(fails > 950, "{fails}");
    }

    #[test]
    fn expected_errors_scale_linearly() {
        let cfg = StressTestConfig::default();
        let e1 = expected_errors(&cfg, 100.0);
        let e2 = expected_errors(&cfg, 200.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn required_burn_in_decreases_with_weight() {
        let cfg = StressTestConfig::default();
        let h_bad = required_burn_in_hours(&cfg, 10_000.0, 0.9);
        let h_worse = required_burn_in_hours(&cfg, 100_000.0, 0.9);
        assert!(h_worse < h_bad);
        assert!(h_bad.is_finite());
        // Degenerate inputs.
        assert!(required_burn_in_hours(&cfg, 0.0, 0.9).is_infinite());
        assert!(required_burn_in_hours(&cfg, 1.0, 1.5).is_infinite());
    }

    #[test]
    fn threshold_respected() {
        let cfg = StressTestConfig {
            fail_threshold: 3,
            ..StressTestConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let o = stress_test(&cfg, 1_000_000.0, &mut rng);
            assert_eq!(o.returned_to_vendor, o.errors_reproduced >= 3);
        }
    }

    /// Regression: the error count used to be truncated `as u32`.
    /// PoissonCounter's normal-approximation branch returns counts far
    /// beyond u32::MAX for a catastrophically bad card, and the wrap
    /// could land below the threshold — returning the very worst
    /// lemons to the spare pool instead of the vendor.
    #[test]
    fn astronomical_error_counts_do_not_wrap_past_the_threshold() {
        let cfg = StressTestConfig::default();
        // Drive the Poisson mean past 2^32: burn-in mean for weight w is
        // w * acceleration * base_rate * hours ≈ w * 0.0225.
        let weight = 2.0_f64.powi(40);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let o = stress_test(&cfg, weight, &mut rng);
            assert!(
                o.errors_reproduced > u64::from(u32::MAX),
                "test premise: mean must exceed the old u32 range, got {}",
                o.errors_reproduced
            );
            assert!(o.returned_to_vendor, "wrapped count flipped the verdict");
        }
    }
}
