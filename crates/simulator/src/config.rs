//! Simulation configuration.

use serde::{Deserialize, Serialize};
use titan_conlog::time::{SimTime, STUDY_SECONDS};
use titan_workload::ScheduleConfig;

/// Full configuration for one simulated study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every subsystem derives its own stream from it.
    pub seed: u64,
    /// Simulated window, seconds from the study epoch (defaults to the
    /// full Jun'13–Feb'15 window; tests shrink it).
    pub window: SimTime,
    /// Workload generation parameters.
    pub schedule: ScheduleConfig,
    /// Spare cards available for hot-spare swaps.
    pub spare_cards: usize,
    /// Toggle: inject double-bit errors.
    pub enable_dbe: bool,
    /// Toggle: inject off-the-bus failures.
    pub enable_otb: bool,
    /// Toggle: inject single-bit errors.
    pub enable_sbe: bool,
    /// Toggle: inject software/driver XID incidents.
    pub enable_software: bool,
    /// Toggle: parent→child cascades.
    pub enable_cascades: bool,
    /// Toggle: the pull-card-after-threshold-DBEs operational policy.
    pub enable_hot_spare_policy: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x7174_414E, // "titAN"
            window: STUDY_SECONDS,
            schedule: ScheduleConfig::default(),
            spare_cards: 512,
            enable_dbe: true,
            enable_otb: true,
            enable_sbe: true,
            enable_software: true,
            enable_cascades: true,
            enable_hot_spare_policy: true,
        }
    }
}

impl SimConfig {
    /// A reduced-window config for fast tests: `days` of operation with a
    /// proportionally scaled workload.
    pub fn quick(days: u64, seed: u64) -> Self {
        let window = days * 86_400;
        SimConfig {
            seed,
            window,
            schedule: ScheduleConfig {
                n_users: 150,
                jobs_per_day: 100.0,
                window,
            },
            ..SimConfig::default()
        }
    }

    /// Consistency check: the schedule window must not exceed the
    /// simulation window.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be positive".into());
        }
        if self.schedule.window > self.window {
            return Err(format!(
                "schedule window {} exceeds simulation window {}",
                self.schedule.window, self.window
            ));
        }
        if self.window > STUDY_SECONDS {
            return Err(format!(
                "window {} exceeds the study span {STUDY_SECONDS}",
                self.window
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_full_window() {
        let c = SimConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.window, STUDY_SECONDS);
        assert_eq!(c.schedule.window, STUDY_SECONDS);
    }

    #[test]
    fn quick_scales_windows_together() {
        let c = SimConfig::quick(30, 1);
        assert!(c.validate().is_ok());
        assert_eq!(c.window, 30 * 86_400);
        assert_eq!(c.schedule.window, c.window);
    }

    #[test]
    fn validation_rejects_inconsistency() {
        let mut c = SimConfig::quick(10, 1);
        c.window = 5 * 86_400;
        assert!(c.validate().is_err());
        c.window = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::default();
        c.window = STUDY_SECONDS + 1;
        assert!(c.validate().is_err());
    }
}
