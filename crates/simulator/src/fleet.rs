//! Fleet state: 18,688 production slots, the cards in them, and the
//! spare pool the hot-spare policy swaps from.
//!
//! Card identity is decoupled from slot identity because the operators'
//! replacement workflow moves cards: "we identify cards which incur
//! double bit errors and put them out of the production use (such cards
//! undergo further rigorous testing in a hot-spare cluster …)".

use rand::Rng;
use serde::{Deserialize, Serialize};
use titan_faults::susceptibility::{CardSusceptibility, SbeAliasSampler};
use titan_gpu::{CardSerial, GpuCard};
use titan_stats::WeightedAlias;
use titan_topology::{gpu_index_to_node, NodeId, ThermalModel, COMPUTE_NODES};

/// The machine's card inventory and placement.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Every card ever owned (production + spares), indexed by card id.
    cards: Vec<GpuCard>,
    /// GPU slot (dense compute index) → card id.
    slot_card: Vec<u32>,
    /// Card id → GPU slot (None = in the spare pool / returned).
    card_slot: Vec<Option<u32>>,
    /// Spare pool, LIFO.
    spares: Vec<u32>,
    /// Per-card static susceptibility (travels with the card).
    pub susceptibility: CardSusceptibility,
    /// Thermal model (property of the slot, not the card).
    pub thermal: ThermalModel,
    /// Cards that already had their off-the-bus failure (the defect does
    /// not recur on a re-soldered card).
    otb_done: Vec<bool>,
    /// Cached weighted pickers, invalidated on swaps.
    dbe_picker: Option<WeightedAlias>,
    otb_picker: Option<WeightedAlias>,
    sbe_picker: Option<SbeAliasSampler>,
}

impl Fleet {
    /// Builds the fleet: one card per compute slot plus `n_spares`
    /// spares, with susceptibility drawn from `rng`.
    pub fn new<R: Rng + ?Sized>(n_spares: usize, rng: &mut R) -> Self {
        let n_cards = COMPUTE_NODES + n_spares;
        let cards: Vec<GpuCard> = (0..n_cards as u32)
            .map(|i| GpuCard::new(CardSerial(i)))
            .collect();
        let slot_card: Vec<u32> = (0..COMPUTE_NODES as u32).collect();
        let mut card_slot: Vec<Option<u32>> = (0..COMPUTE_NODES as u32).map(Some).collect();
        card_slot.extend(std::iter::repeat(None).take(n_spares));
        let spares: Vec<u32> = (COMPUTE_NODES as u32..n_cards as u32).collect();
        let susceptibility = CardSusceptibility::generate(n_cards, rng);
        Fleet {
            cards,
            slot_card,
            card_slot,
            spares,
            susceptibility,
            thermal: ThermalModel::default(),
            otb_done: vec![false; n_cards],
            dbe_picker: None,
            otb_picker: None,
            sbe_picker: None,
        }
    }

    /// Number of cards ever owned.
    pub fn n_cards(&self) -> usize {
        self.cards.len()
    }

    /// Remaining spare cards.
    pub fn n_spares(&self) -> usize {
        self.spares.len()
    }

    /// Card id in `slot`.
    pub fn card_at_slot(&self, slot: u32) -> u32 {
        self.slot_card[slot as usize]
    }

    /// Current slot of `card`, if in production.
    pub fn slot_of_card(&self, card: u32) -> Option<u32> {
        self.card_slot[card as usize]
    }

    /// The node hosting `slot`.
    pub fn node_of_slot(&self, slot: u32) -> NodeId {
        gpu_index_to_node(slot)
    }

    /// Immutable card access.
    pub fn card(&self, card: u32) -> &GpuCard {
        &self.cards[card as usize]
    }

    /// Mutable card access.
    pub fn card_mut(&mut self, card: u32) -> &mut GpuCard {
        &mut self.cards[card as usize]
    }

    /// Marks a card's off-the-bus defect as expressed (and re-soldered).
    pub fn mark_otb_done(&mut self, card: u32) {
        self.otb_done[card as usize] = true;
        self.otb_picker = None;
    }

    /// Swaps the card in `slot` out to the spare pool and installs a
    /// spare. Returns `(old_card, new_card)`, or `None` when no spares
    /// remain.
    pub fn swap_out(&mut self, slot: u32) -> Option<(u32, u32)> {
        let new_card = self.spares.pop()?;
        let old_card = self.slot_card[slot as usize];
        self.slot_card[slot as usize] = new_card;
        self.card_slot[old_card as usize] = None;
        self.card_slot[new_card as usize] = Some(slot);
        self.cards[old_card as usize].move_to_hot_spare();
        // Placement-sensitive pickers are stale now.
        self.dbe_picker = None;
        self.otb_picker = None;
        self.sbe_picker = None;
        Some((old_card, new_card))
    }

    /// Picks the slot struck by a DBE: thermal acceleration of the slot
    /// (raised to the DBE class's stronger thermal exponent) × the
    /// resident card's DBE proneness.
    pub fn pick_dbe_slot<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u32 {
        if self.dbe_picker.is_none() {
            let weights: Vec<f64> = (0..COMPUTE_NODES as u32)
                .map(|slot| {
                    let node = gpu_index_to_node(slot);
                    let card = self.slot_card[slot as usize];
                    self.thermal
                        .acceleration(node)
                        .powf(titan_faults::calibration::DBE_THERMAL_EXPONENT)
                        * self.susceptibility.dbe_weight(card as usize)
                })
                .collect();
            self.dbe_picker = Some(WeightedAlias::new(&weights).expect("positive weights"));
        }
        self.dbe_picker.as_ref().expect("just built").sample(rng) as u32
    }

    /// Picks the slot struck by an off-the-bus failure: thermal only
    /// (integration defect, not card electronics), excluding cards whose
    /// defect already expressed.
    pub fn pick_otb_slot<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u32> {
        if self.otb_picker.is_none() {
            let weights: Vec<f64> = (0..COMPUTE_NODES as u32)
                .map(|slot| {
                    let card = self.slot_card[slot as usize];
                    if self.otb_done[card as usize] {
                        0.0
                    } else {
                        self.thermal.acceleration(gpu_index_to_node(slot))
                    }
                })
                .collect();
            self.otb_picker = WeightedAlias::new(&weights);
        }
        self.otb_picker.as_ref().map(|p| p.sample(rng) as u32)
    }

    /// Picks the card struck by an SBE (susceptibility travels with the
    /// card, wherever it sits). `None` when no card is susceptible.
    pub fn pick_sbe_card<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u32> {
        if self.sbe_picker.is_none() {
            self.sbe_picker = SbeAliasSampler::new(&self.susceptibility);
        }
        self.sbe_picker.as_ref().map(|p| p.sample(rng) as u32)
    }

    /// Captures placement, spare pool, and per-card wear for a
    /// checkpoint.
    pub(crate) fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            cards: self.cards.clone(),
            slot_card: self.slot_card.clone(),
            card_slot: self.card_slot.clone(),
            spares: self.spares.clone(),
            otb_done: self.otb_done.clone(),
        }
    }

    /// Overlays a snapshot onto a freshly generated fleet. The cached
    /// pickers are dropped (they are deterministic functions of the
    /// overlaid placement state and rebuild lazily), and susceptibility
    /// / thermal stay as generated — they are pure functions of the
    /// seed, never mutated.
    pub(crate) fn restore(&mut self, s: &FleetSnapshot) {
        self.cards = s.cards.clone();
        self.slot_card = s.slot_card.clone();
        self.card_slot = s.card_slot.clone();
        self.spares = s.spares.clone();
        self.otb_done = s.otb_done.clone();
        self.dbe_picker = None;
        self.otb_picker = None;
        self.sbe_picker = None;
    }
}

/// Portable [`Fleet`] state for checkpointing: everything the event loop
/// mutates. Susceptibility, the thermal model, and the cached alias
/// samplers are deliberately absent — the first two are regenerated from
/// the seed by [`Fleet::new`], and the samplers are lazy caches over the
/// fields captured here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct FleetSnapshot {
    cards: Vec<GpuCard>,
    slot_card: Vec<u32>,
    card_slot: Vec<Option<u32>>,
    spares: Vec<u32>,
    otb_done: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fleet() -> Fleet {
        let mut rng = StdRng::seed_from_u64(11);
        Fleet::new(8, &mut rng)
    }

    #[test]
    fn initial_placement_is_identity() {
        let f = fleet();
        assert_eq!(f.n_cards(), COMPUTE_NODES + 8);
        assert_eq!(f.n_spares(), 8);
        assert_eq!(f.card_at_slot(0), 0);
        assert_eq!(f.slot_of_card(0), Some(0));
        assert_eq!(f.slot_of_card(COMPUTE_NODES as u32), None); // spare
    }

    #[test]
    fn swap_moves_card_to_hot_spare() {
        let mut f = fleet();
        let (old, new) = f.swap_out(100).unwrap();
        assert_eq!(old, 100);
        assert_eq!(f.card_at_slot(100), new);
        assert_eq!(f.slot_of_card(old), None);
        assert_eq!(f.slot_of_card(new), Some(100));
        assert!(!f.card(old).in_production());
        assert_eq!(f.n_spares(), 7);
    }

    #[test]
    fn swap_exhausts_spares() {
        let mut f = fleet();
        for slot in 0..8 {
            assert!(f.swap_out(slot).is_some());
        }
        assert!(f.swap_out(9).is_none());
    }

    #[test]
    fn dbe_pick_prefers_top_cage() {
        let mut f = fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let mut cage_counts = [0u32; 3];
        for _ in 0..30_000 {
            let slot = f.pick_dbe_slot(&mut rng);
            let cage = f.node_of_slot(slot).location().cage;
            cage_counts[cage as usize] += 1;
        }
        assert!(
            cage_counts[2] > cage_counts[0],
            "top cage must dominate: {cage_counts:?}"
        );
        // Roughly the boosted thermal ratio (~1.9x), not wildly more.
        let ratio = cage_counts[2] as f64 / cage_counts[0] as f64;
        assert!((1.4..2.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn otb_pick_excludes_done_cards() {
        let mut f = fleet();
        let mut rng = StdRng::seed_from_u64(9);
        let slot = f.pick_otb_slot(&mut rng).unwrap();
        let card = f.card_at_slot(slot);
        f.mark_otb_done(card);
        for _ in 0..5_000 {
            let s = f.pick_otb_slot(&mut rng).unwrap();
            assert_ne!(f.card_at_slot(s), card, "re-picked a soldered card");
        }
    }

    #[test]
    fn sbe_pick_only_susceptible() {
        let mut f = fleet();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5_000 {
            let c = f.pick_sbe_card(&mut rng).unwrap();
            assert!(f.susceptibility.sbe_weight(c as usize) > 0.0);
        }
    }

    #[test]
    fn swap_invalidates_pickers() {
        let mut f = fleet();
        let mut rng = StdRng::seed_from_u64(7);
        let _ = f.pick_dbe_slot(&mut rng);
        assert!(f.dbe_picker.is_some());
        f.swap_out(0).unwrap();
        assert!(f.dbe_picker.is_none());
        assert!(f.sbe_picker.is_none());
    }
}
