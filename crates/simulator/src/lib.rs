//! # titan-sim
//!
//! The discrete-event fleet simulator: 18,688 GPU nodes over the study
//! window, Jun 2013 – Feb 2015.
//!
//! This is the substrate that replaces the physical Titan. It composes
//! every other substrate crate:
//!
//! ```text
//!  titan-workload ──► job schedule ──┐
//!  titan-faults  ──► fault drafts ──┤
//!                                    ▼
//!                              [ engine ]   (deterministic event loop)
//!                                    │
//!          ┌─────────────┬──────────┼──────────────┐
//!          ▼             ▼          ▼              ▼
//!   console events   job logs   nvidia-smi    ground truth
//!   (titan-conlog)              snapshots     (tests only —
//!                               (titan-nvsmi)  never analyzed)
//! ```
//!
//! Faithfulness rules enforced here:
//!
//! * SBEs never reach the console log; they are only visible through
//!   nvidia-smi snapshot diffs (paper §2.2).
//! * A DBE crashes the application and reboots the node; with calibrated
//!   probability the InfoROM write is lost first (Observation 2).
//! * Application XIDs replicate across every node of the job within five
//!   seconds (Observation 7).
//! * Page retirement only exists after the Jan 2014 driver (Fig. 6) and
//!   follows the 1-DBE / 2-SBE rule (§3.1).
//! * Cards that hit the DBE threshold are pulled to the hot-spare cluster
//!   at the next maintenance window (§3.1's operational policy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod fleet;
pub mod hotspare;
pub mod output;

pub use config::SimConfig;
pub use engine::{EngineSnapshot, EngineState, Simulator};
pub use fleet::Fleet;
pub use hotspare::{stress_test, StressOutcome, StressTestConfig};
pub use output::{GroundTruth, SimOutput};
