//! Simulation outputs: the four observable data sources the analysis
//! consumes, plus ground truth for verification only.

use serde::{Deserialize, Serialize};
use titan_conlog::time::SimTime;
use titan_conlog::{format, Aprun, ConsoleEvent, JobRecord};
use titan_gpu::pages::RetirementCause;
use titan_gpu::MemoryStructure;
use titan_nvsmi::{GpuSnapshot, JobEccDelta};
use titan_topology::NodeId;

/// Ground truth about one injected DBE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbeTruth {
    /// Strike time.
    pub time: SimTime,
    /// Node struck.
    pub node: NodeId,
    /// Card struck.
    pub card: u32,
    /// Structure struck.
    pub structure: MemoryStructure,
    /// Whether NVML persisted it.
    pub persisted: bool,
    /// Job crashed, if any.
    pub crashed_apid: Option<u64>,
}

/// Ground truth about one off-the-bus failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OtbTruth {
    /// Failure time.
    pub time: SimTime,
    /// Node.
    pub node: NodeId,
    /// Card.
    pub card: u32,
}

/// Ground truth about one page retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetireTruth {
    /// When the retirement condition was met.
    pub time: SimTime,
    /// Card.
    pub card: u32,
    /// Why.
    pub cause: RetirementCause,
    /// Whether a console record (XID 63) was emitted — the paper found 17
    /// DBE pairs with *no* retirement record between them.
    pub emitted: bool,
}

/// Ground truth about one hot-spare swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapTruth {
    /// Swap execution time.
    pub time: SimTime,
    /// Slot serviced.
    pub slot: u32,
    /// Card removed.
    pub old_card: u32,
    /// Card installed.
    pub new_card: u32,
    /// Whether the removed card subsequently failed hot-spare stress
    /// testing and was returned to the vendor.
    pub returned_to_vendor: bool,
}

/// Everything the simulator knows that the analysis must *not* see.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Injected DBEs.
    pub dbe: Vec<DbeTruth>,
    /// Off-the-bus failures.
    pub otb: Vec<OtbTruth>,
    /// Page retirements.
    pub retirements: Vec<RetireTruth>,
    /// Hot-spare swaps.
    pub swaps: Vec<SwapTruth>,
    /// Accepted SBEs per card id.
    pub sbe_by_card: Vec<u64>,
    /// Accepted SBEs per slot (at strike-time placement).
    pub sbe_by_slot: Vec<u64>,
    /// Accepted SBEs per ECC-counted structure.
    pub sbe_by_structure: Vec<u64>,
    /// SBE drafts rejected by activity thinning.
    pub sbe_rejected: u64,
    /// Software incidents that found no running job to strike.
    pub software_skipped: u64,
}

/// The observable outputs plus ground truth.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimOutput {
    /// Console events, sorted by time (SEC-filtered critical events).
    pub console: Vec<ConsoleEvent>,
    /// Completed batch job records.
    pub jobs: Vec<JobRecord>,
    /// Per-job SBE deltas from the nvidia-smi prologue/epilogue framework.
    pub job_sbe: Vec<JobEccDelta>,
    /// Aprun segments inside each completed job (the ALPS log).
    pub apruns: Vec<Aprun>,
    /// End-of-study nvidia-smi snapshot of every production slot.
    pub final_snapshots: Vec<GpuSnapshot>,
    /// Jobs the scheduler never started.
    pub schedule_dropped: usize,
    /// Verification-only ground truth.
    pub truth: GroundTruth,
}

impl SimOutput {
    /// Renders the console log as text — the exact artifact the paper's
    /// pipeline parsed on the SMW.
    pub fn render_console_log(&self) -> String {
        let mut s = String::with_capacity(self.console.len() * 96);
        for ev in &self.console {
            s.push_str(&format::render_line(ev));
            s.push('\n');
        }
        s
    }

    /// Renders the job log.
    pub fn render_job_log(&self) -> String {
        let mut s = String::with_capacity(self.jobs.len() * 160);
        for j in &self.jobs {
            s.push_str(&j.render());
            s.push('\n');
        }
        s
    }

    /// Renders the aprun (ALPS) log.
    pub fn render_aprun_log(&self) -> String {
        let mut s = String::with_capacity(self.apruns.len() * 48);
        for a in &self.apruns {
            s.push_str(&a.render());
            s.push('\n');
        }
        s
    }

    /// Console events of one error kind.
    pub fn console_of_kind(&self, kind: titan_gpu::GpuErrorKind) -> Vec<&ConsoleEvent> {
        self.console.iter().filter(|e| e.kind == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::GpuErrorKind;

    #[test]
    fn render_roundtrip_empty() {
        let out = SimOutput::default();
        assert_eq!(out.render_console_log(), "");
        assert_eq!(out.render_job_log(), "");
    }

    #[test]
    fn console_render_parses_back() {
        let mut out = SimOutput::default();
        out.console.push(ConsoleEvent {
            time: 100,
            node: NodeId(5),
            kind: GpuErrorKind::DoubleBitError,
            structure: Some(MemoryStructure::DeviceMemory),
            page: Some(3),
            apid: Some(77),
        });
        let text = out.render_console_log();
        let (events, stats) = format::parse_stream(&text);
        assert_eq!(stats.skipped, 0);
        assert_eq!(events, out.console);
    }
}
