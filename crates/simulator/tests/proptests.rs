//! Property-based tests for the fleet simulator: whatever the seed and
//! window, the structural invariants of the output hold.
//!
//! Windows are kept short (3–10 days) so the whole suite stays fast; the
//! invariants do not depend on window length.

use proptest::prelude::*;
use titan_gpu::GpuErrorKind;
use titan_sim::{SimConfig, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Console events are time-sorted, in-window, and SBE-free; job
    /// records are self-consistent; snapshot totals never exceed truth.
    #[test]
    fn structural_invariants(seed in 0u64..1_000_000, days in 3u64..10) {
        let out = Simulator::new(SimConfig::quick(days, seed))
            .expect("valid config")
            .run();
        let window = days * 86_400;

        // Console ordering and bounds.
        prop_assert!(out.console.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(out
            .console
            .iter()
            .all(|e| e.time <= window + 5));
        prop_assert!(out
            .console
            .iter()
            .all(|e| e.kind != GpuErrorKind::SingleBitError));

        // Jobs: unique apids, wall within request, nodes nonempty.
        let mut apids: Vec<u64> = out.jobs.iter().map(|j| j.apid).collect();
        apids.sort_unstable();
        let n = apids.len();
        apids.dedup();
        prop_assert_eq!(apids.len(), n);
        for j in &out.jobs {
            prop_assert!(j.end >= j.start);
            prop_assert!(!j.nodes.is_empty());
            prop_assert!(j.gpu_core_hours >= 0.0);
        }

        // One SBE delta per job record.
        prop_assert_eq!(out.jobs.len(), out.job_sbe.len());

        // Aprun segments sit inside their jobs.
        let by_apid: std::collections::HashMap<u64, (u64, u64)> = out
            .jobs
            .iter()
            .map(|j| (j.apid, (j.start, j.end)))
            .collect();
        for a in &out.apruns {
            let (s, e) = by_apid[&a.apid];
            prop_assert!(a.start >= s && a.end <= e, "aprun outside job");
        }

        // Snapshots never report more SBEs than were injected.
        let snap_total: u64 = out.final_snapshots.iter().map(|s| s.total_sbe()).sum();
        let truth_total: u64 = out.truth.sbe_by_card.iter().sum();
        prop_assert!(snap_total <= truth_total);

        // DBE truth and console agree exactly.
        let console_dbe = out
            .console
            .iter()
            .filter(|e| e.kind == GpuErrorKind::DoubleBitError)
            .count();
        prop_assert_eq!(console_dbe, out.truth.dbe.len());
    }

    /// The log round trip is lossless for arbitrary seeds.
    #[test]
    fn text_roundtrip_lossless(seed in 0u64..1_000_000) {
        let out = Simulator::new(SimConfig::quick(5, seed))
            .expect("valid config")
            .run();
        let (events, stats) =
            titan_conlog::format::parse_stream(&out.render_console_log());
        prop_assert_eq!(stats.skipped, 0);
        prop_assert_eq!(&events, &out.console);
        for line in out.render_job_log().lines() {
            prop_assert!(titan_conlog::JobRecord::parse(line).is_ok());
        }
        for line in out.render_aprun_log().lines() {
            prop_assert!(titan_conlog::Aprun::parse(line).is_some());
        }
    }
}
