//! Same seed, same fleet — byte for byte. The entire study rests on the
//! simulator being a pure function of its seed (DETERMINISM.md); this
//! test is the executable form of that claim, and the titan-lint D rules
//! exist so this test does not rot.

use titan_sim::{SimConfig, Simulator};

fn run(seed: u64) -> (String, String, String, String) {
    let config = SimConfig::quick(30, seed);
    config.validate().expect("quick config is valid");
    let sim = Simulator::new(config).expect("simulator builds");
    let out = sim.run();
    (
        serde_json::to_string(&out).expect("output serializes"),
        out.render_console_log(),
        out.render_job_log(),
        out.render_aprun_log(),
    )
}

#[test]
fn same_seed_is_byte_identical() {
    let a = run(0xDEAD_BEEF);
    let b = run(0xDEAD_BEEF);
    assert_eq!(a.0, b.0, "serialized SimOutput diverged between runs");
    assert_eq!(a.1, b.1, "console log diverged between runs");
    assert_eq!(a.2, b.2, "job log diverged between runs");
    assert_eq!(a.3, b.3, "aprun log diverged between runs");
}

#[test]
fn same_seed_is_byte_identical_across_fresh_processes_proxy() {
    // A second construction path: build the simulator twice from two
    // separately-constructed configs (not a clone), so shared state in
    // config construction would be caught too.
    let a = {
        let sim = Simulator::new(SimConfig::quick(14, 7)).unwrap();
        serde_json::to_string(&sim.run()).unwrap()
    };
    let b = {
        let sim = Simulator::new(SimConfig::quick(14, 7)).unwrap();
        serde_json::to_string(&sim.run()).unwrap()
    };
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    let a = run(1);
    let b = run(2);
    // The serialized output embeds every event; two 30-day fleet runs
    // with different master seeds cannot coincide.
    assert_ne!(a.0, b.0, "different seeds produced identical output");
}
