//! Calibration constants, each pinned to the paper sentence it encodes.
//!
//! These are *inputs to the generators*, never read by the analysis — the
//! analysis must re-derive the observable consequences from logs.

use titan_conlog::time::{SimTime, StudyCalendar};

// ---------------------------------------------------------------------------
// Double bit errors (§3.1, Observation 1 & 3)
// ---------------------------------------------------------------------------

/// "On average, one DBE occurs approximately every seven days (approx.
/// 160 hours)." Fleet-wide DBE rate, events per second.
pub const DBE_FLEET_RATE_PER_SEC: f64 = 1.0 / (160.0 * 3600.0);

/// "86% of double bit errors happen in the device memory."
pub const DBE_DEVICE_MEMORY_FRACTION: f64 = 0.86;

/// "the remaining 14% of the double bit errors happen in the register
/// files only."
pub const DBE_REGISTER_FILE_FRACTION: f64 = 0.14;

/// Thermal exponent for DBE placement: DBE-prone DRAM retention faults
/// accelerate faster with temperature than the baseline error classes,
/// so the slot picker raises the thermal acceleration to this power.
/// With the default thermal model this puts the top cage at ~1.9x the
/// bottom cage — enough for Fig. 3(b)'s ordering to be stable at ~90
/// fleet DBEs rather than a coin flip.
pub const DBE_THERMAL_EXPONENT: f64 = 1.9;

/// Vendor-datasheet per-device MTBF for uncorrectable errors, hours.
/// The paper: "the estimated MTBF based on the vendor datasheet would be
/// significantly lower for our system compared to what our field data
/// indicates" — i.e. the datasheet is pessimistic. One million device
/// hours implies a fleet MTBF of 1e6 / 18,688 ≈ 54 h, well under the
/// observed ≈160 h.
pub const VENDOR_DATASHEET_DEVICE_MTBF_HOURS: f64 = 1.0e6;

/// Fraction of cards that are DBE "lemons" — pathologically failure-
/// prone units the operators' pull-after-threshold policy exists for.
/// With the multiplier below, lemons absorb ~13% of fleet DBEs, so one
/// or two cards cross the 2-DBE pull threshold per study window — the
/// observed cadence of hot-spare pulls.
pub const DBE_LEMON_FRACTION: f64 = 0.003;

/// DBE-rate multiplier of a lemon card over the fleet bulk.
pub const DBE_LEMON_MULTIPLIER: f64 = 50.0;

/// Probability that the node dies before NVML persists the DBE in the
/// InfoROM — the Observation 2 undercount ("Nvidia-smi output reports
/// fewer number of DBEs than our console log filtering method … a double
/// bit error causes the node to shut down before the DBE incident is
/// logged"). The paper does not give the ratio; 0.35 produces a clearly
/// visible console-vs-nvsmi gap.
pub const DBE_INFOROM_LOSS_PROB: f64 = 0.35;

// ---------------------------------------------------------------------------
// Off the bus (§3.1, Observation 4)
// ---------------------------------------------------------------------------

/// "Off the Bus errors only dominant the period before December 2013. A
/// system integration issue with the GPU cards was identified, and
/// subsequently resolved by soldering the cards."
pub fn otb_fix_date() -> SimTime {
    StudyCalendar.date(2013, 12, 1).expect("in window")
}

/// Fleet OTB rate during the integration-defect epidemic, events/second.
/// Sized to make OTB the dominant pre-Dec'13 failure mode (≈ 2 per week).
pub const OTB_EPIDEMIC_RATE_PER_SEC: f64 = 2.0 / (7.0 * 86_400.0);

/// Residual OTB rate after the soldering campaign ("these errors have
/// almost become negligible").
pub const OTB_RESIDUAL_RATE_PER_SEC: f64 = 0.02 / (7.0 * 86_400.0);

/// "these errors were mostly clustered": mean extra events arriving in
/// the 24 h following an epidemic OTB event.
pub const OTB_CLUSTER_MEAN_CHILDREN: f64 = 1.5;

// ---------------------------------------------------------------------------
// ECC page retirement (§3.1, Observation 5, Fig. 6 & 8)
// ---------------------------------------------------------------------------

/// "it has started appearing only since Jan'2014" — the driver that
/// introduced XID 63/64.
pub fn retirement_xid_introduced() -> SimTime {
    StudyCalendar.date(2014, 1, 1).expect("in window")
}

/// "18 page retirement happens within 10 minutes of a DBE occurrence":
/// mean delay of the retirement *recording* after its parent DBE, seconds.
pub const RETIRE_AFTER_DBE_MEAN_DELAY_SEC: f64 = 150.0;

/// "while only 1 event happened between 10 minutes and 6 hours":
/// probability the recording is delayed past the prompt path (driver
/// reload races).
pub const RETIRE_DELAYED_PROB: f64 = 0.05;

/// "there were 17 instances when no ECC page retirement happened between
/// two successive DBEs": probability the recording never surfaces in the
/// console log at all.
pub const RETIRE_MISSING_PROB: f64 = 0.45;

// ---------------------------------------------------------------------------
// Single bit errors (§3.3 & §4, Observations 10–12)
// ---------------------------------------------------------------------------

/// "we observe SBEs in the order of hundreds per day" — fleet mean,
/// events per day, *including* offender cards.
pub const SBE_FLEET_PER_DAY: f64 = 350.0;

/// "less than 1000 cards have ever experienced a single bit error (less
/// than 5% of the whole system)". Fraction of cards with nonzero SBE
/// susceptibility.
pub const SBE_SUSCEPTIBLE_FRACTION: f64 = 0.048;

/// Pareto tail index of per-card SBE rates among susceptible cards.
/// ≈1.1 concentrates roughly half the fleet SBE volume in the top-10
/// cards, reproducing Fig. 14's skew collapse when offenders are removed.
pub const SBE_PARETO_ALPHA: f64 = 1.05;

/// "Most of the single bit errors happen in the L2 cache despite its much
/// smaller size than the device memory." Structure mix for SBEs.
pub const SBE_STRUCTURE_MIX: [(titan_gpu::MemoryStructure, f64); 4] = [
    (titan_gpu::MemoryStructure::L2Cache, 0.55),
    (titan_gpu::MemoryStructure::DeviceMemory, 0.30),
    (titan_gpu::MemoryStructure::RegisterFile, 0.10),
    (titan_gpu::MemoryStructure::SharedL1, 0.05),
];

/// SBEs arrive only while a job exercises the GPU; activity coupling
/// exponent linking utilization to SBE exposure (Observation 12 found a
/// monotone but non-linear relationship; 0.8 keeps Spearman ≈ 0.6–0.8 for
/// core-hours while Pearson stays lower).
pub const SBE_ACTIVITY_EXPONENT: f64 = 0.8;

// ---------------------------------------------------------------------------
// Software / firmware XIDs (§3.2, Observation 6, Figs. 9–11)
// ---------------------------------------------------------------------------

/// Driver update that replaced XID 59 with XID 62 for micro-controller
/// halts ("Internal micro-controller halt (old driver error)" vs "new
/// driver error"). Mid-2014 on Titan.
pub fn driver_update_date() -> SimTime {
    StudyCalendar.date(2014, 6, 1).expect("in window")
}

/// XID 13 (graphics engine exception) *incident* rate — incidents are
/// job-level; the simulator replicates each across the job's nodes.
/// "These errors often occur in bursts."
pub const XID13_INCIDENT_PER_DAY: f64 = 1.1;

/// Deadline-season multiplier for XID 13 ("sudden rise in such errors may
/// also correlate with domain scientists' project or paper deadlines").
pub const XID13_DEADLINE_MULTIPLIER: f64 = 4.0;

/// XID 31 (GPU memory page fault) incidents per day — frequent, user-code.
pub const XID31_INCIDENT_PER_DAY: f64 = 0.7;

/// XID 43 (GPU stopped processing) incidents per day — "certain driver
/// related errors … occur more frequently".
pub const XID43_INCIDENT_PER_DAY: f64 = 0.35;

/// XID 44 (context-switch fault) incidents per day.
pub const XID44_INCIDENT_PER_DAY: f64 = 0.25;

/// XID 45 (preemptive cleanup) spontaneous incidents per day (it mostly
/// appears as a *child* of other errors via the cascade model).
pub const XID45_INCIDENT_PER_DAY: f64 = 0.15;

/// Micro-controller halt rate (XID 59 before the driver update, XID 62
/// after), incidents per day. "Such as micro-controller halts … occur
/// more frequently."
pub const UCHALT_INCIDENT_PER_DAY: f64 = 0.30;

/// Total-count targets for the rare XIDs: "invalid or corrupted push
/// buffer stream and driver firmware error have occurred less than ten
/// times during the production run".
pub const XID32_TOTAL_TARGET: f64 = 6.0;
/// See [`XID32_TOTAL_TARGET`].
pub const XID38_TOTAL_TARGET: f64 = 4.0;
/// "Some driver related errors do not occur at all (e.g., XID 42)."
pub const XID42_TOTAL_TARGET: f64 = 0.0;
/// Display engine / video memory interface / video processor errors are
/// rare singletons in the window.
pub const XID56_TOTAL_TARGET: f64 = 2.0;
/// See [`XID56_TOTAL_TARGET`].
pub const XID57_TOTAL_TARGET: f64 = 3.0;
/// See [`XID56_TOTAL_TARGET`].
pub const XID58_TOTAL_TARGET: f64 = 3.0;
/// See [`XID56_TOTAL_TARGET`].
pub const XID65_TOTAL_TARGET: f64 = 2.0;

/// "we observed that the errors appear on all the nodes allocated to the
/// job within five seconds": max skew between the first and last node
/// reporting an application XID incident.
pub const APP_XID_NODE_SPREAD_SEC: u64 = 5;

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// Card-pull policy threshold: cards are moved to the hot-spare cluster
/// after this many DBEs ("after encountering a threshold number of
/// DBEs"); OLCF pulled aggressively, at the second DBE.
pub const CARD_PULL_DBE_THRESHOLD: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use titan_conlog::time::STUDY_SECONDS;

    #[test]
    fn dbe_rate_yields_weekly_mtbf() {
        let expected_total = DBE_FLEET_RATE_PER_SEC * STUDY_SECONDS as f64;
        // 638 days at one-per-160h ≈ 95.7 events.
        assert!((90.0..101.0).contains(&expected_total), "{expected_total}");
    }

    #[test]
    fn dbe_structure_fractions_sum_to_one() {
        assert!((DBE_DEVICE_MEMORY_FRACTION + DBE_REGISTER_FILE_FRACTION - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sbe_mix_sums_to_one_and_l2_dominates() {
        let sum: f64 = SBE_STRUCTURE_MIX.iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let (top, _) = SBE_STRUCTURE_MIX
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(*top, titan_gpu::MemoryStructure::L2Cache);
    }

    #[test]
    fn epoch_dates_ordered() {
        assert!(otb_fix_date() < retirement_xid_introduced());
        assert!(retirement_xid_introduced() < driver_update_date());
        assert!(driver_update_date() < STUDY_SECONDS);
    }

    #[test]
    fn otb_epidemic_dwarfs_residual() {
        assert!(OTB_EPIDEMIC_RATE_PER_SEC > 50.0 * OTB_RESIDUAL_RATE_PER_SEC);
    }

    #[test]
    fn rare_xids_are_rare() {
        assert!(XID32_TOTAL_TARGET < 10.0);
        assert!(XID38_TOTAL_TARGET < 10.0);
        assert_eq!(XID42_TOTAL_TARGET, 0.0);
    }
}
