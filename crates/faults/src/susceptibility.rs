//! Per-card susceptibility: the "offender card" phenomenon.
//!
//! Observation 10: "Single bit errors show a highly skewed distribution
//! … some cards experience significantly more single bit errors than
//! others … less than 1000 cards have ever experienced a single bit error
//! (less than 5% of the whole system) … It appears that some cards are
//! inherently more prone to SBEs rather than due to their location."
//!
//! The model: each card draws a *static* SBE rate multiplier at
//! manufacture — zero for ~95.2% of cards, Pareto-tailed for the
//! susceptible minority. DBE proneness gets a mild lognormal spread (the
//! paper notes "some GPU cards may inherently be more prone to DBEs even
//! if they are situated in the lower cages"). Crucially, susceptibility
//! is assigned independently of slot position, which is what makes the
//! *distinct-cards* cage distribution uniform (Fig. 15(b)) even while raw
//! SBE counts are cage-skewed by the offenders' accidental placement.

use rand::Rng;
use titan_stats::{LogNormal, Pareto};

use crate::calibration::{
    DBE_LEMON_FRACTION, DBE_LEMON_MULTIPLIER, SBE_PARETO_ALPHA, SBE_SUSCEPTIBLE_FRACTION,
};

/// Static per-card fault proneness, drawn once at fleet build.
#[derive(Debug, Clone, PartialEq)]
pub struct CardSusceptibility {
    /// SBE rate multiplier per card (0 = never sees an SBE).
    sbe_weight: Vec<f64>,
    /// DBE rate multiplier per card (mild spread around 1).
    dbe_weight: Vec<f64>,
}

impl CardSusceptibility {
    /// Draws susceptibility for `n_cards` cards.
    pub fn generate<R: Rng + ?Sized>(n_cards: usize, rng: &mut R) -> Self {
        let pareto = Pareto::new(1.0, SBE_PARETO_ALPHA).expect("valid calibration");
        let dbe_spread = LogNormal::new(0.0, 0.4).expect("valid params");
        let mut sbe_weight = Vec::with_capacity(n_cards);
        let mut dbe_weight = Vec::with_capacity(n_cards);
        for _ in 0..n_cards {
            let w = if rng.gen::<f64>() < SBE_SUSCEPTIBLE_FRACTION {
                pareto.sample(rng)
            } else {
                0.0
            };
            sbe_weight.push(w);
            // Most cards sit in a mild lognormal spread; a small "lemon"
            // population is pathologically DBE-prone — these are the
            // cards that hit the operators' pull threshold and then
            // reproduce errors in hot-spare stress testing (§3.1).
            let mut dw = dbe_spread.sample(rng);
            if rng.gen::<f64>() < DBE_LEMON_FRACTION {
                dw *= DBE_LEMON_MULTIPLIER;
            }
            dbe_weight.push(dw);
        }
        CardSusceptibility {
            sbe_weight,
            dbe_weight,
        }
    }

    /// Number of cards.
    pub fn len(&self) -> usize {
        self.sbe_weight.len()
    }

    /// True when built for zero cards.
    pub fn is_empty(&self) -> bool {
        self.sbe_weight.is_empty()
    }

    /// SBE weight of card `i` (0 for immune cards).
    pub fn sbe_weight(&self, i: usize) -> f64 {
        self.sbe_weight[i]
    }

    /// DBE weight of card `i`.
    pub fn dbe_weight(&self, i: usize) -> f64 {
        self.dbe_weight[i]
    }

    /// All SBE weights.
    pub fn sbe_weights(&self) -> &[f64] {
        &self.sbe_weight
    }

    /// Sum of SBE weights (the normalizer when distributing fleet-level
    /// SBE volume across cards).
    pub fn total_sbe_weight(&self) -> f64 {
        self.sbe_weight.iter().sum()
    }

    /// Sum of DBE weights.
    pub fn total_dbe_weight(&self) -> f64 {
        self.dbe_weight.iter().sum()
    }

    /// Indices of susceptible (nonzero-SBE) cards.
    pub fn susceptible_cards(&self) -> Vec<usize> {
        self.sbe_weight
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Samples a card index proportional to SBE weight. Returns `None`
    /// when no card is susceptible. O(n) walk — callers in hot paths
    /// should use [`SbeAliasSampler`] instead.
    pub fn sample_sbe_card<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total_sbe_weight();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.gen::<f64>() * total;
        for (i, &w) in self.sbe_weight.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return Some(i);
            }
        }
        Some(self.sbe_weight.len() - 1)
    }
}

/// O(1) weighted card sampler for the SBE hot path: the fleet draws
/// hundreds of SBE locations per simulated day. Thin wrapper over
/// [`titan_stats::WeightedAlias`] that fixes the weight vector to the
/// cards' SBE susceptibility.
#[derive(Debug, Clone)]
pub struct SbeAliasSampler {
    table: titan_stats::WeightedAlias,
}

impl SbeAliasSampler {
    /// Builds the table from nonzero weights. Returns `None` when no card
    /// is susceptible.
    pub fn new(susceptibility: &CardSusceptibility) -> Option<Self> {
        titan_stats::WeightedAlias::new(susceptibility.sbe_weights())
            .map(|table| SbeAliasSampler { table })
    }

    /// Draws one card index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: usize) -> CardSusceptibility {
        let mut rng = StdRng::seed_from_u64(314);
        CardSusceptibility::generate(n, &mut rng)
    }

    #[test]
    fn susceptible_fraction_near_five_percent() {
        let s = build(18_688);
        let k = s.susceptible_cards().len();
        // Paper: < 1000 cards, < 5% of the system.
        assert!(k < 1000, "susceptible cards {k}");
        assert!(k > 600, "susceptible cards {k} suspiciously few");
    }

    #[test]
    fn offenders_dominate_weight() {
        let s = build(18_688);
        let mut w: Vec<f64> = s.sbe_weights().to_vec();
        w.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = w.iter().sum();
        let top10: f64 = w[..10].iter().sum();
        let top50: f64 = w[..50].iter().sum();
        assert!(top10 / total > 0.15, "top-10 share {}", top10 / total);
        assert!(top50 / total > 0.4, "top-50 share {}", top50 / total);
    }

    #[test]
    fn dbe_weights_mild_spread_plus_lemons() {
        let s = build(10_000);
        assert!(s.dbe_weight(0) > 0.0);
        // The bulk sits near LogNormal(0, 0.4): median ≈ 1.
        let mut w: Vec<f64> = (0..s.len()).map(|i| s.dbe_weight(i)).collect();
        w.sort_by(|a, b| a.total_cmp(b));
        let median = w[w.len() / 2];
        assert!((median - 1.0).abs() < 0.1, "median {median}");
        // A small lemon tail exists, far above the bulk.
        let lemons = w.iter().filter(|&&x| x > 10.0).count();
        assert!(lemons > 5 && lemons < 120, "lemons {lemons}");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_cards() {
        let s = build(2_000);
        let mut rng = StdRng::seed_from_u64(1);
        let heavy = {
            let w = s.sbe_weights();
            (0..w.len()).max_by(|&a, &b| w[a].total_cmp(&w[b])).unwrap()
        };
        let mut heavy_hits = 0;
        for _ in 0..5_000 {
            let c = s.sample_sbe_card(&mut rng).unwrap();
            assert!(s.sbe_weight(c) > 0.0, "sampled immune card");
            if c == heavy {
                heavy_hits += 1;
            }
        }
        let expected = 5_000.0 * s.sbe_weight(heavy) / s.total_sbe_weight();
        assert!(
            (heavy_hits as f64) > expected * 0.5,
            "heavy card {heavy_hits} vs expected {expected}"
        );
    }

    #[test]
    fn dbe_normalizer_sums_per_card_weights() {
        let s = build(2_000);
        let total = s.total_dbe_weight();
        assert!(total > 0.0);
        let summed: f64 = (0..2_000).map(|c| s.dbe_weight(c)).sum();
        assert!((total - summed).abs() < 1e-9, "total {total} vs {summed}");
    }

    #[test]
    fn alias_sampler_matches_weights() {
        let s = build(2_000);
        let sampler = SbeAliasSampler::new(&s).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::<usize, u64>::new();
        const N: u64 = 200_000;
        for _ in 0..N {
            *counts.entry(sampler.sample(&mut rng)).or_default() += 1;
        }
        // Compare empirical frequency to weight for the 5 heaviest cards.
        let total_w = s.total_sbe_weight();
        let mut heavy: Vec<usize> = s.susceptible_cards();
        heavy.sort_by(|&a, &b| s.sbe_weight(b).total_cmp(&s.sbe_weight(a)));
        for &c in &heavy[..5] {
            let expected = s.sbe_weight(c) / total_w;
            let got = *counts.get(&c).unwrap_or(&0) as f64 / N as f64;
            assert!(
                (got - expected).abs() < 0.15 * expected + 0.002,
                "card {c}: got {got}, expected {expected}"
            );
        }
        // Immune cards never sampled.
        for (&c, _) in counts.iter() {
            assert!(s.sbe_weight(c) > 0.0);
        }
    }

    #[test]
    fn no_susceptible_cards_edge() {
        // A tiny fleet can have zero susceptible cards by chance; force it
        // with an explicitly empty/immune construction path.
        let s = CardSusceptibility {
            sbe_weight: vec![0.0; 10],
            dbe_weight: vec![1.0; 10],
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert!(s.sample_sbe_card(&mut rng).is_none());
        assert!(SbeAliasSampler::new(&s).is_none());
        assert_eq!(s.susceptible_cards().len(), 0);
    }
}
