//! Software / firmware / application XID incident generators.
//!
//! Observation 6: "User application caused XID errors are bursty in
//! nature and are frequent, while driver related XID errors are not
//! bursty and occur relatively less frequently."
//!
//! An *incident* here is one logical failure; application incidents get
//! replicated across every node of the affected job by the simulator
//! ("user application related errors are reported on all the nodes
//! allocated to the job"), driver incidents strike a single node.

use rand::Rng;
use titan_conlog::time::{SimTime, STUDY_SECONDS};
use titan_gpu::GpuErrorKind;

use crate::calibration;
use crate::process::{BurstProcess, PiecewisePoisson, PoissonProcess};

/// One software/firmware incident draft.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareIncident {
    /// When it begins.
    pub time: SimTime,
    /// XID kind.
    pub kind: GpuErrorKind,
    /// Whether the incident hits a whole job (application errors) or one
    /// node (driver errors).
    pub job_wide: bool,
}

/// Generator for every Table 2 XID stream.
#[derive(Debug, Clone)]
pub struct SoftwareXidModel {
    /// Deadline-season burst process for XID 13.
    xid13: BurstProcess,
    /// Steady driver processes: (kind, rate/sec, job_wide).
    steady: Vec<(GpuErrorKind, f64, bool)>,
    /// The XID 59 → 62 regime change for micro-controller halts.
    uchalt: PiecewisePoisson,
}

impl Default for SoftwareXidModel {
    fn default() -> Self {
        const DAY: f64 = 86_400.0;
        // lint: allow(N1, STUDY_SECONDS = 55,123,200 is exact in f64)
        let per_total = |target: f64| target / STUDY_SECONDS as f64;
        SoftwareXidModel {
            xid13: BurstProcess {
                base_rate_per_sec: calibration::XID13_INCIDENT_PER_DAY / DAY,
                season_multiplier: calibration::XID13_DEADLINE_MULTIPLIER,
                // Quarterly conference deadlines, two hot weeks each.
                season_period: 90 * 86_400,
                season_len: 14 * 86_400,
                // Debug-run repetition: the same buggy binary resubmitted a
                // few times the same day.
                mean_children: 2.0,
                child_span: 12 * 3600,
            },
            steady: vec![
                (
                    GpuErrorKind::GpuMemoryPageFault,
                    calibration::XID31_INCIDENT_PER_DAY / DAY,
                    true, // user-code error: reported across the job
                ),
                (
                    GpuErrorKind::GpuStoppedProcessing,
                    calibration::XID43_INCIDENT_PER_DAY / DAY,
                    false,
                ),
                (
                    GpuErrorKind::ContextSwitchFault,
                    calibration::XID44_INCIDENT_PER_DAY / DAY,
                    false,
                ),
                (
                    GpuErrorKind::PreemptiveCleanup,
                    calibration::XID45_INCIDENT_PER_DAY / DAY,
                    false,
                ),
                (
                    GpuErrorKind::PushBufferStream,
                    per_total(calibration::XID32_TOTAL_TARGET),
                    true,
                ),
                (
                    GpuErrorKind::DriverFirmware,
                    per_total(calibration::XID38_TOTAL_TARGET),
                    false,
                ),
                (
                    GpuErrorKind::VideoProcessorSw,
                    per_total(calibration::XID42_TOTAL_TARGET), // zero: never occurs
                    false,
                ),
                (
                    GpuErrorKind::DisplayEngine,
                    per_total(calibration::XID56_TOTAL_TARGET),
                    false,
                ),
                (
                    GpuErrorKind::VideoMemoryProgramming,
                    per_total(calibration::XID57_TOTAL_TARGET),
                    false,
                ),
                (
                    GpuErrorKind::UnstableVideoMemory,
                    per_total(calibration::XID58_TOTAL_TARGET),
                    false,
                ),
                (
                    GpuErrorKind::VideoProcessorHw,
                    per_total(calibration::XID65_TOTAL_TARGET),
                    false,
                ),
            ],
            uchalt: PiecewisePoisson::new(vec![
                (0, calibration::UCHALT_INCIDENT_PER_DAY / DAY),
                (
                    calibration::driver_update_date(),
                    calibration::UCHALT_INCIDENT_PER_DAY / DAY,
                ),
            ])
            .expect("valid segments"),
        }
    }
}

impl SoftwareXidModel {
    /// Samples every software incident over the study window, sorted by
    /// time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<SoftwareIncident> {
        let mut out = Vec::new();

        // XID 13: bursty, job-wide.
        for (parent, children) in self.xid13.sample_window(0, STUDY_SECONDS, rng) {
            out.push(SoftwareIncident {
                time: parent,
                kind: GpuErrorKind::GraphicsEngineException,
                job_wide: true,
            });
            for c in children {
                out.push(SoftwareIncident {
                    time: c,
                    kind: GpuErrorKind::GraphicsEngineException,
                    job_wide: true,
                });
            }
        }

        // Steady driver / rare streams.
        for &(kind, rate, job_wide) in &self.steady {
            if let Some(p) = PoissonProcess::new(rate) {
                for t in p.sample_window(0, STUDY_SECONDS, rng) {
                    out.push(SoftwareIncident {
                        time: t,
                        kind,
                        job_wide,
                    });
                }
            }
        }

        // Micro-controller halts: kind switches at the driver update.
        for t in self.uchalt.sample_window(0, STUDY_SECONDS, rng) {
            let kind = if t < calibration::driver_update_date() {
                GpuErrorKind::MicrocontrollerHaltOld
            } else {
                GpuErrorKind::MicrocontrollerHaltNew
            };
            out.push(SoftwareIncident {
                time: t,
                kind,
                job_wide: false,
            });
        }

        out.sort_unstable_by_key(|i| i.time);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn incidents() -> Vec<SoftwareIncident> {
        let mut rng = StdRng::seed_from_u64(1234);
        SoftwareXidModel::default().sample(&mut rng)
    }

    fn by_kind(incs: &[SoftwareIncident]) -> HashMap<GpuErrorKind, usize> {
        let mut m = HashMap::new();
        for i in incs {
            *m.entry(i.kind).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn sorted_by_time() {
        let incs = incidents();
        assert!(incs.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(incs.iter().all(|i| i.time < STUDY_SECONDS));
    }

    #[test]
    fn xid42_never_occurs() {
        let m = by_kind(&incidents());
        assert_eq!(m.get(&GpuErrorKind::VideoProcessorSw), None);
    }

    #[test]
    fn rare_xids_under_ten() {
        let m = by_kind(&incidents());
        let x32 = *m.get(&GpuErrorKind::PushBufferStream).unwrap_or(&0);
        let x38 = *m.get(&GpuErrorKind::DriverFirmware).unwrap_or(&0);
        assert!(x32 < 15, "xid32 {x32}");
        assert!(x38 < 12, "xid38 {x38}");
    }

    #[test]
    fn xid13_is_the_most_frequent() {
        let m = by_kind(&incidents());
        let x13 = *m.get(&GpuErrorKind::GraphicsEngineException).unwrap();
        for (&k, &c) in &m {
            if k != GpuErrorKind::GraphicsEngineException {
                assert!(x13 >= c, "xid13 {x13} vs {k:?} {c}");
            }
        }
        // Order of a thousand incidents over 21 months.
        assert!(x13 > 300, "xid13 {x13}");
    }

    #[test]
    fn uchalt_regime_change() {
        let incs = incidents();
        let cut = calibration::driver_update_date();
        for i in &incs {
            match i.kind {
                GpuErrorKind::MicrocontrollerHaltOld => assert!(i.time < cut),
                GpuErrorKind::MicrocontrollerHaltNew => assert!(i.time >= cut),
                _ => {}
            }
        }
        let m = by_kind(&incs);
        assert!(*m.get(&GpuErrorKind::MicrocontrollerHaltOld).unwrap_or(&0) > 10);
        assert!(*m.get(&GpuErrorKind::MicrocontrollerHaltNew).unwrap_or(&0) > 10);
    }

    #[test]
    fn job_wide_split_matches_design() {
        let incs = incidents();
        for i in &incs {
            let expected = matches!(
                i.kind,
                GpuErrorKind::GraphicsEngineException
                    | GpuErrorKind::GpuMemoryPageFault
                    | GpuErrorKind::PushBufferStream
            );
            assert_eq!(i.job_wide, expected, "{:?}", i.kind);
        }
    }

    #[test]
    fn xid13_burstier_than_driver_xids() {
        let incs = incidents();
        let t13: Vec<u64> = incs
            .iter()
            .filter(|i| i.kind == GpuErrorKind::GraphicsEngineException)
            .map(|i| i.time)
            .collect();
        let t43: Vec<u64> = incs
            .iter()
            .filter(|i| i.kind == GpuErrorKind::GpuStoppedProcessing)
            .map(|i| i.time)
            .collect();
        let b13 = titan_stats::burstiness(&t13).unwrap();
        let b43 = titan_stats::burstiness(&t43).unwrap();
        assert!(b13 > b43 + 0.1, "b13={b13} b43={b43}");
        assert!(b43.abs() < 0.25, "driver stream should be near-Poisson: {b43}");
    }
}
