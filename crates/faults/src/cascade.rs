//! Parent → child error cascades: the generative model behind Fig. 13's
//! co-occurrence heatmap.
//!
//! The paper: "Some error events may be followed by multiple system error
//! events shortly after the initial errors occurrence. Therefore, there
//! may be one real 'parent' event and multiple 'child' events." And from
//! the Fig. 13 discussion: "a DBE (XID 48) is likely to be followed by
//! XID 45 and XID 63, and XID 13 is likely to be followed by XID 43 …
//! off the bus, XID 38, XID 48 (DBE), and XID 63 do not show multiple
//! occurrences within a 300-second time window."
//!
//! XID 48 → 63 is *not* a cascade rule here: it emerges from the page
//! retirement state machine (see `titan-gpu::pages`), keeping a single
//! source of truth for that mechanism.

use rand::Rng;
use titan_conlog::time::SimTime;
use titan_gpu::GpuErrorKind;

/// One cascade rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeRule {
    /// Triggering parent kind.
    pub parent: GpuErrorKind,
    /// Spawned child kind (may equal the parent: same-kind re-reports).
    pub child: GpuErrorKind,
    /// Probability a parent spawns at least one child of this kind.
    pub prob: f64,
    /// Additional children follow geometrically with this continuation
    /// probability (0 = at most one child).
    pub continuation: f64,
    /// Children arrive uniformly within `(0, max_delay]` seconds.
    pub max_delay: u64,
}

/// A spawned child event (relative to its parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadeChild {
    /// Seconds after the parent.
    pub delay: u64,
    /// Child kind.
    pub kind: GpuErrorKind,
    /// Whether the child reports on the same node as the parent (false =
    /// another node of the same job).
    pub same_node: bool,
}

/// The cascade model: a rule list applied to every logged parent event.
#[derive(Debug, Clone)]
pub struct CascadeModel {
    rules: Vec<CascadeRule>,
}

impl Default for CascadeModel {
    fn default() -> Self {
        use GpuErrorKind::*;
        CascadeModel {
            rules: vec![
                // "a DBE (XID 48) is likely to be followed by XID 45":
                // the driver preemptively cleans up after the crash.
                CascadeRule {
                    parent: DoubleBitError,
                    child: PreemptiveCleanup,
                    prob: 0.70,
                    continuation: 0.2,
                    max_delay: 120,
                },
                // "XID 13 is likely to be followed by XID 43".
                CascadeRule {
                    parent: GraphicsEngineException,
                    child: GpuStoppedProcessing,
                    prob: 0.55,
                    continuation: 0.1,
                    max_delay: 60,
                },
                // Same-kind re-reports that light the Fig. 13 diagonal for
                // driver XIDs (43, 44) and uc-halts.
                CascadeRule {
                    parent: GpuStoppedProcessing,
                    child: GpuStoppedProcessing,
                    prob: 0.40,
                    continuation: 0.3,
                    max_delay: 240,
                },
                CascadeRule {
                    parent: ContextSwitchFault,
                    child: ContextSwitchFault,
                    prob: 0.35,
                    continuation: 0.25,
                    max_delay: 240,
                },
                CascadeRule {
                    parent: MicrocontrollerHaltOld,
                    child: PreemptiveCleanup,
                    prob: 0.30,
                    continuation: 0.0,
                    max_delay: 120,
                },
                CascadeRule {
                    parent: MicrocontrollerHaltNew,
                    child: PreemptiveCleanup,
                    prob: 0.30,
                    continuation: 0.0,
                    max_delay: 120,
                },
                // Memory page faults re-report while the job drains.
                CascadeRule {
                    parent: GpuMemoryPageFault,
                    child: GpuMemoryPageFault,
                    prob: 0.45,
                    continuation: 0.35,
                    max_delay: 180,
                },
            ],
        }
    }
}

impl CascadeModel {
    /// Builds a model from explicit rules (ablations use this to switch
    /// cascades off).
    pub fn new(rules: Vec<CascadeRule>) -> Self {
        CascadeModel { rules }
    }

    /// An empty model: no parent ever cascades.
    pub fn disabled() -> Self {
        CascadeModel { rules: Vec::new() }
    }

    /// The rules.
    pub fn rules(&self) -> &[CascadeRule] {
        &self.rules
    }

    /// Kinds that must stay isolated (no cascade rule fires on them):
    /// used by tests to pin the paper's "isolated events" list.
    pub fn is_isolated_parent(&self, kind: GpuErrorKind) -> bool {
        !self.rules.iter().any(|r| r.parent == kind)
    }

    /// Samples the children spawned by one parent event.
    pub fn spawn<R: Rng + ?Sized>(
        &self,
        parent: GpuErrorKind,
        rng: &mut R,
    ) -> Vec<CascadeChild> {
        let mut out = Vec::new();
        for rule in self.rules.iter().filter(|r| r.parent == parent) {
            if rng.gen::<f64>() >= rule.prob {
                continue;
            }
            loop {
                out.push(CascadeChild {
                    delay: rng.gen_range(1..=rule.max_delay.max(1)),
                    kind: rule.child,
                    // Same-kind re-reports spread across job nodes; cross-
                    // kind consequences surface on the failing node.
                    same_node: rule.child != rule.parent,
                });
                if rng.gen::<f64>() >= rule.continuation {
                    break;
                }
            }
        }
        out.sort_unstable_by_key(|c| c.delay);
        out
    }

    /// Applies the model to a stream of `(time, kind)` parents, returning
    /// absolute-time children clamped to `horizon`.
    pub fn spawn_all<R: Rng + ?Sized>(
        &self,
        parents: &[(SimTime, GpuErrorKind)],
        horizon: SimTime,
        rng: &mut R,
    ) -> Vec<(SimTime, CascadeChild)> {
        let mut out = Vec::new();
        for &(t, kind) in parents {
            for child in self.spawn(kind, rng) {
                let ct = t.saturating_add(child.delay);
                if ct < horizon {
                    out.push((ct, child));
                }
            }
        }
        out.sort_unstable_by_key(|&(t, _)| t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use GpuErrorKind::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5150)
    }

    #[test]
    fn isolated_kinds_match_paper() {
        let m = CascadeModel::default();
        // "off the bus, XID 38, XID 48 … and XID 63 do not show multiple
        // occurrences": none of them may *self*-cascade; 38/63/OTB must be
        // fully isolated.
        assert!(m.is_isolated_parent(OffTheBus));
        assert!(m.is_isolated_parent(DriverFirmware));
        assert!(m.is_isolated_parent(EccPageRetirement));
        assert!(!m.rules().iter().any(|r| r.parent == DoubleBitError && r.child == DoubleBitError));
    }

    #[test]
    fn dbe_spawns_cleanup_frequently() {
        let m = CascadeModel::default();
        let mut r = rng();
        let mut hits = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if m.spawn(DoubleBitError, &mut r)
                .iter()
                .any(|c| c.kind == PreemptiveCleanup)
            {
                hits += 1;
            }
        }
        let rate = hits as f64 / N as f64;
        assert!((rate - 0.70).abs() < 0.03, "48->45 rate {rate}");
    }

    #[test]
    fn xid13_spawns_43() {
        let m = CascadeModel::default();
        let mut r = rng();
        let mut hits = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if m.spawn(GraphicsEngineException, &mut r)
                .iter()
                .any(|c| c.kind == GpuStoppedProcessing)
            {
                hits += 1;
            }
        }
        assert!((hits as f64 / N as f64 - 0.55).abs() < 0.03);
    }

    #[test]
    fn delays_within_rule_bounds() {
        let m = CascadeModel::default();
        let mut r = rng();
        for _ in 0..2_000 {
            for c in m.spawn(DoubleBitError, &mut r) {
                assert!(c.delay >= 1 && c.delay <= 120);
            }
        }
    }

    #[test]
    fn disabled_model_never_spawns() {
        let m = CascadeModel::disabled();
        let mut r = rng();
        for kind in GpuErrorKind::ALL {
            assert!(m.spawn(kind, &mut r).is_empty());
        }
    }

    #[test]
    fn spawn_all_respects_horizon_and_order() {
        let m = CascadeModel::default();
        let mut r = rng();
        let parents: Vec<(SimTime, GpuErrorKind)> = (0..500)
            .map(|i| (i * 1000, GraphicsEngineException))
            .collect();
        let children = m.spawn_all(&parents, 100_000, &mut r);
        assert!(children.iter().all(|&(t, _)| t < 100_000));
        assert!(children.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(!children.is_empty());
    }

    #[test]
    fn continuation_yields_multiple_children() {
        let m = CascadeModel::default();
        let mut r = rng();
        let mut max_children = 0;
        for _ in 0..5_000 {
            let n = m
                .spawn(GpuMemoryPageFault, &mut r)
                .iter()
                .filter(|c| c.kind == GpuMemoryPageFault)
                .count();
            max_children = max_children.max(n);
        }
        assert!(max_children >= 2, "continuation never chained");
    }
}
