//! Poisson machinery: homogeneous, piecewise-rate, and burst-compound
//! arrival processes over the study window.

use rand::Rng;
use titan_conlog::time::SimTime;
use titan_stats::{Exponential, PoissonCounter};

/// Homogeneous Poisson process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    rate_per_sec: f64,
}

impl PoissonProcess {
    /// Creates the process; rate must be nonnegative and finite.
    pub fn new(rate_per_sec: f64) -> Option<Self> {
        (rate_per_sec >= 0.0 && rate_per_sec.is_finite()).then_some(PoissonProcess { rate_per_sec })
    }

    /// The rate in events/second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Samples all arrival times in `[start, end)`.
    pub fn sample_window<R: Rng + ?Sized>(
        &self,
        start: SimTime,
        end: SimTime,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let mut out = Vec::new();
        if self.rate_per_sec <= 0.0 || start >= end {
            return out;
        }
        let exp = Exponential::new(self.rate_per_sec).expect("validated rate");
        // lint: allow(N1, sim times stay far below 2^53 and are exact in f64)
        let mut t = start as f64;
        loop {
            t += exp.sample(rng);
            // lint: allow(N1, sim times stay far below 2^53 and are exact in f64)
            if t >= end as f64 {
                return out;
            }
            out.push(t as SimTime);
        }
    }
}

/// Piecewise-constant-rate Poisson process: a list of (epoch-start, rate)
/// segments. Used for regime changes like the off-the-bus soldering fix
/// and the XID 59 → 62 driver transition.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewisePoisson {
    /// (segment start, rate/sec); must be sorted by start, first at 0.
    segments: Vec<(SimTime, f64)>,
}

impl PiecewisePoisson {
    /// Creates the process from `(start, rate)` segments. The first
    /// segment must start at 0 and starts must be strictly increasing.
    pub fn new(segments: Vec<(SimTime, f64)>) -> Option<Self> {
        if segments.is_empty() || segments[0].0 != 0 {
            return None;
        }
        if segments.windows(2).any(|w| w[0].0 >= w[1].0) {
            return None;
        }
        if segments.iter().any(|&(_, r)| r < 0.0 || !r.is_finite()) {
            return None;
        }
        Some(PiecewisePoisson { segments })
    }

    /// Rate active at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self.segments.iter().rev().find(|&&(s, _)| s <= t) {
            Some(&(_, r)) => r,
            None => 0.0,
        }
    }

    /// Samples all arrivals in `[start, end)` by sampling each constant
    /// segment independently (valid by Poisson independence).
    pub fn sample_window<R: Rng + ?Sized>(
        &self,
        start: SimTime,
        end: SimTime,
        rng: &mut R,
    ) -> Vec<SimTime> {
        let mut out = Vec::new();
        for (i, &(seg_start, rate)) in self.segments.iter().enumerate() {
            let seg_end = self
                .segments
                .get(i + 1)
                .map(|&(s, _)| s)
                .unwrap_or(SimTime::MAX);
            let lo = seg_start.max(start);
            let hi = seg_end.min(end);
            if lo >= hi {
                continue;
            }
            if let Some(p) = PoissonProcess::new(rate) {
                out.extend(p.sample_window(lo, hi, rng));
            }
        }
        out.sort_unstable();
        out
    }
}

/// Compound burst process: parent arrivals are Poisson (possibly
/// seasonally modulated), and each parent spawns a Poisson-distributed
/// number of children within a short span. Models the paper's bursty
/// user-application XIDs ("multiple errors happening on the same day …
/// may also correlate with domain scientists' project or paper
/// deadlines").
#[derive(Debug, Clone, PartialEq)]
pub struct BurstProcess {
    /// Baseline parent rate, events/second.
    pub base_rate_per_sec: f64,
    /// Multiplier applied during seasons (e.g. deadline weeks).
    pub season_multiplier: f64,
    /// Season period, seconds (a season recurs every `period`).
    pub season_period: SimTime,
    /// Season length, seconds (the multiplier applies for the first
    /// `season_len` of each period).
    pub season_len: SimTime,
    /// Mean children per parent.
    pub mean_children: f64,
    /// Children arrive within `[0, child_span)` seconds of the parent.
    pub child_span: SimTime,
}

impl BurstProcess {
    /// True when `t` falls inside a high-rate season.
    pub fn in_season(&self, t: SimTime) -> bool {
        self.season_period > 0 && t % self.season_period < self.season_len
    }

    /// Samples `(parent, children)` bursts over `[start, end)`; children
    /// may spill slightly past `end` (they are clamped to it).
    pub fn sample_window<R: Rng + ?Sized>(
        &self,
        start: SimTime,
        end: SimTime,
        rng: &mut R,
    ) -> Vec<(SimTime, Vec<SimTime>)> {
        // Thinning: sample at the max rate, keep off-season points with
        // probability base/(base*mult).
        let max_rate = self.base_rate_per_sec * self.season_multiplier.max(1.0);
        let Some(envelope) = PoissonProcess::new(max_rate) else {
            return Vec::new();
        };
        let keep_offseason = if self.season_multiplier >= 1.0 {
            1.0 / self.season_multiplier
        } else {
            1.0
        };
        let mut out = Vec::new();
        for t in envelope.sample_window(start, end, rng) {
            if !self.in_season(t) && rng.gen::<f64>() >= keep_offseason {
                continue;
            }
            let n = PoissonCounter::new(self.mean_children)
                .expect("nonneg mean")
                .sample(rng);
            let children = (0..n)
                .map(|_| {
                    (t + rng.gen_range(0..self.child_span.max(1))).min(end.saturating_sub(1))
                })
                .collect();
            out.push((t, children));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn poisson_rejects_bad_rates() {
        assert!(PoissonProcess::new(-1.0).is_none());
        assert!(PoissonProcess::new(f64::NAN).is_none());
        assert!(PoissonProcess::new(0.0).is_some());
    }

    #[test]
    fn poisson_count_matches_rate() {
        let p = PoissonProcess::new(0.01).unwrap();
        let mut r = rng();
        let events = p.sample_window(0, 1_000_000, &mut r);
        // Expect 10,000 ± a few hundred.
        assert!((9_500..10_500).contains(&events.len()), "{}", events.len());
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
        assert!(events.iter().all(|&t| t < 1_000_000));
    }

    #[test]
    fn poisson_zero_rate_empty() {
        let p = PoissonProcess::new(0.0).unwrap();
        assert!(p.sample_window(0, 1_000_000, &mut rng()).is_empty());
    }

    #[test]
    fn poisson_empty_window() {
        let p = PoissonProcess::new(1.0).unwrap();
        assert!(p.sample_window(100, 100, &mut rng()).is_empty());
        assert!(p.sample_window(100, 50, &mut rng()).is_empty());
    }

    #[test]
    fn piecewise_validation() {
        assert!(PiecewisePoisson::new(vec![]).is_none());
        assert!(PiecewisePoisson::new(vec![(5, 1.0)]).is_none()); // must start at 0
        assert!(PiecewisePoisson::new(vec![(0, 1.0), (0, 2.0)]).is_none());
        assert!(PiecewisePoisson::new(vec![(0, -1.0)]).is_none());
        assert!(PiecewisePoisson::new(vec![(0, 1.0), (10, 0.5)]).is_some());
    }

    #[test]
    fn piecewise_rate_lookup() {
        let p = PiecewisePoisson::new(vec![(0, 1.0), (100, 5.0), (200, 0.0)]).unwrap();
        assert_eq!(p.rate_at(0), 1.0);
        assert_eq!(p.rate_at(99), 1.0);
        assert_eq!(p.rate_at(100), 5.0);
        assert_eq!(p.rate_at(1_000_000), 0.0);
    }

    #[test]
    fn piecewise_regime_change_visible() {
        // High rate then near-zero — the OTB soldering-fix shape.
        let p = PiecewisePoisson::new(vec![(0, 0.01), (500_000, 0.0001)]).unwrap();
        let mut r = rng();
        let events = p.sample_window(0, 1_000_000, &mut r);
        let before = events.iter().filter(|&&t| t < 500_000).count();
        let after = events.len() - before;
        assert!(before > 50 * after.max(1), "before={before} after={after}");
    }

    #[test]
    fn piecewise_sample_respects_window() {
        let p = PiecewisePoisson::new(vec![(0, 0.01)]).unwrap();
        let events = p.sample_window(1000, 2000, &mut rng());
        assert!(events.iter().all(|&t| (1000..2000).contains(&t)));
    }

    #[test]
    fn burst_children_near_parent() {
        let b = BurstProcess {
            base_rate_per_sec: 0.0005,
            season_multiplier: 1.0,
            season_period: 0,
            season_len: 0,
            mean_children: 3.0,
            child_span: 10,
        };
        let mut r = rng();
        let bursts = b.sample_window(0, 1_000_000, &mut r);
        assert!(!bursts.is_empty());
        for (t, children) in &bursts {
            for &c in children {
                assert!(c >= *t && c <= t + 10);
            }
        }
        let total_children: usize = bursts.iter().map(|(_, c)| c.len()).sum();
        let mean = total_children as f64 / bursts.len() as f64;
        assert!((mean - 3.0).abs() < 0.5, "mean children {mean}");
    }

    #[test]
    fn burst_seasonality_raises_density() {
        let b = BurstProcess {
            base_rate_per_sec: 0.001,
            season_multiplier: 5.0,
            season_period: 100_000,
            season_len: 20_000, // 20% of the time in season
            mean_children: 0.0,
            child_span: 1,
        };
        let mut r = rng();
        let bursts = b.sample_window(0, 2_000_000, &mut r);
        let in_season = bursts.iter().filter(|(t, _)| b.in_season(*t)).count();
        let off_season = bursts.len() - in_season;
        // In-season occupies 20% of time but at 5x rate -> expect roughly
        // equal counts; require in-season density clearly higher.
        let season_density = in_season as f64 / 0.2;
        let off_density = off_season as f64 / 0.8;
        assert!(
            season_density > 3.0 * off_density,
            "in={in_season} off={off_season}"
        );
    }
}
