//! Hardware fault generators: DBE, off-the-bus, and SBE.
//!
//! Each generator produces *ground-truth fault drafts* — times plus
//! device-level attributes. The fleet simulator assigns them to cards and
//! slots (it owns the card↔slot mapping, which changes as operators swap
//! cards) and runs them through the ECC model.

use rand::Rng;
use titan_conlog::time::{SimTime, STUDY_SECONDS};
use titan_gpu::pages::PAGE_COUNT;
use titan_gpu::{MemoryStructure, PageAddress};
use titan_stats::PoissonCounter;

use crate::calibration;
use crate::process::{PiecewisePoisson, PoissonProcess};

/// One double-bit-error draft.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbeDraft {
    /// When it strikes.
    pub time: SimTime,
    /// Structure struck (86% device memory / 14% register file).
    pub structure: MemoryStructure,
    /// Device-memory page for device-memory strikes.
    pub page: Option<PageAddress>,
    /// Whether NVML persists it to the InfoROM before the node dies
    /// (false = the Observation 2 undercount path).
    pub inforom_persisted: bool,
}

/// The fleet DBE process (Observation 1: MTBF ≈ 160 h).
#[derive(Debug, Clone, Copy)]
pub struct DbeProcess {
    rate: f64,
}

impl Default for DbeProcess {
    fn default() -> Self {
        DbeProcess {
            rate: calibration::DBE_FLEET_RATE_PER_SEC,
        }
    }
}

impl DbeProcess {
    /// Process with a custom fleet rate (for ablations).
    pub fn with_rate(rate_per_sec: f64) -> Self {
        DbeProcess { rate: rate_per_sec }
    }

    /// Samples all DBE drafts over the study window.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<DbeDraft> {
        let p = PoissonProcess::new(self.rate).expect("calibrated rate");
        p.sample_window(0, STUDY_SECONDS, rng)
            .into_iter()
            .map(|time| {
                let structure = if rng.gen::<f64>() < calibration::DBE_DEVICE_MEMORY_FRACTION {
                    MemoryStructure::DeviceMemory
                } else {
                    MemoryStructure::RegisterFile
                };
                let page = (structure == MemoryStructure::DeviceMemory)
                    .then(|| PageAddress(rng.gen_range(0..PAGE_COUNT)));
                DbeDraft {
                    time,
                    structure,
                    page,
                    inforom_persisted: rng.gen::<f64>() >= calibration::DBE_INFOROM_LOSS_PROB,
                }
            })
            .collect()
    }
}

/// One off-the-bus draft. `cluster_root` marks the parent of a cluster;
/// children carry the same flag false.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtbDraft {
    /// When the host loses the GPU.
    pub time: SimTime,
    /// True for the spontaneous event that seeded a cluster.
    pub cluster_root: bool,
}

/// The off-the-bus process: an integration-defect epidemic until the
/// soldering campaign (Dec 2013), negligible after (Observation 4), with
/// 24 h clustering.
#[derive(Debug, Clone)]
pub struct OtbProcess {
    rates: PiecewisePoisson,
    cluster_mean: f64,
}

impl Default for OtbProcess {
    fn default() -> Self {
        OtbProcess {
            rates: PiecewisePoisson::new(vec![
                (0, calibration::OTB_EPIDEMIC_RATE_PER_SEC),
                (
                    calibration::otb_fix_date(),
                    calibration::OTB_RESIDUAL_RATE_PER_SEC,
                ),
            ])
            .expect("valid calibration segments"),
            cluster_mean: calibration::OTB_CLUSTER_MEAN_CHILDREN,
        }
    }
}

impl OtbProcess {
    /// Custom process for ablations (e.g. "what if the fix never landed").
    pub fn new(rates: PiecewisePoisson, cluster_mean: f64) -> Self {
        OtbProcess {
            rates,
            cluster_mean,
        }
    }

    /// Samples all OTB drafts over the study window, cluster children
    /// included, sorted by time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<OtbDraft> {
        let mut out = Vec::new();
        for t in self.rates.sample_window(0, STUDY_SECONDS, rng) {
            out.push(OtbDraft {
                time: t,
                cluster_root: true,
            });
            // Clustering only during the epidemic: the defect was a batch
            // property, so one failure predicted more nearby in time.
            if t < calibration::otb_fix_date() {
                let n = PoissonCounter::new(self.cluster_mean)
                    .expect("nonneg mean")
                    .sample(rng);
                for _ in 0..n {
                    let dt = rng.gen_range(0..24 * 3600);
                    let ct = (t + dt).min(STUDY_SECONDS - 1);
                    out.push(OtbDraft {
                        time: ct,
                        cluster_root: false,
                    });
                }
            }
        }
        out.sort_unstable_by_key(|d| d.time);
        out
    }
}

/// One single-bit-error draft.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbeDraft {
    /// When it strikes.
    pub time: SimTime,
    /// Structure struck (L2-dominant, per §4).
    pub structure: MemoryStructure,
    /// Device-memory page for device-memory strikes — feeds the two-SBE
    /// retirement path.
    pub page: Option<PageAddress>,
}

/// The fleet SBE process: "we observe SBEs in the order of hundreds per
/// day". Day-level Poisson counts with uniform intra-day placement.
#[derive(Debug, Clone, Copy)]
pub struct SbeProcess {
    per_day: f64,
    /// Weak pages per card: a handful of physically degraded cells that
    /// repeated SBEs can re-strike. Collisions here drive the two-SBE
    /// retirement path.
    pub weak_pages_per_card: u32,
    /// Probability a device-memory SBE hits a weak page rather than a
    /// uniformly random one (where a same-page repeat is essentially
    /// impossible across 1.5 M pages). Calibrated so the window sees
    /// tens of two-SBE retirements, matching Fig. 8's tail.
    pub weak_page_prob: f64,
}

impl Default for SbeProcess {
    fn default() -> Self {
        SbeProcess {
            per_day: calibration::SBE_FLEET_PER_DAY,
            weak_pages_per_card: 8,
            weak_page_prob: 0.004,
        }
    }
}

impl SbeProcess {
    /// Process with custom daily volume (ablations).
    pub fn with_per_day(per_day: f64) -> Self {
        SbeProcess {
            per_day,
            ..SbeProcess::default()
        }
    }

    /// Expected total SBEs over the window.
    pub fn expected_total(&self) -> f64 {
        // lint: allow(N1, STUDY_SECONDS = 55,123,200 is exact in f64)
        self.per_day * STUDY_SECONDS as f64 / 86_400.0
    }

    /// Samples all SBE drafts, sorted by time. Device-memory strikes hit
    /// one of the card's few weak pages with `weak_page_prob` (where
    /// repeats collide and retire the page) and a uniformly random page
    /// otherwise.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<SbeDraft> {
        // lint: allow(N1, 638 whole study days fit any usize)
        let days = (STUDY_SECONDS / 86_400) as usize;
        let counter = PoissonCounter::new(self.per_day).expect("nonneg volume");
        // lint: allow(N1, capacity hint only — a short allocation cannot corrupt counts)
        let mut out = Vec::with_capacity((self.expected_total() * 1.05) as usize);
        for d in 0..days {
            let n = counter.sample(rng);
            let day_start = d as SimTime * 86_400;
            for _ in 0..n {
                let time = day_start + rng.gen_range(0..86_400);
                let structure = pick_sbe_structure(rng);
                let page = (structure == MemoryStructure::DeviceMemory).then(|| {
                    if rng.gen::<f64>() < self.weak_page_prob {
                        PageAddress(rng.gen_range(0..self.weak_pages_per_card))
                    } else {
                        PageAddress(rng.gen_range(self.weak_pages_per_card..PAGE_COUNT))
                    }
                });
                out.push(SbeDraft {
                    time,
                    structure,
                    page,
                });
            }
        }
        out.sort_unstable_by_key(|d| d.time);
        out
    }
}

/// Draws an SBE structure from the calibrated mix (L2-dominant).
pub fn pick_sbe_structure<R: Rng + ?Sized>(rng: &mut R) -> MemoryStructure {
    let mut x = rng.gen::<f64>();
    for &(s, f) in calibration::SBE_STRUCTURE_MIX.iter() {
        x -= f;
        if x <= 0.0 {
            return s;
        }
    }
    calibration::SBE_STRUCTURE_MIX[0].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2718)
    }

    #[test]
    fn dbe_volume_near_weekly() {
        let drafts = DbeProcess::default().sample(&mut rng());
        // Poisson(≈95.7): accept a wide but meaningful band.
        assert!(
            (60..140).contains(&drafts.len()),
            "dbe count {}",
            drafts.len()
        );
        assert!(drafts.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn dbe_structure_split_near_86_14() {
        // Crank the rate for statistics.
        let drafts = DbeProcess::with_rate(0.001).sample(&mut rng());
        assert!(drafts.len() > 10_000);
        let dm = drafts
            .iter()
            .filter(|d| d.structure == MemoryStructure::DeviceMemory)
            .count() as f64
            / drafts.len() as f64;
        assert!((dm - 0.86).abs() < 0.02, "device-memory share {dm}");
        // Device-memory strikes carry pages; register-file ones don't.
        for d in &drafts {
            assert_eq!(
                d.page.is_some(),
                d.structure == MemoryStructure::DeviceMemory
            );
        }
    }

    #[test]
    fn dbe_inforom_loss_rate() {
        let drafts = DbeProcess::with_rate(0.001).sample(&mut rng());
        let lost = drafts.iter().filter(|d| !d.inforom_persisted).count() as f64
            / drafts.len() as f64;
        assert!(
            (lost - calibration::DBE_INFOROM_LOSS_PROB).abs() < 0.02,
            "loss rate {lost}"
        );
    }

    #[test]
    fn otb_epidemic_shape() {
        let drafts = OtbProcess::default().sample(&mut rng());
        let fix = calibration::otb_fix_date();
        let before = drafts.iter().filter(|d| d.time < fix).count();
        let after = drafts.len() - before;
        assert!(before > 30, "epidemic events {before}");
        assert!(
            before > 20 * after.max(1),
            "before={before} after={after}"
        );
        // Clustering: children exist during the epidemic.
        assert!(drafts.iter().any(|d| !d.cluster_root));
        // Sorted.
        assert!(drafts.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn sbe_daily_volume() {
        let p = SbeProcess::with_per_day(100.0);
        let drafts = p.sample(&mut rng());
        let days = (STUDY_SECONDS / 86_400) as f64;
        let per_day = drafts.len() as f64 / days;
        assert!((per_day - 100.0).abs() < 5.0, "per-day {per_day}");
    }

    #[test]
    fn sbe_structure_mix_l2_dominant() {
        let drafts = SbeProcess::with_per_day(200.0).sample(&mut rng());
        let l2 = drafts
            .iter()
            .filter(|d| d.structure == MemoryStructure::L2Cache)
            .count() as f64
            / drafts.len() as f64;
        assert!((l2 - 0.55).abs() < 0.02, "L2 share {l2}");
    }

    #[test]
    fn sbe_pages_only_for_device_memory() {
        let p = SbeProcess::default();
        let drafts = p.sample(&mut rng());
        let mut weak = 0u64;
        let mut dm = 0u64;
        for d in &drafts {
            assert_eq!(
                d.page.is_some(),
                d.structure == MemoryStructure::DeviceMemory
            );
            if let Some(pg) = d.page {
                assert!(pg.0 < PAGE_COUNT);
                dm += 1;
                if pg.0 < p.weak_pages_per_card {
                    weak += 1;
                }
            }
        }
        // Weak-page strikes are rare, near the calibrated probability.
        let rate = weak as f64 / dm as f64;
        assert!(rate < 0.02, "weak-page rate {rate}");
    }

    #[test]
    fn structure_picker_covers_mix() {
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(pick_sbe_structure(&mut r));
        }
        assert_eq!(seen.len(), calibration::SBE_STRUCTURE_MIX.len());
    }
}
