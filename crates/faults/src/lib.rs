//! # titan-faults
//!
//! Stochastic fault processes calibrated to the SC '15 Titan field study.
//!
//! The real Titan's faults came from cosmic rays, GDDR5 wear, a card-seat
//! integration defect, driver bugs, and user code. We cannot replay those;
//! instead this crate provides *generative models* whose parameters are
//! pinned, constant by constant, to sentences in the paper
//! (see [`calibration`]). The fleet simulator draws fault times and
//! attributes from these processes; the analysis pipeline then has to
//! *recover* the paper's observations from the resulting logs — nothing in
//! the analysis reads these parameters.
//!
//! * [`calibration`] — every constant, with the paper sentence it encodes.
//! * [`rngstream`] — deterministic per-subsystem RNG streams (SplitMix64
//!   seeding) so processes are independent and reproducible.
//! * [`process`] — Poisson machinery: homogeneous, piecewise-rate, and
//!   burst-compound processes over the study window.
//! * [`susceptibility`] — the per-card SBE "offender" mixture
//!   (Observation 10) and per-card DBE proneness.
//! * [`hardware`] — DBE, off-the-bus, and SBE generators with structure
//!   attribution and temperature coupling.
//! * [`software`] — driver/application XID incident generators
//!   (Observation 6's bursty-vs-steady split).
//! * [`cascade`] — the parent→child XID co-occurrence model behind
//!   Fig. 13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod cascade;
pub mod hardware;
pub mod process;
pub mod rngstream;
pub mod software;
pub mod susceptibility;
pub mod telemetry;

pub use cascade::CascadeModel;
pub use hardware::{DbeProcess, OtbProcess, SbeProcess};
pub use process::{BurstProcess, PiecewisePoisson, PoissonProcess};
pub use rngstream::RngStreams;
pub use software::{SoftwareIncident, SoftwareXidModel};
pub use susceptibility::CardSusceptibility;
