//! Sim-time draft statistics for the observability layer.
//!
//! The fault processes pre-sample their whole windows as draft vectors;
//! these summarizers fold a draft slice into plain counts so the engine
//! can publish a "what did the generators draw" section without the
//! metrics layer ever touching the RNG streams. Everything here is a
//! pure function of the drafts — running it (or not) cannot perturb a
//! simulation, which is exactly the property the telemetry determinism
//! tests pin.

use titan_gpu::MemoryStructure;

use crate::hardware::{DbeDraft, OtbDraft, SbeDraft};
use crate::software::SoftwareIncident;

/// Counts over a DBE draft slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbeDraftStats {
    /// Drafts in the slice.
    pub total: u64,
    /// Strikes on device memory.
    pub device_memory: u64,
    /// Strikes on the register file.
    pub register_file: u64,
    /// Drafts whose InfoROM write is lost in the crash (Observation 2).
    pub inforom_lost: u64,
}

impl DbeDraftStats {
    /// Folds the slice.
    pub fn collect<'a>(drafts: impl IntoIterator<Item = &'a DbeDraft>) -> Self {
        let mut s = DbeDraftStats::default();
        for d in drafts {
            s.total += 1;
            match d.structure {
                MemoryStructure::DeviceMemory => s.device_memory += 1,
                MemoryStructure::RegisterFile => s.register_file += 1,
                _ => {}
            }
            if !d.inforom_persisted {
                s.inforom_lost += 1;
            }
        }
        s
    }
}

/// Counts over an off-the-bus draft slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OtbDraftStats {
    /// Drafts in the slice.
    pub total: u64,
    /// Spontaneous events that seeded a cluster.
    pub cluster_roots: u64,
    /// Events drawn as members of an existing cluster.
    pub cluster_children: u64,
}

impl OtbDraftStats {
    /// Folds the slice.
    pub fn collect<'a>(drafts: impl IntoIterator<Item = &'a OtbDraft>) -> Self {
        let mut s = OtbDraftStats::default();
        for d in drafts {
            s.total += 1;
            if d.cluster_root {
                s.cluster_roots += 1;
            } else {
                s.cluster_children += 1;
            }
        }
        s
    }
}

/// Counts over an SBE draft slice, split by struck structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SbeDraftStats {
    /// Drafts in the slice.
    pub total: u64,
    /// Per-structure counts in [`MemoryStructure::ECC_COUNTED`] order.
    pub by_structure: [u64; MemoryStructure::ECC_COUNTED.len()],
}

impl SbeDraftStats {
    /// Folds the slice. Structures outside `ECC_COUNTED` cannot be
    /// drawn by the SBE mix; they are counted in `total` only.
    pub fn collect<'a>(drafts: impl IntoIterator<Item = &'a SbeDraft>) -> Self {
        let mut s = SbeDraftStats::default();
        for d in drafts {
            s.total += 1;
            if let Some(i) = MemoryStructure::ECC_COUNTED
                .iter()
                .position(|&m| m == d.structure)
            {
                s.by_structure[i] += 1;
            }
        }
        s
    }

    /// `(structure, count)` pairs in the stable `ECC_COUNTED` order.
    pub fn per_structure(&self) -> impl Iterator<Item = (MemoryStructure, u64)> + '_ {
        MemoryStructure::ECC_COUNTED
            .iter()
            .zip(self.by_structure.iter())
            .map(|(&m, &c)| (m, c))
    }
}

/// Counts over a software-XID incident slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoftDraftStats {
    /// Incidents in the slice.
    pub total: u64,
    /// Incidents striking every node of a job at once.
    pub job_wide: u64,
}

impl SoftDraftStats {
    /// Folds the slice.
    pub fn collect<'a>(incidents: impl IntoIterator<Item = &'a SoftwareIncident>) -> Self {
        let mut s = SoftDraftStats::default();
        for inc in incidents {
            s.total += 1;
            if inc.job_wide {
                s.job_wide += 1;
            }
        }
        s
    }
}

/// Flight-recorder payload for a DBE draft (the `titan-trace/1` root
/// record minted when the draft enters the event heap). Stable,
/// format-only strings: the trace schema freezes the record shape, and
/// these keep the payloads deterministic and greppable.
pub fn dbe_draft_payload(d: &DbeDraft) -> String {
    format!(
        "dbe_draft structure={:?} persisted={}",
        d.structure, d.inforom_persisted
    )
}

/// Flight-recorder payload for an off-the-bus draft.
pub fn otb_draft_payload(d: &OtbDraft) -> String {
    format!("otb_draft cluster_root={}", d.cluster_root)
}

/// Flight-recorder payload for an SBE draft.
pub fn sbe_draft_payload(d: &SbeDraft) -> String {
    format!("sbe_draft structure={:?}", d.structure)
}

/// Flight-recorder payload for a software-XID incident draft.
pub fn soft_draft_payload(i: &SoftwareIncident) -> String {
    format!("soft_draft kind={:?} job_wide={}", i.kind, i.job_wide)
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::PageAddress;

    #[test]
    fn dbe_stats_split_structures_and_inforom() {
        let drafts = vec![
            DbeDraft {
                time: 1,
                structure: MemoryStructure::DeviceMemory,
                page: Some(PageAddress(7)),
                inforom_persisted: true,
            },
            DbeDraft {
                time: 2,
                structure: MemoryStructure::RegisterFile,
                page: None,
                inforom_persisted: false,
            },
            DbeDraft {
                time: 3,
                structure: MemoryStructure::DeviceMemory,
                page: None,
                inforom_persisted: false,
            },
        ];
        let s = DbeDraftStats::collect(&drafts);
        assert_eq!(s.total, 3);
        assert_eq!(s.device_memory, 2);
        assert_eq!(s.register_file, 1);
        assert_eq!(s.inforom_lost, 2);
    }

    #[test]
    fn otb_stats_split_roots_from_children() {
        let drafts = vec![
            OtbDraft { time: 1, cluster_root: true },
            OtbDraft { time: 2, cluster_root: false },
            OtbDraft { time: 3, cluster_root: false },
        ];
        let s = OtbDraftStats::collect(&drafts);
        assert_eq!((s.total, s.cluster_roots, s.cluster_children), (3, 1, 2));
    }

    #[test]
    fn sbe_stats_count_per_structure_in_stable_order() {
        let drafts = vec![
            SbeDraft { time: 1, structure: MemoryStructure::L2Cache, page: None },
            SbeDraft { time: 2, structure: MemoryStructure::L2Cache, page: None },
            SbeDraft {
                time: 3,
                structure: MemoryStructure::DeviceMemory,
                page: Some(PageAddress(1)),
            },
        ];
        let s = SbeDraftStats::collect(&drafts);
        assert_eq!(s.total, 3);
        let per: Vec<_> = s.per_structure().collect();
        assert_eq!(per[0], (MemoryStructure::DeviceMemory, 1));
        assert_eq!(per[1], (MemoryStructure::L2Cache, 2));
        assert_eq!(per[2], (MemoryStructure::RegisterFile, 0));
    }

    #[test]
    fn draft_payloads_are_stable_strings() {
        let d = DbeDraft {
            time: 1,
            structure: MemoryStructure::DeviceMemory,
            page: None,
            inforom_persisted: false,
        };
        assert_eq!(
            dbe_draft_payload(&d),
            "dbe_draft structure=DeviceMemory persisted=false"
        );
        assert_eq!(
            otb_draft_payload(&OtbDraft { time: 2, cluster_root: true }),
            "otb_draft cluster_root=true"
        );
        assert_eq!(
            sbe_draft_payload(&SbeDraft {
                time: 3,
                structure: MemoryStructure::L2Cache,
                page: None,
            }),
            "sbe_draft structure=L2Cache"
        );
        let i = SoftwareIncident {
            time: 4,
            kind: titan_gpu::GpuErrorKind::GraphicsEngineException,
            job_wide: true,
        };
        assert_eq!(
            soft_draft_payload(&i),
            "soft_draft kind=GraphicsEngineException job_wide=true"
        );
    }

    #[test]
    fn soft_stats_count_job_wide() {
        let incidents = vec![
            SoftwareIncident {
                time: 1,
                kind: titan_gpu::GpuErrorKind::GraphicsEngineException,
                job_wide: true,
            },
            SoftwareIncident {
                time: 2,
                kind: titan_gpu::GpuErrorKind::GpuMemoryPageFault,
                job_wide: false,
            },
        ];
        let s = SoftDraftStats::collect(&incidents);
        assert_eq!((s.total, s.job_wide), (2, 1));
    }
}
