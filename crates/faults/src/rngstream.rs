//! Deterministic per-subsystem RNG streams.
//!
//! Every stochastic subsystem (DBE process, SBE susceptibility, workload
//! generator, …) draws from its own `StdRng` seeded by
//! SplitMix64(master ⊕ tag). Adding draws to one subsystem therefore
//! never perturbs another — essential for the ablation benches, which
//! toggle single processes and compare runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Named stream tags (documented here so collisions are impossible to
/// miss in review).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamTag {
    /// Double-bit error process.
    Dbe,
    /// Off-the-bus process.
    OffTheBus,
    /// Single-bit error process.
    Sbe,
    /// Per-card susceptibility assignment.
    Susceptibility,
    /// Software/driver XID incidents.
    SoftwareXid,
    /// Parent→child cascades.
    Cascade,
    /// Workload (users/jobs) generation.
    Workload,
    /// Simulator-internal decisions (page addresses, node picks).
    Simulator,
    /// Hot-spare stress testing outcomes.
    HotSpare,
}

impl StreamTag {
    fn tag_value(self) -> u64 {
        // Stable, explicit values: reordering the enum must not change
        // streams between versions.
        match self {
            StreamTag::Dbe => 0x01,
            StreamTag::OffTheBus => 0x02,
            StreamTag::Sbe => 0x03,
            StreamTag::Susceptibility => 0x04,
            StreamTag::SoftwareXid => 0x05,
            StreamTag::Cascade => 0x06,
            StreamTag::Workload => 0x07,
            StreamTag::Simulator => 0x08,
            StreamTag::HotSpare => 0x09,
        }
    }
}

/// Factory for per-subsystem RNGs from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Creates the factory.
    pub fn new(master_seed: u64) -> Self {
        RngStreams { master: master_seed }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// RNG for `tag`.
    pub fn stream(&self, tag: StreamTag) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.master ^ tag.tag_value()))
    }

    /// RNG for `tag` sub-indexed by `idx` (e.g. per-card streams).
    pub fn substream(&self, tag: StreamTag, idx: u64) -> StdRng {
        let mixed = splitmix64(splitmix64(self.master ^ tag.tag_value()).wrapping_add(idx));
        StdRng::seed_from_u64(mixed)
    }
}

/// SplitMix64 finalizer — the standard seed-spreading mix.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let a = RngStreams::new(42);
        let b = RngStreams::new(42);
        let x: u64 = a.stream(StreamTag::Dbe).gen();
        let y: u64 = b.stream(StreamTag::Dbe).gen();
        assert_eq!(x, y);
    }

    #[test]
    fn streams_differ_by_tag() {
        let s = RngStreams::new(42);
        let x: u64 = s.stream(StreamTag::Dbe).gen();
        let y: u64 = s.stream(StreamTag::Sbe).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn streams_differ_by_seed() {
        let x: u64 = RngStreams::new(1).stream(StreamTag::Dbe).gen();
        let y: u64 = RngStreams::new(2).stream(StreamTag::Dbe).gen();
        assert_ne!(x, y);
    }

    #[test]
    fn substreams_differ_by_index() {
        let s = RngStreams::new(7);
        let x: u64 = s.substream(StreamTag::Sbe, 0).gen();
        let y: u64 = s.substream(StreamTag::Sbe, 1).gen();
        assert_ne!(x, y);
        // And reproduce.
        let x2: u64 = s.substream(StreamTag::Sbe, 0).gen();
        assert_eq!(x, x2);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value for seed 0 (first output of SplitMix64).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
