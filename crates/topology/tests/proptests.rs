//! Property-based tests for the topology crate: every mapping the log
//! parser and spatial analyses rely on must be a clean bijection.

use proptest::prelude::*;
use titan_topology::{
    gpu_index_to_node, is_service_slot, node_to_gpu_index, Location, NodeId, Torus,
    COMPUTE_NODES, TOTAL_SLOTS,
};

proptest! {
    /// NodeId -> Location -> NodeId is the identity on every slot.
    #[test]
    fn location_roundtrip(id in 0u32..TOTAL_SLOTS as u32) {
        let n = NodeId(id);
        prop_assert_eq!(n.location().node_id(), n);
    }

    /// Location -> cname -> Location is the identity.
    #[test]
    fn cname_roundtrip(id in 0u32..TOTAL_SLOTS as u32) {
        let loc = NodeId(id).location();
        let parsed = Location::parse_cname(&loc.cname()).unwrap();
        prop_assert_eq!(parsed, loc);
    }

    /// GPU dense index round-trips for compute nodes.
    #[test]
    fn gpu_index_roundtrip(id in 0u32..TOTAL_SLOTS as u32) {
        let n = NodeId(id);
        match node_to_gpu_index(n) {
            Some(g) => {
                prop_assert!(!is_service_slot(n));
                prop_assert!((g as usize) < COMPUTE_NODES);
                prop_assert_eq!(gpu_index_to_node(g), n);
            }
            None => prop_assert!(is_service_slot(n)),
        }
    }

    /// Torus coordinates are in bounds and shared by exactly the Gemini
    /// partner.
    #[test]
    fn torus_partner_shares_router(id in 0u32..TOTAL_SLOTS as u32) {
        let t = Torus;
        let n = NodeId(id);
        let c = t.coord_of(n);
        prop_assert!(titan_topology::torus::in_bounds(c));
        prop_assert_eq!(t.coord_of(n.gemini_partner()), c);
    }

    /// Hop distance is a metric: symmetric, zero iff equal coords, and
    /// bounded by the sum of half-extents.
    #[test]
    fn hop_distance_metric(a in 0u32..TOTAL_SLOTS as u32, b in 0u32..TOTAL_SLOTS as u32) {
        let t = Torus;
        let ca = t.coord_of(NodeId(a));
        let cb = t.coord_of(NodeId(b));
        let d1 = t.hop_distance(ca, cb);
        let d2 = t.hop_distance(cb, ca);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(d1 == 0, ca == cb);
        prop_assert!(d1 <= 12 + 8 + 12, "d={}", d1);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn parse_cname_total(s in "\\PC{0,24}") {
        let _ = Location::parse_cname(&s);
    }
}
