//! Intra-cabinet thermal model.
//!
//! The paper (Observations 1 and 4): "due to the power/cooling set up in
//! the Titan supercomputer higher cages are typically hotter than the
//! lower cages in the same cabinet … the GPUs in the uppermost cage are on
//! an average more than 10 °F hotter than the GPUs in the lowermost cage,
//! as per a snapshot taken by the nvidia-smi utility."
//!
//! The model gives every slot a steady-state GPU temperature:
//! base + cage offset + a small deterministic per-slot spread (airflow is
//! not perfectly even across a cage), and exposes an Arrhenius-flavoured
//! acceleration factor that the fault processes consume.

use serde::{Deserialize, Serialize};

use crate::geometry::NodeId;

/// Steady-state thermal model for the whole floor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Mean GPU temperature in the bottom cage, °F.
    pub base_f: f64,
    /// Added °F per cage level; the top cage (index 2) ends up
    /// `2 × cage_step_f` above the bottom one.
    pub cage_step_f: f64,
    /// Peak-to-peak deterministic spread across blades within a cage, °F.
    pub blade_spread_f: f64,
    /// Multiplicative error-rate increase per added °F, for
    /// temperature-sensitive fault classes (DBE, off-the-bus).
    pub rate_per_deg_f: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        // Defaults chosen so the top cage is +10.4 °F over the bottom —
        // "more than 10 °F" per the paper — around a typical K20X
        // operating point in an air-cooled XK7 cabinet.
        ThermalModel {
            base_f: 150.0,
            cage_step_f: 5.2,
            blade_spread_f: 3.0,
            rate_per_deg_f: 0.035,
        }
    }
}

impl ThermalModel {
    /// Steady-state GPU temperature at `node`, °F.
    pub fn gpu_temp_f(&self, node: NodeId) -> f64 {
        let loc = node.location();
        let cage = self.base_f + self.cage_step_f * loc.cage as f64;
        // Blades near the cage center run slightly hotter; deterministic
        // triangular profile, mean-zero across the cage.
        let center_dist = (loc.blade as f64 - 3.5).abs() / 3.5; // 0 center, 1 edge
        let blade = self.blade_spread_f * (0.5 - center_dist) * 0.5;
        cage + blade
    }

    /// Mean temperature of a whole cage, °F (blade profile integrates out).
    pub fn cage_mean_f(&self, cage: u8) -> f64 {
        self.base_f + self.cage_step_f * cage as f64 + self.blade_spread_f * 0.015625
    }

    /// Top-minus-bottom cage temperature difference, °F. Must exceed 10
    /// with the default parameters to match the paper.
    pub fn top_bottom_delta_f(&self) -> f64 {
        2.0 * self.cage_step_f
    }

    /// Error-rate acceleration factor at `node` relative to the bottom-cage
    /// baseline: exp(rate_per_deg_f × ΔT). 1.0 in the bottom cage.
    pub fn acceleration(&self, node: NodeId) -> f64 {
        let dt = self.gpu_temp_f(node) - self.base_f;
        (self.rate_per_deg_f * dt).exp()
    }

    /// Acceleration factor for a cage as a whole.
    pub fn cage_acceleration(&self, cage: u8) -> f64 {
        let dt = self.cage_step_f * cage as f64;
        (self.rate_per_deg_f * dt).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Location;

    fn node(cage: u8, blade: u8) -> NodeId {
        Location {
            row: 10,
            col: 4,
            cage,
            blade,
            node: 0,
        }
        .node_id()
    }

    #[test]
    fn top_cage_is_over_ten_f_hotter() {
        let m = ThermalModel::default();
        assert!(m.top_bottom_delta_f() > 10.0);
        let top = m.gpu_temp_f(node(2, 0));
        let bottom = m.gpu_temp_f(node(0, 0));
        assert!(top - bottom > 10.0);
    }

    #[test]
    fn temperature_monotone_in_cage() {
        let m = ThermalModel::default();
        for blade in 0..8 {
            let t0 = m.gpu_temp_f(node(0, blade));
            let t1 = m.gpu_temp_f(node(1, blade));
            let t2 = m.gpu_temp_f(node(2, blade));
            assert!(t0 < t1 && t1 < t2);
        }
    }

    #[test]
    fn blade_profile_peaks_in_center() {
        let m = ThermalModel::default();
        let center = m.gpu_temp_f(node(1, 3));
        let edge = m.gpu_temp_f(node(1, 0));
        assert!(center > edge);
        // Spread stays within the configured bound.
        assert!(center - edge <= m.blade_spread_f);
    }

    #[test]
    fn acceleration_baseline_and_ordering() {
        let m = ThermalModel::default();
        // Bottom-cage edge blade is the coolest — factor ~1.
        let base = m.acceleration(node(0, 0));
        assert!((base - 1.0).abs() < 0.05, "base {base}");
        let top = m.acceleration(node(2, 4));
        assert!(top > base);
        // Default parameters put the top cage at roughly 1.4x the
        // bottom-cage error rate — enough to be seen in cage tallies but
        // not overwhelming, consistent with Fig. 3(b)'s moderate skew.
        let ratio = m.cage_acceleration(2) / m.cage_acceleration(0);
        assert!((1.2..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cage_mean_close_to_slot_average() {
        let m = ThermalModel::default();
        for cage in 0..3u8 {
            let avg: f64 =
                (0..8).map(|b| m.gpu_temp_f(node(cage, b))).sum::<f64>() / 8.0;
            assert!((avg - m.cage_mean_f(cage)).abs() < 0.5);
        }
    }
}
