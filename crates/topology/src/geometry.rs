//! Node identity and physical coordinates, including Cray cname parsing.
//!
//! Cray names locations `cX-Yc C s S n N`: cabinet at column `X`, row `Y`,
//! cage `C` (0 = bottom, 2 = top), slot/blade `S`, node-within-blade `N`.
//! Titan console-log lines key events by cname, so the round trip
//! `Location -> cname -> Location` has to be exact — the log parser relies
//! on it.

use serde::{Deserialize, Serialize};

use crate::{
    BLADES_PER_CAGE, CAGES_PER_CABINET, COLS, NODES_PER_BLADE, NODES_PER_CABINET, NODES_PER_CAGE,
    ROWS, TOTAL_SLOTS,
};

/// Flat slot index in `0..TOTAL_SLOTS` (19,200), ordered row-major by
/// cabinet, then cage, blade, node-within-blade.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Decodes the physical coordinates of this slot.
    pub fn location(self) -> Location {
        let id = self.0 as usize;
        debug_assert!(id < TOTAL_SLOTS);
        let cab = id / NODES_PER_CABINET;
        let within = id % NODES_PER_CABINET;
        Location {
            row: (cab / COLS) as u8,
            col: (cab % COLS) as u8,
            cage: (within / NODES_PER_CAGE) as u8,
            blade: ((within % NODES_PER_CAGE) / NODES_PER_BLADE) as u8,
            node: (within % NODES_PER_BLADE) as u8,
        }
    }

    /// The Gemini router shared by this node and its neighbour.
    /// Nodes 0–1 of a blade share one router, nodes 2–3 the other.
    pub fn gemini_router(self) -> u32 {
        self.0 / 2
    }

    /// The other node on the same Gemini router.
    pub fn gemini_partner(self) -> NodeId {
        NodeId(self.0 ^ 1)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.location().cname())
    }
}

/// Physical coordinates of one node slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Cabinet row, `0..25`.
    pub row: u8,
    /// Cabinet column, `0..8`.
    pub col: u8,
    /// Cage within the cabinet, `0..3`; 0 is the bottom (coolest) cage.
    pub cage: u8,
    /// Blade (slot) within the cage, `0..8`.
    pub blade: u8,
    /// Node within the blade, `0..4`.
    pub node: u8,
}

impl Location {
    /// Re-encodes into the flat slot index. Inverse of [`NodeId::location`].
    pub fn node_id(&self) -> NodeId {
        debug_assert!(self.is_valid());
        let cab = self.row as usize * COLS + self.col as usize;
        let within = self.cage as usize * NODES_PER_CAGE
            + self.blade as usize * NODES_PER_BLADE
            + self.node as usize;
        NodeId((cab * NODES_PER_CABINET + within) as u32)
    }

    /// Row-major cabinet index in `0..200`.
    pub fn cabinet_index(&self) -> usize {
        self.row as usize * COLS + self.col as usize
    }

    /// Whether every coordinate is within the machine's bounds.
    pub fn is_valid(&self) -> bool {
        (self.row as usize) < ROWS
            && (self.col as usize) < COLS
            && (self.cage as usize) < CAGES_PER_CABINET
            && (self.blade as usize) < BLADES_PER_CAGE
            && (self.node as usize) < NODES_PER_BLADE
    }

    /// Cray cname, e.g. `c3-17c2s5n1` (column 3, row 17, cage 2, slot 5,
    /// node 1).
    pub fn cname(&self) -> String {
        format!(
            "c{}-{}c{}s{}n{}",
            self.col, self.row, self.cage, self.blade, self.node
        )
    }

    /// Parses a cname produced by [`Location::cname`]. Tolerates
    /// surrounding whitespace, nothing else — console-log fields are
    /// machine-generated.
    pub fn parse_cname(s: &str) -> Result<Location, ParseCnameError> {
        let s = s.trim();
        let bad = || ParseCnameError {
            input: s.to_string(),
        };
        let rest = s.strip_prefix('c').ok_or_else(bad)?;
        let (col, rest) = take_number(rest).ok_or_else(bad)?;
        let rest = rest.strip_prefix('-').ok_or_else(bad)?;
        let (row, rest) = take_number(rest).ok_or_else(bad)?;
        let rest = rest.strip_prefix('c').ok_or_else(bad)?;
        let (cage, rest) = take_number(rest).ok_or_else(bad)?;
        let rest = rest.strip_prefix('s').ok_or_else(bad)?;
        let (blade, rest) = take_number(rest).ok_or_else(bad)?;
        let rest = rest.strip_prefix('n').ok_or_else(bad)?;
        let (node, rest) = take_number(rest).ok_or_else(bad)?;
        if !rest.is_empty() {
            return Err(bad());
        }
        let loc = Location {
            row: row as u8,
            col: col as u8,
            cage: cage as u8,
            blade: blade as u8,
            node: node as u8,
        };
        if row > u8::MAX as u32 || col > u8::MAX as u32 || !loc.is_valid() {
            return Err(bad());
        }
        Ok(loc)
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "c{}-{}c{}s{}n{}",
            self.col, self.row, self.cage, self.blade, self.node
        )
    }
}

/// Error parsing a Cray cname.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCnameError {
    /// The offending input.
    pub input: String,
}

impl std::fmt::Display for ParseCnameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid cname: {:?}", self.input)
    }
}

impl std::error::Error for ParseCnameError {}

/// Splits a leading decimal number (at most 3 digits) off `s`.
fn take_number(s: &str) -> Option<(u32, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 || end > 3 {
        return None;
    }
    let (digits, rest) = s.split_at(end);
    digits.parse().ok().map(|n| (n, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TOTAL_SLOTS;

    #[test]
    fn id_location_roundtrip_exhaustive() {
        for i in 0..TOTAL_SLOTS as u32 {
            let n = NodeId(i);
            let loc = n.location();
            assert!(loc.is_valid());
            assert_eq!(loc.node_id(), n);
        }
    }

    #[test]
    fn cname_format() {
        let loc = Location {
            row: 17,
            col: 3,
            cage: 2,
            blade: 5,
            node: 1,
        };
        assert_eq!(loc.cname(), "c3-17c2s5n1");
        assert_eq!(format!("{loc}"), "c3-17c2s5n1");
    }

    #[test]
    fn cname_roundtrip_exhaustive() {
        for i in (0..TOTAL_SLOTS as u32).step_by(7) {
            let loc = NodeId(i).location();
            assert_eq!(Location::parse_cname(&loc.cname()).unwrap(), loc);
        }
    }

    #[test]
    fn cname_rejects_garbage() {
        for s in [
            "",
            "c3-17c2s5",
            "c3-17c2s5n1x",
            "x3-17c2s5n1",
            "c-17c2s5n1",
            "c3-17c9s5n1", // cage out of range
            "c8-17c2s5n1", // col out of range
            "c3-25c2s5n1", // row out of range
            "c3-17c2s8n1", // blade out of range
            "c3-17c2s5n4", // node out of range
            "c3--17c2s5n1",
            "c3-17c2s5n1 extra",
        ] {
            assert!(Location::parse_cname(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn cname_tolerates_whitespace() {
        assert!(Location::parse_cname("  c0-0c0s0n0 ").is_ok());
    }

    #[test]
    fn gemini_pairing() {
        let a = NodeId(10);
        let b = NodeId(11);
        assert_eq!(a.gemini_router(), b.gemini_router());
        assert_eq!(a.gemini_partner(), b);
        assert_eq!(b.gemini_partner(), a);
        // Nodes 0-1 and 2-3 of a blade are on different routers.
        assert_ne!(NodeId(0).gemini_router(), NodeId(2).gemini_router());
    }

    #[test]
    fn slot_order_is_cage_major_within_cabinet() {
        // First 32 slots of cabinet 0 are cage 0; next 32 cage 1; etc.
        assert_eq!(NodeId(0).location().cage, 0);
        assert_eq!(NodeId(31).location().cage, 0);
        assert_eq!(NodeId(32).location().cage, 1);
        assert_eq!(NodeId(64).location().cage, 2);
        assert_eq!(NodeId(95).location().cage, 2);
        assert_eq!(NodeId(96).location().cabinet_index(), 1);
    }
}
