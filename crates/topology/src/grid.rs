//! The 25 × 8 cabinet grid behind every spatial figure in the paper
//! (Figs. 3a, 5, 7, 12, 14).

use serde::{Deserialize, Serialize};

use crate::geometry::{Location, NodeId};
use crate::{CABINETS, COLS, ROWS};

/// A per-cabinet accumulator laid out as the machine-room floor:
/// `ROWS` rows × `COLS` columns of `f64` cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CabinetGrid {
    cells: Vec<f64>,
}

impl Default for CabinetGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl CabinetGrid {
    /// An all-zero grid.
    pub fn new() -> Self {
        CabinetGrid {
            cells: vec![0.0; CABINETS],
        }
    }

    /// Adds `w` to the cabinet containing `node`.
    pub fn add_node(&mut self, node: NodeId, w: f64) {
        self.cells[node.location().cabinet_index()] += w;
    }

    /// Adds `w` to the cabinet at `loc`.
    pub fn add_location(&mut self, loc: Location, w: f64) {
        self.cells[loc.cabinet_index()] += w;
    }

    /// Cell value at (row, col).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.cells[row * COLS + col]
    }

    /// Mutable cell at (row, col).
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        &mut self.cells[row * COLS + col]
    }

    /// Flat row-major view.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Per-column sums — the "alternate cabinets" stripe signature of
    /// Fig. 12 shows up here as an even/odd column imbalance.
    pub fn column_sums(&self) -> [f64; COLS] {
        let mut out = [0.0; COLS];
        for r in 0..ROWS {
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.get(r, c);
            }
        }
        out
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..ROWS)
            .map(|r| (0..COLS).map(|c| self.get(r, c)).sum())
            .collect()
    }

    /// Ratio of mass on even columns vs the even/odd mean; > 1 indicates
    /// the folded-torus striping. Returns `None` for an empty grid.
    pub fn even_column_bias(&self) -> Option<f64> {
        let sums = self.column_sums();
        let even: f64 = sums.iter().step_by(2).sum();
        let odd: f64 = sums.iter().skip(1).step_by(2).sum();
        let total = even + odd;
        if total == 0.0 {
            return None;
        }
        Some(even / (total / 2.0))
    }

    /// Alternating-column stripe contrast: |even-column mass − odd-column
    /// mass| / total. 0 for a column-balanced field; large when alternate
    /// cabinets carry more events (the Fig. 12 signature). `None` when
    /// the grid is empty.
    pub fn stripe_contrast(&self) -> Option<f64> {
        let sums = self.column_sums();
        let even: f64 = sums.iter().step_by(2).sum();
        let odd: f64 = sums.iter().skip(1).step_by(2).sum();
        let total = even + odd;
        if total == 0.0 {
            return None;
        }
        Some((even - odd).abs() / total)
    }

    /// Coefficient of variation across cells — the paper's "uneven spatial
    /// distribution" statements quantified. 0 for perfectly uniform.
    pub fn spatial_cv(&self) -> f64 {
        let n = self.cells.len() as f64;
        let mean = self.total() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .cells
            .iter()
            .map(|&c| (c - mean) * (c - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Index of the heaviest cell as (row, col), or `None` when empty.
    pub fn argmax(&self) -> Option<(usize, usize)> {
        if self.total() == 0.0 {
            return None;
        }
        let (mut bi, mut bv) = (0usize, f64::NEG_INFINITY);
        for (i, &v) in self.cells.iter().enumerate() {
            if v > bv {
                bi = i;
                bv = v;
            }
        }
        Some((bi / COLS, bi % COLS))
    }

    /// Merges another grid (parallel reduction).
    pub fn merge(&mut self, other: &CabinetGrid) {
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
    }
}

/// Per-cage tallies within cabinets — the paper's cage-level bar charts
/// (Figs. 3b, 5, 7, 15). Index 0 = bottom cage, 2 = top (hottest).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CageTally {
    /// Totals by cage, bottom to top.
    pub by_cage: [f64; 3],
}

impl CageTally {
    /// Adds `w` for an event at `node`.
    pub fn add_node(&mut self, node: NodeId, w: f64) {
        self.by_cage[node.location().cage as usize] += w;
    }

    /// Total across cages.
    pub fn total(&self) -> f64 {
        self.by_cage.iter().sum()
    }

    /// True when the top cage strictly dominates the bottom cage — the
    /// temperature-sensitivity signature of Observations 1 and 4.
    pub fn top_heavy(&self) -> bool {
        self.by_cage[2] > self.by_cage[0]
    }

    /// Max/min cage ratio (∞ when a cage is empty); a rough uniformity
    /// check used for the distinct-SBE-card analysis of Fig. 15(b).
    pub fn imbalance(&self) -> f64 {
        let max = self.by_cage.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.by_cage.iter().cloned().fold(f64::MAX, f64::min);
        if min == 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid() {
        let g = CabinetGrid::new();
        assert_eq!(g.total(), 0.0);
        assert_eq!(g.even_column_bias(), None);
        assert_eq!(g.argmax(), None);
        assert_eq!(g.spatial_cv(), 0.0);
    }

    #[test]
    fn add_and_read_back() {
        let mut g = CabinetGrid::new();
        let loc = Location {
            row: 3,
            col: 5,
            cage: 1,
            blade: 2,
            node: 0,
        };
        g.add_location(loc, 2.0);
        g.add_node(loc.node_id(), 1.0);
        assert_eq!(g.get(3, 5), 3.0);
        assert_eq!(g.total(), 3.0);
        assert_eq!(g.argmax(), Some((3, 5)));
    }

    #[test]
    fn column_sums_and_bias() {
        let mut g = CabinetGrid::new();
        // All mass on even columns.
        for r in 0..ROWS {
            for c in [0usize, 2, 4, 6] {
                *g.get_mut(r, c) += 1.0;
            }
        }
        let bias = g.even_column_bias().unwrap();
        assert!((bias - 2.0).abs() < 1e-12, "bias {bias}");
        let sums = g.column_sums();
        assert_eq!(sums[0], 25.0);
        assert_eq!(sums[1], 0.0);
        // Each row carries exactly its four even-column units.
        let rows = g.row_sums();
        assert_eq!(rows.len(), ROWS);
        assert!(rows.iter().all(|&s| (s - 4.0).abs() < 1e-12), "{rows:?}");
    }

    #[test]
    fn uniform_grid_has_zero_cv_and_unit_bias() {
        let mut g = CabinetGrid::new();
        for r in 0..ROWS {
            for c in 0..COLS {
                *g.get_mut(r, c) = 4.0;
            }
        }
        assert!(g.spatial_cv() < 1e-12);
        assert!((g.even_column_bias().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = CabinetGrid::new();
        let mut b = CabinetGrid::new();
        *a.get_mut(0, 0) = 1.0;
        *b.get_mut(0, 0) = 2.0;
        *b.get_mut(24, 7) = 5.0;
        a.merge(&b);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(24, 7), 5.0);
    }

    #[test]
    fn cage_tally() {
        let mut t = CageTally::default();
        let top = Location {
            row: 0,
            col: 0,
            cage: 2,
            blade: 0,
            node: 0,
        };
        let bottom = Location {
            row: 0,
            col: 0,
            cage: 0,
            blade: 0,
            node: 0,
        };
        t.add_node(top.node_id(), 3.0);
        t.add_node(bottom.node_id(), 1.0);
        assert!(t.top_heavy());
        assert_eq!(t.total(), 4.0);
        assert!(t.imbalance().is_infinite()); // middle cage empty
        t.by_cage[1] = 1.0;
        assert_eq!(t.imbalance(), 3.0);
    }
}
