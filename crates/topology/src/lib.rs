//! # titan-topology
//!
//! Physical organization of the Titan supercomputer (Fig. 1 of the paper)
//! as a typed, allocation-free coordinate system.
//!
//! Titan is a Cray XK7: the basic building block is a *node* (one AMD
//! Opteron 6274 + one NVIDIA K20X). Four nodes form a *blade* (slot), two
//! nodes within a blade share one Gemini router, eight blades form a
//! *cage*, three cages form a *cabinet*, and 200 cabinets stand in 25 rows
//! by 8 columns. That yields 19,200 node slots; 512 of them are service/IO
//! nodes without GPUs, leaving the paper's 18,688 GPU compute nodes.
//!
//! The crate provides:
//!
//! * [`NodeId`] / [`Location`] — a bijection between flat slot indices and
//!   physical coordinates, plus Cray `cX-Yc_s_n_` cnames ([`Location::cname`]).
//! * [`torus`] — the Gemini 3-D torus (25 × 16 × 24 routers) and the
//!   *folded* cabling order whose alternate-cabinet job striping the paper
//!   observes in Fig. 12.
//! * [`temperature`] — the intra-cabinet thermal gradient ("GPUs in the
//!   uppermost cage are on average more than 10 °F hotter than the GPUs in
//!   the lowermost cage").
//! * [`grid`] — the 25 × 8 cabinet grid used by every spatial figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod grid;
pub mod temperature;
pub mod torus;

pub use geometry::{Location, NodeId, ParseCnameError};
pub use grid::CabinetGrid;
pub use temperature::ThermalModel;
pub use torus::{GeminiCoord, Torus};

/// Cabinet rows on the machine-room floor.
pub const ROWS: usize = 25;
/// Cabinet columns on the machine-room floor.
pub const COLS: usize = 8;
/// Total cabinets (25 × 8).
pub const CABINETS: usize = ROWS * COLS;
/// Cages per cabinet, vertically stacked (cage 2 is the hottest, on top).
pub const CAGES_PER_CABINET: usize = 3;
/// Blades (slots) per cage.
pub const BLADES_PER_CAGE: usize = 8;
/// Nodes per blade.
pub const NODES_PER_BLADE: usize = 4;
/// Nodes per cage.
pub const NODES_PER_CAGE: usize = BLADES_PER_CAGE * NODES_PER_BLADE;
/// Nodes per cabinet.
pub const NODES_PER_CABINET: usize = CAGES_PER_CABINET * NODES_PER_CAGE;
/// Total node slots on the floor (19,200).
pub const TOTAL_SLOTS: usize = CABINETS * NODES_PER_CABINET;
/// Service/IO node slots (no GPU). 512 on the real machine.
pub const SERVICE_NODES: usize = 512;
/// GPU compute nodes — the paper's 18,688.
pub const COMPUTE_NODES: usize = TOTAL_SLOTS - SERVICE_NODES;
/// Gemini routers (two nodes each).
pub const GEMINI_ROUTERS: usize = TOTAL_SLOTS / 2;

// The constants must reproduce the paper's headline numbers.
const _: () = assert!(COMPUTE_NODES == 18_688);
const _: () = assert!(CABINETS == 200);
const _: () = assert!(TOTAL_SLOTS == 19_200);
const _: () = assert!(GEMINI_ROUTERS == 9_600);

/// Number of cabinets that host service blades under our synthetic
/// placement rule (see [`is_service_slot`]).
const SERVICE_CABINETS: usize = SERVICE_NODES / NODES_PER_BLADE; // 128

/// True when the slot is a service/IO node (no GPU).
///
/// On the real machine, service blades are scattered per the site's I/O
/// plan, which is not public; we use a deterministic synthetic rule —
/// cage 0, blade 0 of the first 128 cabinets in row-major order
/// (128 × 4 = 512 slots) — documented in DESIGN.md as a substitution. The
/// analyses never depend on *which* slots are service nodes, only that
/// exactly 18,688 slots carry GPUs.
pub fn is_service_slot(node: NodeId) -> bool {
    let loc = node.location();
    loc.cage == 0 && loc.blade == 0 && loc.cabinet_index() < SERVICE_CABINETS
}

/// Iterator over all compute (GPU-bearing) node ids in slot order.
pub fn compute_nodes() -> impl Iterator<Item = NodeId> {
    (0..TOTAL_SLOTS as u32)
        .map(NodeId)
        .filter(|n| !is_service_slot(*n))
}

/// Dense index of a compute node's GPU slot in `0..COMPUTE_NODES`, or
/// `None` for a service slot. The inverse is [`gpu_index_to_node`].
pub fn node_to_gpu_index(node: NodeId) -> Option<u32> {
    if is_service_slot(node) {
        return None;
    }
    let id = node.0 as usize;
    let cab = id / NODES_PER_CABINET;
    // Service slots preceding `id`: 4 per service cabinet fully before it,
    // plus this cabinet's own 4 when it is a service cabinet (a non-service
    // node in such a cabinet always sits after its blade-0 service slots).
    let service_before = if cab < SERVICE_CABINETS {
        cab * NODES_PER_BLADE + NODES_PER_BLADE
    } else {
        SERVICE_CABINETS * NODES_PER_BLADE
    };
    Some((id - service_before) as u32)
}

/// Inverse of [`node_to_gpu_index`].
pub fn gpu_index_to_node(gpu: u32) -> NodeId {
    debug_assert!((gpu as usize) < COMPUTE_NODES);
    let gpu = gpu as usize;
    const EARLY: usize = NODES_PER_CABINET - NODES_PER_BLADE; // 92 compute slots
    const EARLY_TOTAL: usize = SERVICE_CABINETS * EARLY; // 11,776
    if gpu < EARLY_TOTAL {
        let cab = gpu / EARLY;
        let within = gpu % EARLY;
        NodeId((cab * NODES_PER_CABINET + within + NODES_PER_BLADE) as u32)
    } else {
        let rest = gpu - EARLY_TOTAL;
        let cab = SERVICE_CABINETS + rest / NODES_PER_CABINET;
        let within = rest % NODES_PER_CABINET;
        NodeId((cab * NODES_PER_CABINET + within) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_counts() {
        assert_eq!(compute_nodes().count(), COMPUTE_NODES);
        assert_eq!(
            (0..TOTAL_SLOTS as u32)
                .filter(|&i| is_service_slot(NodeId(i)))
                .count(),
            SERVICE_NODES
        );
    }

    #[test]
    fn gpu_index_is_dense_bijection() {
        let mut next = 0u32;
        for node in compute_nodes() {
            let g = node_to_gpu_index(node).expect("compute node has GPU");
            assert_eq!(g, next, "gpu indices must be dense in slot order");
            assert_eq!(gpu_index_to_node(g), node);
            next += 1;
        }
        assert_eq!(next as usize, COMPUTE_NODES);
    }

    #[test]
    fn service_slots_have_no_gpu_index() {
        for i in 0..TOTAL_SLOTS as u32 {
            let n = NodeId(i);
            assert_eq!(node_to_gpu_index(n).is_none(), is_service_slot(n));
        }
    }
}
