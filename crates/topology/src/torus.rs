//! The Gemini 3-D torus and Titan's folded cabling.
//!
//! Every pair of nodes shares a Gemini router; the 9,600 routers form a
//! 25 × 16 × 24 torus. Crucially for Fig. 12 of the paper, the *physical*
//! cabling folds the torus so that cables between logically adjacent
//! routers stay short: logically consecutive Y-coordinates land in
//! *alternating* physical cabinet columns. Because ALPS allocates job
//! nodes in torus order, one job's nodes stripe across alternate cabinets
//! — the paper: "both Fig. 12 (top) and (bottom) show a distinct pattern
//! where alternate cabinets have greater event density. This is due to
//! folded-torus cabling used in Titan".

use serde::{Deserialize, Serialize};

use crate::geometry::NodeId;
use crate::{COLS, ROWS};

/// Torus extent in X (cabinet rows).
pub const DIM_X: usize = ROWS; // 25
/// Torus extent in Y (2 per cabinet column).
pub const DIM_Y: usize = COLS * 2; // 16
/// Torus extent in Z (24 routers per cabinet column slice).
pub const DIM_Z: usize = 24;

const _: () = assert!(DIM_X * DIM_Y * DIM_Z == 9_600);

/// Logical Gemini coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GeminiCoord {
    /// Row dimension, `0..25`.
    pub x: u8,
    /// Folded column dimension, `0..16`.
    pub y: u8,
    /// Intra-cabinet dimension (cage·8 + blade), `0..24`.
    pub z: u8,
}

/// The Gemini torus: coordinate mapping and the allocation order the
/// scheduler walks.
#[derive(Debug, Clone, Copy, Default)]
pub struct Torus;

impl Torus {
    /// Logical coordinates of a node's router.
    ///
    /// Mapping (a simplification of Cray's, but dimension-exact):
    /// * `x` = cabinet row;
    /// * `z` = cage·8 + blade (24 per cabinet);
    /// * `y` = 2·fold⁻¹(column) + (router-within-blade), where blade nodes
    ///   0–1 sit on router 0 and nodes 2–3 on router 1, and fold⁻¹ undoes
    ///   the physical cabling fold (see [`Torus::physical_col_of_y`]) —
    ///   logically adjacent Y live in *alternating* physical columns.
    pub fn coord_of(&self, node: NodeId) -> GeminiCoord {
        let loc = node.location();
        let router_in_blade = (loc.node / 2) as u8;
        GeminiCoord {
            x: loc.row,
            y: Self::logical_pair_of_col(loc.col) * 2 + router_in_blade,
            z: loc.cage * 8 + loc.blade,
        }
    }

    /// Inverse of the cabling fold: physical column → logical column pair,
    /// so that `physical_col_of_y(logical_pair_of_col(c) * 2) == c`.
    fn logical_pair_of_col(col: u8) -> u8 {
        if col % 2 == 0 {
            col / 2 // 0,2,4,6 -> 0,1,2,3 (the outbound run)
        } else {
            7 - col / 2 // 7,5,3,1 -> 4,5,6,7 (the return run)
        }
    }

    /// Physical cabinet column hosting logical Y coordinate `y`.
    ///
    /// The fold: logical order 0,1,2,…,15 maps to physical columns
    /// 0,0,2,2,4,4,6,6,7,7,5,5,3,3,1,1 — out along even columns, back
    /// along odd ones, exactly like folded torus cabling. Consecutive
    /// *cabinet-changing* steps in Y therefore skip a physical column,
    /// which is what smears one job across alternating cabinets.
    pub fn physical_col_of_y(&self, y: u8) -> u8 {
        let pair = y / 2; // 0..8: logical column index
        if pair < 4 {
            pair * 2 // 0,2,4,6
        } else {
            15 - pair * 2 // pair 4..8 -> 7,5,3,1
        }
    }

    /// The scheduler's node allocation order: all compute nodes sorted by
    /// (y, z, x, node-within-router) with Y varying *slowest* in logical
    /// order.
    ///
    /// Walking whole Y-planes keeps a job compact on the torus (few Y
    /// hops). Because the physical fold maps consecutive logical Y to
    /// *alternating cabinet columns*, a job spanning several Y-planes
    /// covers alternating columns of the floor — the mechanism behind
    /// Fig. 12's striping: "nodes within the same job \[are\] allocated in
    /// this alternating manner in the 3-D torus Gemini interconnect
    /// resulting in such a pattern."
    pub fn allocation_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = crate::compute_nodes().collect();
        order.sort_by_key(|&n| {
            let c = self.coord_of(n);
            let within = n.0 & 1; // node within router
            ((c.y as u32) << 16) | ((c.z as u32) << 11) | ((c.x as u32) << 1) | within
        });
        debug_assert_eq!(order.len(), crate::COMPUTE_NODES);
        order
    }

    /// Hop distance between two routers on the torus (with wraparound),
    /// the metric Gemini routing actually minimizes.
    pub fn hop_distance(&self, a: GeminiCoord, b: GeminiCoord) -> u32 {
        fn axis(a: u8, b: u8, dim: usize) -> u32 {
            let d = (a as i32 - b as i32).unsigned_abs();
            d.min(dim as u32 - d)
        }
        axis(a.x, b.x, DIM_X) + axis(a.y, b.y, DIM_Y) + axis(a.z, b.z, DIM_Z)
    }
}

/// Validates a coordinate against the torus extents.
pub fn in_bounds(c: GeminiCoord) -> bool {
    (c.x as usize) < DIM_X && (c.y as usize) < DIM_Y && (c.z as usize) < DIM_Z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TOTAL_SLOTS;
    use std::collections::HashSet;

    #[test]
    fn coords_in_bounds_exhaustive() {
        let t = Torus;
        for i in 0..TOTAL_SLOTS as u32 {
            assert!(in_bounds(t.coord_of(NodeId(i))));
        }
    }

    #[test]
    fn two_nodes_per_router() {
        let t = Torus;
        let mut seen: std::collections::HashMap<GeminiCoord, u32> = Default::default();
        for i in 0..TOTAL_SLOTS as u32 {
            *seen.entry(t.coord_of(NodeId(i))).or_default() += 1;
        }
        assert_eq!(seen.len(), 9_600);
        assert!(seen.values().all(|&c| c == 2));
    }

    #[test]
    fn fold_is_a_permutation_of_columns() {
        let t = Torus;
        let cols: HashSet<u8> = (0..16).map(|y| t.physical_col_of_y(y)).collect();
        assert_eq!(cols, (0..8).collect());
    }

    #[test]
    fn fold_alternates_physical_columns() {
        // Walking logical column pairs 0..8 must yield physical columns
        // that always differ by 2 (mod edge turnaround) — never adjacent.
        let t = Torus;
        let phys: Vec<u8> = (0..8).map(|p| t.physical_col_of_y(p * 2)).collect();
        assert_eq!(phys, vec![0, 2, 4, 6, 7, 5, 3, 1]);
        for w in phys.windows(2) {
            let d = (w[0] as i32 - w[1] as i32).abs();
            assert!(d == 2 || d == 1 && (w[0] == 6 || w[0] == 7), "{w:?}");
        }
    }

    #[test]
    fn allocation_order_is_complete_and_unique() {
        let order = Torus.allocation_order();
        assert_eq!(order.len(), crate::COMPUTE_NODES);
        let set: HashSet<NodeId> = order.iter().copied().collect();
        assert_eq!(set.len(), crate::COMPUTE_NODES);
        assert!(order.iter().all(|&n| !crate::is_service_slot(n)));
    }

    #[test]
    fn y_plane_is_single_column() {
        // One Y-plane of the order (~1168 compute nodes) lives in exactly
        // one physical column — small jobs are column-local (the Fig. 12
        // middle panel's "debug jobs unevenly distributed").
        let order = Torus.allocation_order();
        let window = &order[100..1100];
        let distinct: HashSet<u8> = window.iter().map(|n| n.location().col).collect();
        assert_eq!(distinct.len(), 1, "{distinct:?}");
    }

    #[test]
    fn large_job_window_stripes_alternating_columns() {
        // A multi-Y-plane window (a capability job) covers alternating
        // physical columns — the Fig. 12 stripe mechanism.
        let order = Torus.allocation_order();
        // Two Y-planes share a column (one per router), so eight planes
        // span four alternating columns.
        let window = &order[0..8 * 1168];
        let mut cols: Vec<u8> = window.iter().map(|n| n.location().col).collect();
        cols.dedup();
        let distinct: HashSet<u8> = cols.iter().copied().collect();
        assert!(distinct.len() >= 3, "window too local: {cols:?}");
        // Column transitions skip a column (|Δ| == 2): alternate cabinets.
        for w in cols.windows(2) {
            let d = (w[0] as i32 - w[1] as i32).abs();
            assert!(d == 2 || d == 1 && (w[0].max(w[1]) == 7), "{cols:?}");
        }
    }

    #[test]
    fn hop_distance_wraps() {
        let t = Torus;
        let a = GeminiCoord { x: 0, y: 0, z: 0 };
        let b = GeminiCoord { x: 24, y: 15, z: 23 };
        // Each axis wraps to distance 1.
        assert_eq!(t.hop_distance(a, b), 3);
        assert_eq!(t.hop_distance(a, a), 0);
        // Symmetry.
        let c = GeminiCoord { x: 10, y: 5, z: 12 };
        assert_eq!(t.hop_distance(a, c), t.hop_distance(c, a));
    }
}
