//! Property-based tests for the workload substrate: the scheduler must
//! uphold its invariants for arbitrary submission streams.

use proptest::prelude::*;
use titan_workload::{JobSpec, WorkloadSchedule};

fn arb_stream(max_jobs: usize) -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (
            0u64..30 * 86_400,  // submit
            1u32..4_000,        // nodes
            60u64..12 * 3_600,  // wall
            0u32..40,           // user
            any::<bool>(),      // debug
        ),
        0..max_jobs,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|j| j.0);
        v.into_iter()
            .enumerate()
            .map(|(i, (submit, nodes, wall, user, is_debug))| JobSpec {
                apid: 1_000_000 + i as u64,
                user,
                nodes,
                submit,
                wall,
                mem_max_bytes: 1 << 30,
                gpu_util: 0.5,
                is_debug,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Placement never oversubscribes a node, never shrinks a job, and
    /// never starts it before submission.
    #[test]
    fn scheduler_invariants(stream in arb_stream(60)) {
        let window = 40 * 86_400;
        let n_jobs = stream.len();
        let schedule = WorkloadSchedule::place(stream, window);
        prop_assert!(schedule.jobs.len() + schedule.dropped == n_jobs);

        for j in &schedule.jobs {
            prop_assert!(j.start >= j.spec.submit);
            prop_assert!(j.end <= window);
            prop_assert_eq!(j.nodes.len(), j.spec.nodes as usize);
        }

        // No node is double-booked: per-node intervals must not overlap.
        let timelines = schedule.node_timelines();
        for tl in timelines.iter() {
            for w in tl.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "double booking: {:?} {:?}", w[0], w[1]);
            }
        }
    }

    /// Jobs small enough always run eventually (FIFO queue drains) when
    /// the machine can hold them at all.
    #[test]
    fn small_jobs_never_dropped(count in 1usize..40) {
        let stream: Vec<JobSpec> = (0..count)
            .map(|i| JobSpec {
                apid: i as u64,
                user: 0,
                nodes: 16,
                submit: (i as u64) * 60,
                wall: 600,
                mem_max_bytes: 1 << 20,
                gpu_util: 0.5,
                is_debug: false,
            })
            .collect();
        let schedule = WorkloadSchedule::place(stream, 10 * 86_400);
        prop_assert_eq!(schedule.dropped, 0);
        prop_assert_eq!(schedule.jobs.len(), count);
    }
}
