//! End-to-end workload generation: submission stream → placed, time-
//! ordered schedule.
//!
//! A tiny event-driven scheduler: jobs start at submission when enough
//! nodes are free, otherwise they queue FIFO and start as releases free
//! capacity. Output is the [`WorkloadSchedule`] the fleet simulator and
//! the job logs are built from.

use std::collections::{BinaryHeap, VecDeque};

use rand::Rng;
use serde::{Deserialize, Serialize};
use titan_conlog::time::{SimTime, STUDY_SECONDS};
use titan_topology::NodeId;

use crate::allocation::TorusAllocator;
use crate::jobs::{JobSizer, JobSpec};
use crate::users::UserPopulation;

/// Generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Users in the population.
    pub n_users: usize,
    /// Mean job submissions per day.
    pub jobs_per_day: f64,
    /// Generation window, seconds from the study epoch.
    pub window: SimTime,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            n_users: 400,
            jobs_per_day: 110.0,
            window: STUDY_SECONDS,
        }
    }
}

/// One placed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// The sized spec.
    pub spec: JobSpec,
    /// Actual start (≥ submit).
    pub start: SimTime,
    /// Actual end.
    pub end: SimTime,
    /// Placed nodes, in allocation order.
    pub nodes: Vec<NodeId>,
}

impl ScheduledJob {
    /// Wall-clock seconds actually run.
    pub fn wall_seconds(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the job occupies `node` at time `t`.
    pub fn occupies(&self, node: NodeId, t: SimTime) -> bool {
        t >= self.start && t < self.end && self.nodes.contains(&node)
    }
}

/// The full placed workload, sorted by start time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSchedule {
    /// Jobs sorted by start.
    pub jobs: Vec<ScheduledJob>,
    /// Jobs that never started (machine saturated through window end).
    pub dropped: usize,
}

impl WorkloadSchedule {
    /// Generates the schedule.
    pub fn generate<R: Rng + ?Sized>(config: &ScheduleConfig, rng: &mut R) -> Self {
        let population = UserPopulation::generate(config.n_users, rng);
        let stream = JobSizer.generate_stream(
            &population,
            config.jobs_per_day,
            config.window,
            rng,
        );
        Self::place(stream, config.window)
    }

    /// Places an explicit submission stream (exposed for tests and
    /// ablations).
    pub fn place(stream: Vec<JobSpec>, window: SimTime) -> Self {
        let mut alloc = TorusAllocator::new();
        let mut jobs: Vec<ScheduledJob> = Vec::with_capacity(stream.len());
        // Min-heap of (end_time, job_index) for releases.
        let mut running: BinaryHeap<std::cmp::Reverse<(SimTime, usize)>> = BinaryHeap::new();
        let mut queue: VecDeque<JobSpec> = VecDeque::new();
        let mut dropped = 0usize;

        let try_start =
            |spec: JobSpec,
             now: SimTime,
             alloc: &mut TorusAllocator,
             jobs: &mut Vec<ScheduledJob>,
             running: &mut BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>|
             -> Option<JobSpec> {
                match alloc.allocate(spec.nodes as usize) {
                    Some(nodes) => {
                        let start = now;
                        let end = (start + spec.wall).min(window);
                        let idx = jobs.len();
                        jobs.push(ScheduledJob {
                            spec,
                            start,
                            end,
                            nodes,
                        });
                        running.push(std::cmp::Reverse((end, idx)));
                        None
                    }
                    None => Some(spec),
                }
            };

        for spec in stream {
            let now = spec.submit;
            // Drain releases up to the submission instant, starting queued
            // jobs as capacity frees.
            while let Some(&std::cmp::Reverse((end, idx))) = running.peek() {
                if end > now {
                    break;
                }
                running.pop();
                let nodes = std::mem::take(&mut jobs[idx].nodes);
                alloc.release(&nodes);
                jobs[idx].nodes = nodes;
                // FIFO backfill: start as many queued jobs as now fit.
                while let Some(q) = queue.pop_front() {
                    match try_start(q, end, &mut alloc, &mut jobs, &mut running) {
                        None => {}
                        Some(q) => {
                            queue.push_front(q);
                            break;
                        }
                    }
                }
            }
            if let Some(spec) = try_start(spec, now, &mut alloc, &mut jobs, &mut running) {
                queue.push_back(spec);
            }
        }
        dropped += queue.len();

        jobs.sort_by_key(|j| j.start);
        WorkloadSchedule { jobs, dropped }
    }

    /// Total node-hours scheduled — the paper's "280 million node hours"
    /// scale check (ours is smaller; shape, not scale, is the target).
    pub fn total_node_hours(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.nodes.len() as f64 * j.wall_seconds() as f64 / 3600.0)
            .sum()
    }

    /// Builds a per-node occupancy timeline: for each slot, the list of
    /// (start, end, job index) sorted by start. The simulator resolves
    /// "which job was on node n at time t" through this.
    pub fn node_timelines(&self) -> Vec<Vec<(SimTime, SimTime, u32)>> {
        let mut tl: Vec<Vec<(SimTime, SimTime, u32)>> =
            vec![Vec::new(); titan_topology::TOTAL_SLOTS];
        for (i, j) in self.jobs.iter().enumerate() {
            for n in &j.nodes {
                tl[n.0 as usize].push((j.start, j.end, i as u32));
            }
        }
        for v in &mut tl {
            v.sort_unstable_by_key(|&(s, _, _)| s);
        }
        tl
    }

    /// Looks up the job occupying `node` at `t` given the timelines from
    /// [`node_timelines`](Self::node_timelines).
    pub fn job_at(
        timelines: &[Vec<(SimTime, SimTime, u32)>],
        node: NodeId,
        t: SimTime,
    ) -> Option<u32> {
        let tl = &timelines[node.0 as usize];
        // Binary search for the last interval starting at or before t.
        let i = tl.partition_point(|&(s, _, _)| s <= t);
        if i == 0 {
            return None;
        }
        let (s, e, idx) = tl[i - 1];
        (t >= s && t < e).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_schedule() -> WorkloadSchedule {
        let mut rng = StdRng::seed_from_u64(31337);
        let config = ScheduleConfig {
            n_users: 50,
            jobs_per_day: 80.0,
            window: 30 * 86_400,
        };
        WorkloadSchedule::generate(&config, &mut rng)
    }

    #[test]
    fn jobs_run_within_window_and_walls() {
        let s = small_schedule();
        assert!(!s.jobs.is_empty());
        for j in &s.jobs {
            assert!(j.start >= j.spec.submit);
            assert!(j.end <= 30 * 86_400);
            assert!(j.wall_seconds() <= j.spec.wall);
            assert_eq!(j.nodes.len(), j.spec.nodes as usize);
            if let Some(&n) = j.nodes.first() {
                assert!(j.occupies(n, j.start));
                assert!(!j.occupies(n, j.end), "end is exclusive");
            }
        }
    }

    #[test]
    fn no_node_oversubscription() {
        let s = small_schedule();
        // Sweep: at any job start, the set of concurrently running jobs
        // must not share nodes.
        let timelines = s.node_timelines();
        for (slot, tl) in timelines.iter().enumerate() {
            for w in tl.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "node {slot} double-booked: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn job_at_resolves() {
        let s = small_schedule();
        let timelines = s.node_timelines();
        let j = &s.jobs[s.jobs.len() / 2];
        let node = j.nodes[0];
        let mid = (j.start + j.end) / 2;
        let idx = WorkloadSchedule::job_at(&timelines, node, mid).expect("job found");
        assert_eq!(s.jobs[idx as usize].spec.apid, j.spec.apid);
        // Before machine start: nothing.
        assert_eq!(WorkloadSchedule::job_at(&timelines, node, 0), None);
    }

    #[test]
    fn queued_jobs_start_after_release() {
        // Saturate the machine with one huge job, then submit another: it
        // must start when the first ends, not be dropped.
        let big = JobSpec {
            apid: 1,
            user: 0,
            nodes: 18_000,
            submit: 0,
            wall: 3_600,
            mem_max_bytes: 1 << 30,
            gpu_util: 0.9,
            is_debug: false,
        };
        let second = JobSpec {
            apid: 2,
            nodes: 10_000,
            submit: 10,
            ..big.clone()
        };
        let third = JobSpec {
            apid: 3,
            nodes: 100,
            submit: 7_200,
            ..big.clone()
        };
        let s = WorkloadSchedule::place(vec![big, second, third], 30 * 86_400);
        assert_eq!(s.jobs.len(), 3);
        assert_eq!(s.dropped, 0);
        let j2 = s.jobs.iter().find(|j| j.spec.apid == 2).unwrap();
        assert_eq!(j2.start, 3_600, "second job starts at first release");
    }

    #[test]
    fn node_hours_positive_and_sane() {
        let s = small_schedule();
        let nh = s.total_node_hours();
        // 30 days of the full machine is ~13.5M node-hours; we should be
        // well under that but clearly nonzero.
        assert!(nh > 10_000.0, "{nh}");
        assert!(nh < 13_453_560.0, "{nh}");
    }

    #[test]
    fn determinism() {
        let a = small_schedule();
        let b = small_schedule();
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.jobs[0], b.jobs[0]);
    }
}
