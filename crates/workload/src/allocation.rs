//! ALPS-style node placement in folded-torus order.
//!
//! Titan's scheduler walked the Gemini torus when placing a job so that
//! communicating ranks stayed close; because the torus is *physically
//! folded* into the cabinet rows, one job's nodes land in alternating
//! cabinets — the Fig. 12 striping. The allocator hands out free nodes in
//! [`titan_topology::Torus::allocation_order`], first-fit.

use titan_topology::{NodeId, Torus, COMPUTE_NODES};

/// Free-list allocator over the torus allocation order.
#[derive(Debug, Clone)]
pub struct TorusAllocator {
    /// Compute nodes in allocation order.
    order: Vec<NodeId>,
    /// `free[i]` — whether `order[i]` is currently free.
    free: Vec<bool>,
    free_count: usize,
    /// Rotating scan cursor: jobs start their search where the last one
    /// ended, spreading load across the machine like real backfill does.
    cursor: usize,
}

impl Default for TorusAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl TorusAllocator {
    /// A fully free machine.
    pub fn new() -> Self {
        let order = Torus.allocation_order();
        let n = order.len();
        TorusAllocator {
            order,
            free: vec![true; n],
            free_count: n,
            cursor: 0,
        }
    }

    /// Currently free node count.
    pub fn free_nodes(&self) -> usize {
        self.free_count
    }

    /// Machine utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_count as f64 / COMPUTE_NODES as f64
    }

    /// Allocates `n` nodes in torus order starting at the cursor,
    /// wrapping. Returns `None` (and allocates nothing) when fewer than
    /// `n` nodes are free.
    pub fn allocate(&mut self, n: usize) -> Option<Vec<NodeId>> {
        if n == 0 || n > self.free_count {
            return None;
        }
        let len = self.order.len();
        let mut picked = Vec::with_capacity(n);
        let mut idx = self.cursor;
        let mut scanned = 0;
        while picked.len() < n && scanned < len {
            if self.free[idx] {
                self.free[idx] = false;
                picked.push(self.order[idx]);
            }
            idx = (idx + 1) % len;
            scanned += 1;
        }
        debug_assert_eq!(picked.len(), n, "free_count said enough nodes exist");
        self.cursor = idx;
        self.free_count -= n;
        Some(picked)
    }

    /// Releases a previously allocated node set.
    pub fn release(&mut self, nodes: &[NodeId]) {
        // Index into `order` by node id for O(1) release.
        // Built lazily the first time; order never changes.
        for node in nodes {
            let i = self.order_index(*node);
            debug_assert!(!self.free[i], "double release of {node:?}");
            if !self.free[i] {
                self.free[i] = true;
                self.free_count += 1;
            }
        }
    }

    fn order_index(&self, node: NodeId) -> usize {
        // The allocation order is a permutation; invert by search over a
        // cached map. A linear scan would be O(n) per release, so build
        // the inverse once.
        // NOTE: stored as a function-local static-like field would need
        // interior mutability; instead compute the inverse eagerly.
        self.inverse()[node.0 as usize]
    }

    fn inverse(&self) -> &Vec<usize> {
        // Inverse permutation cache, built on first use.
        use std::sync::OnceLock;
        static INVERSE: OnceLock<Vec<usize>> = OnceLock::new();
        INVERSE.get_or_init(|| {
            let mut inv = vec![usize::MAX; titan_topology::TOTAL_SLOTS];
            for (i, n) in self.order.iter().enumerate() {
                inv[n.0 as usize] = i;
            }
            inv
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut a = TorusAllocator::new();
        assert_eq!(a.free_nodes(), COMPUTE_NODES);
        let x = a.allocate(100).unwrap();
        assert_eq!(x.len(), 100);
        assert_eq!(a.free_nodes(), COMPUTE_NODES - 100);
        a.release(&x);
        assert_eq!(a.free_nodes(), COMPUTE_NODES);
    }

    #[test]
    fn no_double_allocation() {
        let mut a = TorusAllocator::new();
        let x = a.allocate(5000).unwrap();
        let y = a.allocate(5000).unwrap();
        let sx: HashSet<NodeId> = x.iter().copied().collect();
        assert!(y.iter().all(|n| !sx.contains(n)));
    }

    #[test]
    fn allocation_failure_leaves_state_unchanged() {
        let mut a = TorusAllocator::new();
        let _ = a.allocate(COMPUTE_NODES - 10).unwrap();
        let before = a.free_nodes();
        assert!(a.allocate(11).is_none());
        assert_eq!(a.free_nodes(), before);
        assert!(a.allocate(10).is_some());
        assert_eq!(a.free_nodes(), 0);
    }

    #[test]
    fn zero_request_rejected() {
        let mut a = TorusAllocator::new();
        assert!(a.allocate(0).is_none());
    }

    #[test]
    fn utilization_tracks() {
        let mut a = TorusAllocator::new();
        assert_eq!(a.utilization(), 0.0);
        let x = a.allocate(COMPUTE_NODES / 2).unwrap();
        assert!((a.utilization() - 0.5).abs() < 0.01);
        a.release(&x);
        assert_eq!(a.utilization(), 0.0);
    }

    #[test]
    fn contiguous_allocation_stripes_columns() {
        // The whole point of torus-order placement: a capability-scale
        // job spans alternating physical columns.
        let mut a = TorusAllocator::new();
        let _skip = a.allocate(500).unwrap();
        let job = a.allocate(3_000).unwrap();
        let cols: HashSet<u8> = job.iter().map(|n| n.location().col).collect();
        assert!(cols.len() >= 2, "{cols:?}");
        // Column transitions along the allocation order skip neighbours.
        let mut seq: Vec<u8> = job.iter().map(|n| n.location().col).collect();
        seq.dedup();
        let skips = seq.windows(2).filter(|w| (w[0] as i32 - w[1] as i32).abs() == 2).count();
        let steps = seq.windows(2).filter(|w| (w[0] as i32 - w[1] as i32).abs() == 1).count();
        assert!(skips >= steps, "skips={skips} steps={steps} seq={seq:?}");
    }

    #[test]
    fn cursor_rotates_between_jobs() {
        let mut a = TorusAllocator::new();
        let x = a.allocate(100).unwrap();
        a.release(&x);
        let y = a.allocate(100).unwrap();
        // Second allocation starts after the first (rotating cursor), so
        // the sets differ even though everything was free again.
        assert_ne!(x, y);
    }
}
