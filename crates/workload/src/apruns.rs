//! Aprun subdivision of batch jobs.
//!
//! On Titan, a batch job script launches one or more `aprun` invocations
//! (the ALPS application launcher). The paper's §4 leans on this
//! distinction: "the SBE counts can not be collected on a per aprun
//! basis instead it is collected on a job basis since the nvidia-smi
//! output is run before and after the job script, irrespective of number
//! of apruns within the job script."
//!
//! This module generates the aprun structure inside each scheduled job so
//! the repository can *demonstrate* that limitation (see
//! `titan-analysis`'s aprun-ambiguity helper): with only job-level SBE
//! deltas, any multi-aprun job's errors are unattributable to a specific
//! aprun.

use rand::Rng;
use titan_conlog::time::SimTime;
use titan_conlog::Aprun;

use crate::schedule::ScheduledJob;

/// Mean setup/teardown gap between consecutive apruns, seconds.
pub const INTER_APRUN_GAP_SECS: u64 = 30;

/// Subdivides a job's runtime into `1..=max_apruns` sequential segments
/// with small gaps. Production jobs usually run one aprun; debug scripts
/// iterate. Deterministic given the RNG.
pub fn subdivide<R: Rng + ?Sized>(
    job: &ScheduledJob,
    max_apruns: u32,
    rng: &mut R,
) -> Vec<Aprun> {
    subdivide_span(
        job.spec.apid,
        job.start,
        job.end,
        job.spec.is_debug,
        max_apruns,
        rng,
    )
}

/// [`subdivide`] over a raw `(apid, start, end, is_debug)` span — used by
/// the simulator, which has job records rather than schedule entries.
pub fn subdivide_span<R: Rng + ?Sized>(
    apid: u64,
    start: SimTime,
    end: SimTime,
    is_debug: bool,
    max_apruns: u32,
    rng: &mut R,
) -> Vec<Aprun> {
    let wall = end.saturating_sub(start);
    if wall == 0 {
        return Vec::new();
    }
    // Debug scripts iterate: geometric-ish count; production mostly 1.
    let n = if is_debug {
        let mut n = 1u32;
        while n < max_apruns && rng.gen::<f64>() < 0.5 {
            n += 1;
        }
        n
    } else if rng.gen::<f64>() < 0.15 {
        2.min(max_apruns)
    } else {
        1
    };
    let n = n.max(1);

    // Each aprun needs at least 1 s; shrink n if the job is too short.
    let gap = INTER_APRUN_GAP_SECS;
    let mut n = n;
    while n > 1 && wall < (n as u64) * (gap + 1) {
        n -= 1;
    }

    // Random proportional splits.
    let mut weights: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 0.2).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }

    let usable = wall - (n as u64 - 1) * gap;
    let mut out = Vec::with_capacity(n as usize);
    let mut t = start;
    for (i, w) in weights.iter().enumerate() {
        let len = if i as u32 == n - 1 {
            end.saturating_sub(t)
        } else {
            ((usable as f64 * w) as u64).max(1)
        };
        let seg_end = (t + len).min(end);
        out.push(Aprun {
            apid,
            index: i as u32,
            start: t,
            end: seg_end,
        });
        t = seg_end + gap;
        if t >= end {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use titan_topology::NodeId;

    fn job(apid: u64, start: SimTime, end: SimTime, debug: bool) -> ScheduledJob {
        ScheduledJob {
            spec: JobSpec {
                apid,
                user: 0,
                nodes: 4,
                submit: start,
                wall: end - start,
                mem_max_bytes: 1 << 30,
                gpu_util: 0.5,
                is_debug: debug,
            },
            start,
            end,
            nodes: (0..4).map(NodeId).collect(),
        }
    }

    #[test]
    fn segments_tile_the_job() {
        let mut rng = StdRng::seed_from_u64(5);
        for seed_job in 0..50u64 {
            let j = job(seed_job, 1_000, 1_000 + 7_200, seed_job % 2 == 0);
            let apruns = subdivide(&j, 8, &mut rng);
            assert!(!apruns.is_empty());
            assert_eq!(apruns[0].start, j.start);
            assert!(apruns.last().unwrap().end <= j.end);
            for w in apruns.windows(2) {
                assert!(w[0].end < w[1].start, "segments must not overlap");
                assert_eq!(w[0].index + 1, w[1].index);
            }
            for a in &apruns {
                assert!(a.duration() >= 1);
                assert_eq!(a.apid, seed_job);
            }
        }
    }

    #[test]
    fn production_jobs_mostly_single_aprun() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut multi = 0;
        for i in 0..500u64 {
            let j = job(i, 0, 10_000, false);
            if subdivide(&j, 8, &mut rng).len() > 1 {
                multi += 1;
            }
        }
        assert!(multi > 20 && multi < 150, "{multi}");
    }

    #[test]
    fn debug_jobs_iterate_more() {
        let mut rng = StdRng::seed_from_u64(9);
        let count = |debug: bool, rng: &mut StdRng| -> f64 {
            let mut total = 0usize;
            for i in 0..500u64 {
                let j = job(i, 0, 10_000, debug);
                total += subdivide(&j, 8, rng).len();
            }
            total as f64 / 500.0
        };
        let debug_mean = count(true, &mut rng);
        let prod_mean = count(false, &mut rng);
        assert!(debug_mean > prod_mean + 0.3, "{debug_mean} vs {prod_mean}");
    }

    #[test]
    fn short_jobs_degrade_gracefully() {
        let mut rng = StdRng::seed_from_u64(11);
        let j = job(1, 0, 60, true); // one minute
        let apruns = subdivide(&j, 8, &mut rng);
        assert_eq!(apruns.len(), 1);
        assert_eq!(apruns[0].start, 0);
        assert_eq!(apruns[0].end, 60);
    }

}
