//! # titan-workload
//!
//! Synthetic HPC workload for the Titan fleet simulator.
//!
//! The paper's §4 correlates GPU errors against *batch job* resource
//! consumption and characterizes the workload itself (Fig. 21,
//! Observation 14). Real Titan job logs are not public ("many
//! applications that are run on Titan may be mission critical"), so this
//! crate generates a population with the same *marginal shapes* the paper
//! reports:
//!
//! * jobs with the highest memory consumption use *below-average* GPU
//!   core-hours and run on *smaller* node counts;
//! * jobs with long GPU core-hours tend to use *more* nodes;
//! * some of the *longest wall-clock* jobs have small node counts;
//! * user identity is a strong proxy for code behaviour (Observation 13),
//!   so generation is user-driven: each user has a archetype that fixes
//!   their job-size/memory/duration profile.
//!
//! Modules:
//!
//! * [`users`] — the user population and its archetypes.
//! * [`jobs`] — job arrival and sizing.
//! * [`allocation`] — ALPS-style node placement in folded-torus order
//!   (the mechanism behind Fig. 12's alternate-cabinet striping).
//! * [`apruns`] — aprun subdivision inside job scripts (the granularity
//!   at which SBE attribution is *impossible*, per §4).
//! * [`schedule`] — end-to-end generation: a time-ordered job schedule
//!   with per-job node lists, ready for the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod apruns;
pub mod jobs;
pub mod schedule;
pub mod users;

pub use allocation::TorusAllocator;
pub use apruns::subdivide as subdivide_apruns;
pub use jobs::{JobSpec, JobSizer};
pub use schedule::{ScheduleConfig, ScheduledJob, WorkloadSchedule};
pub use users::{UserArchetype, UserPopulation, UserProfile};
