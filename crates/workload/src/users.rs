//! The user population.
//!
//! Observation 13: "UserID seems to a better proxy for identifying which
//! users/codes may be getting affected by SBE occurrences" — because a
//! user runs the same few codes with stable resource shapes. We encode
//! that with *archetypes*: a user's archetype pins the distributions all
//! their jobs draw from.

use rand::Rng;
use serde::{Deserialize, Serialize};
use titan_stats::{LogNormal, Pareto};

/// Workload archetypes, chosen to jointly produce the Fig. 21 panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UserArchetype {
    /// INCITE-style capability runs: very large node counts, moderate
    /// wall times, moderate memory. Dominates GPU core-hours.
    Capability,
    /// Ensemble/capacity users: small node counts, *long* wall clocks
    /// (the paper: "some jobs with smaller node counts may actually be
    /// the longest running jobs").
    Capacity,
    /// Memory-bound analytics: small-to-medium node counts, *maximal*
    /// per-node memory, below-average core-hours ("jobs with the highest
    /// maximum and total memory use less than the average GPU core
    /// hours").
    MemoryIntensive,
    /// Debug/development: tiny, short, frequent, crash-prone — the source
    /// of the bursty XID 13 population.
    Debug,
}

impl UserArchetype {
    /// All archetypes with their population mix.
    pub const MIX: [(UserArchetype, f64); 4] = [
        (UserArchetype::Capability, 0.12),
        (UserArchetype::Capacity, 0.35),
        (UserArchetype::MemoryIntensive, 0.20),
        (UserArchetype::Debug, 0.33),
    ];
}

/// One user's generation profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// User id (dense).
    pub id: u32,
    /// Archetype.
    pub archetype: UserArchetype,
    /// Relative submission rate (jobs/day share) — heavy-tailed: a few
    /// power users submit most jobs.
    pub activity_weight: f64,
    /// Median node count for this user's jobs.
    pub nodes_median: f64,
    /// Median wall-clock seconds.
    pub wall_median: f64,
    /// Median per-node GPU memory footprint, bytes.
    pub mem_median: f64,
    /// Mean GPU utilization while running (0..1).
    pub gpu_util: f64,
    /// Probability a given job is a crash-prone debug run.
    pub debug_fraction: f64,
}

/// The whole population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserPopulation {
    profiles: Vec<UserProfile>,
}

/// 6 GB K20X framebuffer — the memory-draw ceiling.
const MEM_CAP: f64 = 6.0 * 1024.0 * 1024.0 * 1024.0;

impl UserPopulation {
    /// Generates `n_users` users with the archetype mix.
    pub fn generate<R: Rng + ?Sized>(n_users: usize, rng: &mut R) -> Self {
        let activity = Pareto::new(1.0, 1.2).expect("valid");
        let mut profiles = Vec::with_capacity(n_users);
        for id in 0..n_users as u32 {
            let archetype = pick_archetype(rng);
            let jitter = |rng: &mut R, median: f64, sigma: f64| {
                LogNormal::from_median(median, sigma)
                    .expect("positive median")
                    .sample(rng)
            };
            let (nodes_median, wall_median, mem_median, gpu_util, debug_fraction) =
                match archetype {
                    UserArchetype::Capability => (
                        jitter(rng, 1500.0, 0.5).min(18_000.0),
                        jitter(rng, 4.0 * 3600.0, 0.4),
                        jitter(rng, 1.5e9, 0.3).min(MEM_CAP),
                        0.85,
                        0.05,
                    ),
                    UserArchetype::Capacity => (
                        jitter(rng, 60.0, 0.6),
                        jitter(rng, 16.0 * 3600.0, 0.5),
                        jitter(rng, 1.0e9, 0.4).min(MEM_CAP),
                        0.70,
                        0.08,
                    ),
                    UserArchetype::MemoryIntensive => (
                        jitter(rng, 150.0, 0.5),
                        jitter(rng, 2.5 * 3600.0, 0.4),
                        jitter(rng, 5.2e9, 0.1).min(MEM_CAP),
                        0.45,
                        0.10,
                    ),
                    UserArchetype::Debug => (
                        jitter(rng, 12.0, 0.8),
                        jitter(rng, 900.0, 0.7),
                        jitter(rng, 0.5e9, 0.5).min(MEM_CAP),
                        0.30,
                        0.60,
                    ),
                };
            profiles.push(UserProfile {
                id,
                archetype,
                activity_weight: activity.sample(rng),
                nodes_median,
                wall_median,
                mem_median,
                gpu_util,
                debug_fraction,
            });
        }
        UserPopulation { profiles }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Profile of user `id`.
    pub fn profile(&self, id: u32) -> &UserProfile {
        &self.profiles[id as usize]
    }

    /// All profiles.
    pub fn profiles(&self) -> &[UserProfile] {
        &self.profiles
    }

    /// Activity weights (submission-rate shares).
    pub fn activity_weights(&self) -> Vec<f64> {
        self.profiles.iter().map(|p| p.activity_weight).collect()
    }
}

fn pick_archetype<R: Rng + ?Sized>(rng: &mut R) -> UserArchetype {
    let mut x = rng.gen::<f64>();
    for &(a, f) in UserArchetype::MIX.iter() {
        x -= f;
        if x <= 0.0 {
            return a;
        }
    }
    UserArchetype::MIX[0].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn pop(n: usize) -> UserPopulation {
        let mut rng = StdRng::seed_from_u64(77);
        UserPopulation::generate(n, &mut rng)
    }

    #[test]
    fn archetype_mix_roughly_matches() {
        let p = pop(5_000);
        let mut counts: HashMap<UserArchetype, usize> = HashMap::new();
        for u in p.profiles() {
            *counts.entry(u.archetype).or_default() += 1;
        }
        for &(a, f) in UserArchetype::MIX.iter() {
            let got = counts[&a] as f64 / 5_000.0;
            assert!((got - f).abs() < 0.03, "{a:?}: {got} vs {f}");
        }
    }

    #[test]
    fn archetype_shapes_separate() {
        let p = pop(2_000);
        let mean = |a: UserArchetype, f: fn(&UserProfile) -> f64| {
            let v: Vec<f64> = p
                .profiles()
                .iter()
                .filter(|u| u.archetype == a)
                .map(f)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        // Capability runs far larger than capacity.
        assert!(
            mean(UserArchetype::Capability, |u| u.nodes_median)
                > 10.0 * mean(UserArchetype::Capacity, |u| u.nodes_median)
        );
        // Capacity runs far longer than memory-intensive.
        assert!(
            mean(UserArchetype::Capacity, |u| u.wall_median)
                > 3.0 * mean(UserArchetype::MemoryIntensive, |u| u.wall_median)
        );
        // Memory-intensive owns the memory ceiling.
        assert!(
            mean(UserArchetype::MemoryIntensive, |u| u.mem_median)
                > 2.0 * mean(UserArchetype::Capability, |u| u.mem_median)
        );
        // Debug users crash most.
        assert!(
            mean(UserArchetype::Debug, |u| u.debug_fraction)
                > 4.0 * mean(UserArchetype::Capability, |u| u.debug_fraction)
        );
    }

    #[test]
    fn memory_never_exceeds_framebuffer() {
        let p = pop(3_000);
        for u in p.profiles() {
            assert!(u.mem_median <= MEM_CAP);
            assert!(u.gpu_util > 0.0 && u.gpu_util <= 1.0);
        }
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let p = pop(2_000);
        let mut w = p.activity_weights();
        w.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = w.iter().sum();
        let top40: f64 = w[..40].iter().sum();
        // Top 2% of users submit a disproportionate share.
        assert!(top40 / total > 0.15, "top-40 share {}", top40 / total);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = pop(100);
        let b = pop(100);
        assert_eq!(a, b);
    }
}
