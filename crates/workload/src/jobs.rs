//! Job arrival and sizing.

use rand::Rng;
use serde::{Deserialize, Serialize};
use titan_conlog::time::SimTime;
use titan_stats::LogNormal;

use crate::users::{UserPopulation, UserProfile};

/// One sized (but not yet placed) batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// ALPS application id (dense, increasing with submission order).
    pub apid: u64,
    /// Submitting user.
    pub user: u32,
    /// Requested node count.
    pub nodes: u32,
    /// Submission time.
    pub submit: SimTime,
    /// Requested wall-clock seconds.
    pub wall: u64,
    /// Peak per-node GPU memory footprint, bytes.
    pub mem_max_bytes: u64,
    /// Mean GPU utilization while running (0..1).
    pub gpu_util: f64,
    /// Whether this is a crash-prone debug run (XID 13 fodder).
    pub is_debug: bool,
}

impl JobSpec {
    /// GPU core-hours the job will consume if it runs to completion:
    /// nodes × wall-hours × utilization (the paper's core-hour metric is
    /// allocation-hours scaled by activity).
    pub fn gpu_core_hours(&self) -> f64 {
        self.nodes as f64 * (self.wall as f64 / 3600.0) * self.gpu_util
    }

    /// Integrated memory consumption, byte-hours across nodes, assuming
    /// the mean footprint is ~70% of peak.
    pub fn total_memory_byte_hours(&self) -> f64 {
        0.7 * self.mem_max_bytes as f64 * self.nodes as f64 * (self.wall as f64 / 3600.0)
    }
}

/// Draws job sizes from a user's profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobSizer;

/// Largest allocation the scheduler will grant (whole machine minus
/// service margin).
pub const MAX_JOB_NODES: u32 = 18_000;

/// Wall-clock cap (Titan's queue limit was 24 h).
pub const MAX_WALL_SECONDS: u64 = 24 * 3600;

impl JobSizer {
    /// Sizes one job for `user` submitted at `submit`.
    pub fn size<R: Rng + ?Sized>(
        &self,
        apid: u64,
        user: &UserProfile,
        submit: SimTime,
        rng: &mut R,
    ) -> JobSpec {
        let nodes = LogNormal::from_median(user.nodes_median, 0.7)
            .expect("positive median")
            .sample(rng)
            .round()
            .clamp(1.0, MAX_JOB_NODES as f64) as u32;
        let wall = LogNormal::from_median(user.wall_median, 0.6)
            .expect("positive median")
            .sample(rng)
            .round()
            .clamp(60.0, MAX_WALL_SECONDS as f64) as u64;
        let mem = LogNormal::from_median(user.mem_median, 0.3)
            .expect("positive median")
            .sample(rng)
            .clamp(64.0 * 1024.0 * 1024.0, 6.0 * 1024.0 * 1024.0 * 1024.0)
            as u64;
        let is_debug = rng.gen::<f64>() < user.debug_fraction;
        JobSpec {
            apid,
            user: user.id,
            // Debug runs are small and short regardless of archetype.
            nodes: if is_debug { nodes.min(64) } else { nodes },
            submit,
            wall: if is_debug { wall.min(1800) } else { wall },
            mem_max_bytes: mem,
            gpu_util: (user.gpu_util + 0.1 * (rng.gen::<f64>() - 0.5)).clamp(0.05, 1.0),
            is_debug,
        }
    }

    /// Generates the full submission stream: `jobs_per_day` mean arrivals,
    /// users picked by activity weight. Returns specs sorted by submit
    /// time with dense apids.
    pub fn generate_stream<R: Rng + ?Sized>(
        &self,
        population: &UserPopulation,
        jobs_per_day: f64,
        window: SimTime,
        rng: &mut R,
    ) -> Vec<JobSpec> {
        let user_picker =
            titan_stats::WeightedAlias::new(&population.activity_weights()).expect("users exist");
        let rate = jobs_per_day / 86_400.0;
        let exp = titan_stats::Exponential::new(rate).expect("positive rate");
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut apid = 1_000_000u64; // ALPS apids start high on real systems
        loop {
            t += exp.sample(rng);
            if t >= window as f64 {
                break;
            }
            let user = population.profile(user_picker.sample(rng) as u32);
            out.push(self.size(apid, user, t as SimTime, rng));
            apid += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::users::UserPopulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(jobs_per_day: f64, days: u64) -> Vec<JobSpec> {
        let mut rng = StdRng::seed_from_u64(4242);
        let pop = UserPopulation::generate(300, &mut rng);
        JobSizer.generate_stream(&pop, jobs_per_day, days * 86_400, &mut rng)
    }

    #[test]
    fn volume_matches_rate() {
        let jobs = stream(100.0, 100);
        assert!((9_000..11_000).contains(&jobs.len()), "{}", jobs.len());
    }

    #[test]
    fn stream_sorted_and_dense_apids() {
        let jobs = stream(50.0, 30);
        assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        assert!(jobs.windows(2).all(|w| w[1].apid == w[0].apid + 1));
    }

    #[test]
    fn bounds_respected() {
        for j in stream(100.0, 60) {
            assert!(j.nodes >= 1 && j.nodes <= MAX_JOB_NODES);
            assert!(j.wall >= 60 && j.wall <= MAX_WALL_SECONDS);
            assert!(j.mem_max_bytes <= 6 * 1024 * 1024 * 1024);
            assert!(j.gpu_util > 0.0 && j.gpu_util <= 1.0);
            if j.is_debug {
                assert!(j.nodes <= 64);
                assert!(j.wall <= 1800);
            }
        }
    }

    #[test]
    fn core_hours_formula() {
        let j = JobSpec {
            apid: 1,
            user: 0,
            nodes: 100,
            submit: 0,
            wall: 7200,
            mem_max_bytes: 1 << 30,
            gpu_util: 0.5,
            is_debug: false,
        };
        assert!((j.gpu_core_hours() - 100.0).abs() < 1e-9);
        let tm = j.total_memory_byte_hours();
        assert!((tm - 0.7 * (1u64 << 30) as f64 * 100.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn fig21_shape_memory_heavy_jobs_use_below_average_core_hours() {
        let jobs = stream(200.0, 200);
        let mean_ch: f64 =
            jobs.iter().map(|j| j.gpu_core_hours()).sum::<f64>() / jobs.len() as f64;
        // Top-decile by max memory.
        let mut by_mem: Vec<&JobSpec> = jobs.iter().collect();
        by_mem.sort_by_key(|j| std::cmp::Reverse(j.mem_max_bytes));
        let top = &by_mem[..jobs.len() / 10];
        let top_ch: f64 =
            top.iter().map(|j| j.gpu_core_hours()).sum::<f64>() / top.len() as f64;
        assert!(
            top_ch < mean_ch,
            "memory-heavy jobs should be below the core-hour mean: {top_ch} vs {mean_ch}"
        );
    }

    #[test]
    fn fig21_shape_long_wall_jobs_can_be_small() {
        let jobs = stream(200.0, 200);
        let mut by_wall: Vec<&JobSpec> = jobs.iter().collect();
        by_wall.sort_by_key(|j| std::cmp::Reverse(j.wall));
        let longest = &by_wall[..jobs.len() / 20];
        let small_and_long = longest.iter().filter(|j| j.nodes < 100).count();
        assert!(
            small_and_long as f64 / longest.len() as f64 > 0.5,
            "most of the longest jobs should be small-node capacity runs"
        );
    }

    #[test]
    fn fig21_shape_core_hours_correlate_with_nodes() {
        let jobs = stream(200.0, 200);
        let nodes: Vec<f64> = jobs.iter().map(|j| j.nodes as f64).collect();
        let ch: Vec<f64> = jobs.iter().map(|j| j.gpu_core_hours()).collect();
        let r = titan_stats::spearman(&nodes, &ch).unwrap();
        assert!(r.r > 0.5, "nodes↔core-hours Spearman {}", r.r);
    }
}
