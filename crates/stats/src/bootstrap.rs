//! Bootstrap confidence intervals for correlation coefficients.
//!
//! The paper reports point estimates with p-values; a production
//! reliability toolkit should also say how stable those coefficients are
//! across resamples — particularly here, where a handful of offender
//! cards dominate the SBE counts and a single resample can include or
//! exclude them.

use rand::Rng;

use crate::correlation::spearman;

/// A bootstrap interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Resamples used.
    pub resamples: usize,
}

impl BootstrapInterval {
    /// Interval width — the instability measure.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether the interval excludes zero (a significance proxy).
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }
}

/// Percentile-bootstrap interval for the Spearman coefficient of paired
/// data, at confidence `1 - alpha` (e.g. `alpha = 0.05` for 95%).
/// Returns `None` when the full-sample coefficient is undefined.
pub fn spearman_bootstrap<R: Rng + ?Sized>(
    x: &[f64],
    y: &[f64],
    resamples: usize,
    alpha: f64,
    rng: &mut R,
) -> Option<BootstrapInterval> {
    let estimate = spearman(x, y)?.r;
    let n = x.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut bx = vec![0.0; n];
    let mut by = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let j = rng.gen_range(0..n);
            bx[i] = x[j];
            by[i] = y[j];
        }
        if let Some(r) = spearman(&bx, &by) {
            stats.push(r.r);
        }
    }
    if stats.is_empty() {
        return None;
    }
    stats.sort_by(|a, b| a.total_cmp(b));
    let lo_idx = ((alpha / 2.0) * stats.len() as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * stats.len() as f64) as usize).min(stats.len() - 1);
    Some(BootstrapInterval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        resamples: stats.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(808)
    }

    #[test]
    fn tight_interval_for_strong_monotone_signal() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let b = spearman_bootstrap(&x, &y, 200, 0.05, &mut rng()).unwrap();
        assert!((b.estimate - 1.0).abs() < 1e-9);
        assert!(b.lo > 0.95, "lo {}", b.lo);
        assert!(b.excludes_zero());
        assert!(b.width() < 0.1);
    }

    #[test]
    fn wide_interval_for_noise() {
        let x: Vec<f64> = (0..60).map(|i| ((i * 7_919) % 101) as f64).collect();
        let y: Vec<f64> = (0..60).map(|i| ((i * 104_729) % 97) as f64).collect();
        let b = spearman_bootstrap(&x, &y, 300, 0.05, &mut rng()).unwrap();
        assert!(b.estimate.abs() < 0.4);
        assert!(!b.excludes_zero(), "{b:?}");
        assert!(b.width() > 0.2);
    }

    #[test]
    fn interval_brackets_estimate() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + i as f64 / 5.0).collect();
        let y: Vec<f64> = (0..100).map(|i| i as f64 + ((i * 31) % 17) as f64).collect();
        let b = spearman_bootstrap(&x, &y, 200, 0.1, &mut rng()).unwrap();
        assert!(b.lo <= b.estimate + 0.1 && b.estimate - 0.1 <= b.hi, "{b:?}");
        assert_eq!(b.resamples, 200);
    }

    #[test]
    fn degenerate_inputs() {
        let mut r = rng();
        assert!(spearman_bootstrap(&[1.0], &[1.0], 50, 0.05, &mut r).is_none());
        assert!(spearman_bootstrap(&[1.0, 1.0], &[2.0, 2.0], 50, 0.05, &mut r).is_none());
    }
}
