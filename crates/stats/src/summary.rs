//! Basic descriptive statistics: mean, variance, quantiles, extrema.
//!
//! The analysis crate normalizes job-level series "to the average of the
//! respective metrics" (paper §4, Figs. 16–19); [`Summary`] provides the
//! moments that normalization needs in a single pass.

/// One-pass descriptive summary of a sample.
///
/// Uses Welford's algorithm for numerically stable mean/variance, which
/// matters for series spanning many orders of magnitude (node-seconds vs.
/// single-bit-error counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Builds a summary over a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel reduction step).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance; `NaN` for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ); the paper's burstiness analyses
    /// reduce to CV of inter-arrival times.
    pub fn cv(&self) -> f64 {
        self.std_dev() / self.mean()
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between
/// order statistics (type-7, the numpy default). Returns `None` on an empty
/// slice or out-of-range `q`.
///
/// Sorts a copy: callers in hot paths should pre-sort and use
/// [`quantile_sorted`].
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// [`quantile`] over an already-sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Median convenience wrapper.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert!(s.variance().is_nan());
    }

    #[test]
    fn known_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of that classic sample is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let all: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let whole = Summary::of(&all);
        let mut a = Summary::of(&all[..313]);
        let b = Summary::of(&all[313..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::of(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(median(&v), Some(2.5));
        assert_eq!(quantile(&v, 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [9.0, 1.0, 5.0];
        assert_eq!(median(&v), Some(5.0));
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let s = Summary::of(&[3.0, 3.0, 3.0, 3.0]);
        assert!(s.cv().abs() < 1e-12);
    }
}
