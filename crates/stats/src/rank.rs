//! Ranking with tie handling (average ranks), the backbone of the
//! Spearman correlation the paper reports (Observations 11–13).
//!
//! Field-data series are full of ties — SBE counts are small integers and
//! many jobs report zero — so mid-rank assignment is essential for the
//! coefficients to land in the paper's bands.

/// Assigns average (mid) ranks to `values`, 1-based, ties sharing the mean
/// of the ranks they span. `NaN`s are not permitted.
///
/// ```
/// let r = titan_stats::average_ranks(&[10.0, 20.0, 20.0, 30.0]);
/// assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 (1-based) tie; assign their mean.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Returns the indices of the `k` largest values, descending. Ties broken by
/// lower index first (deterministic). Used for the paper's "top-10 / top-50
/// SBE offender" exclusions (Fig. 14, 15, and §4).
pub fn top_k_indices(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ties_is_permutation_rank() {
        let r = average_ranks(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn all_tied() {
        let r = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn mixed_ties() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 3.0, 3.0, 3.0, 5.0]);
    }

    #[test]
    fn empty_input() {
        assert!(average_ranks(&[]).is_empty());
        assert!(top_k_indices(&[], 5).is_empty());
    }

    #[test]
    fn rank_sum_invariant() {
        // Sum of ranks is always n(n+1)/2 regardless of ties.
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let s: f64 = average_ranks(&v).iter().sum();
        assert!((s - 55.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_basic() {
        let v = [10.0, 50.0, 20.0, 50.0, 5.0];
        assert_eq!(top_k_indices(&v, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 2]);
    }

    #[test]
    fn top_k_larger_than_len() {
        let v = [1.0, 2.0];
        assert_eq!(top_k_indices(&v, 10), vec![1, 0]);
    }
}
