//! Empirical CDF, used when comparing simulated inter-arrival distributions
//! against the paper's reported shapes (and for the skewness illustrations
//! of Fig. 14: "share of SBEs attributable to the top-k cards").

/// Empirical cumulative distribution function over a fixed sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF. `NaN`s sort to the top end under the IEEE total
    /// order instead of panicking mid-sort; inputs come from our own
    /// counters and are expected to be clean.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when built from an empty sample.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x) = fraction of samples ≤ x. Returns 0 for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// Kolmogorov–Smirnov distance to another ECDF (sup over both sample
    /// sets' points).
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }

    /// Lorenz-style concentration: the fraction of the total carried by the
    /// largest `k` samples. Fig. 14's story is `share_of_top(10)` and
    /// `share_of_top(50)` being large for SBE counts.
    pub fn share_of_top(&self, k: usize) -> f64 {
        let total: f64 = self.sorted.iter().sum();
        if total == 0.0 || self.sorted.is_empty() {
            return 0.0;
        }
        let k = k.min(self.sorted.len());
        let top: f64 = self.sorted[self.sorted.len() - k..].iter().sum();
        top / total
    }

    /// Gini coefficient of the sample (0 = perfectly even, → 1 = all mass
    /// on one card). Quantifies Observation 10's "highly skewed".
    pub fn gini(&self) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        let total: f64 = self.sorted.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        // G = (2*sum_i i*x_i)/(n*sum x) - (n+1)/n with x ascending, i 1-based.
        let weighted: f64 = self
            .sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as f64 + 1.0) * x)
            .sum();
        (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn empty_ecdf() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.gini(), 0.0);
        assert_eq!(e.share_of_top(10), 0.0);
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = Ecdf::new(&[1.0, 2.0]);
        let b = Ecdf::new(&[10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    #[test]
    fn top_share_concentration() {
        // One card with 1000 SBEs, 99 with 1 each.
        let mut v = vec![1.0; 99];
        v.push(1000.0);
        let e = Ecdf::new(&v);
        assert!(e.share_of_top(1) > 0.9);
        assert!((e.share_of_top(100) - 1.0).abs() < 1e-12);
        assert!(e.share_of_top(1000) <= 1.0); // k > n clamps
    }

    #[test]
    fn gini_extremes() {
        let even = Ecdf::new(&[5.0; 100]);
        assert!(even.gini().abs() < 1e-9);
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let skewed = Ecdf::new(&v);
        assert!(skewed.gini() > 0.98);
    }

    #[test]
    fn gini_known_value() {
        // For [1,2,3,4]: G = 0.25 exactly.
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert!((e.gini() - 0.25).abs() < 1e-12);
    }
}
