//! Reliability estimators: inter-arrival series, MTBF, exponential MLE,
//! and burstiness indices.
//!
//! These implement the quantitative machinery behind Observation 1
//! ("MTBF of double bit errors … approx. 160 hours") and Observation 6
//! ("user application caused XID errors are bursty … driver related XID
//! errors are not bursty").

use crate::summary::Summary;

/// Inter-arrival series derived from a sorted sequence of event timestamps
/// (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct InterArrival {
    gaps: Vec<f64>,
}

impl InterArrival {
    /// Builds the series from event timestamps in seconds. Unsorted input
    /// is sorted internally; duplicate timestamps yield zero gaps, which
    /// are retained (co-reported events are real in console logs).
    pub fn from_timestamps(ts: &[u64]) -> Self {
        let mut t: Vec<u64> = ts.to_vec();
        t.sort_unstable();
        let gaps = t.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        InterArrival { gaps }
    }

    /// The gaps themselves, in seconds.
    pub fn gaps(&self) -> &[f64] {
        &self.gaps
    }

    /// Number of gaps (events − 1).
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// True when fewer than two events were provided.
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Mean gap in seconds; `None` without at least one gap.
    pub fn mean_seconds(&self) -> Option<f64> {
        if self.gaps.is_empty() {
            None
        } else {
            Some(Summary::of(&self.gaps).mean())
        }
    }

    /// Coefficient of variation of the gaps. 1 ⇒ Poisson-like; ≫1 ⇒ bursty;
    /// <1 ⇒ regular. `None` with fewer than two gaps.
    pub fn cv(&self) -> Option<f64> {
        if self.gaps.len() < 2 {
            None
        } else {
            Some(Summary::of(&self.gaps).cv())
        }
    }
}

/// Mean time between failures, in hours, from raw event timestamps in
/// seconds. `None` with fewer than two events.
pub fn mtbf_hours(timestamps: &[u64]) -> Option<f64> {
    InterArrival::from_timestamps(timestamps)
        .mean_seconds()
        .map(|s| s / 3600.0)
}

/// Maximum-likelihood rate of an exponential model over inter-arrival gaps
/// (λ̂ = 1 / mean gap). Returns events-per-second. `None` when degenerate.
pub fn exponential_mle(gaps: &[f64]) -> Option<f64> {
    if gaps.is_empty() {
        return None;
    }
    let mean = Summary::of(gaps).mean();
    if mean <= 0.0 {
        return None;
    }
    Some(1.0 / mean)
}

/// Burstiness index of Goh & Barabási: B = (σ−μ)/(σ+μ) over inter-arrival
/// gaps. B ≈ 0 for Poisson arrivals, → 1 for extreme bursts, → −1 for a
/// perfectly regular (periodic) signal. `None` with fewer than two gaps.
pub fn burstiness(timestamps: &[u64]) -> Option<f64> {
    let ia = InterArrival::from_timestamps(timestamps);
    if ia.len() < 2 {
        return None;
    }
    let s = Summary::of(ia.gaps());
    let (mu, sigma) = (s.mean(), s.std_dev());
    if mu + sigma == 0.0 {
        return None;
    }
    Some((sigma - mu) / (sigma + mu))
}

/// Fano factor over fixed windows: variance/mean of per-window counts.
/// 1 for a Poisson process; ≫1 for clustered arrivals. Used alongside
/// [`burstiness`] when classifying XID streams (Observation 6).
/// Returns `None` when the span covers fewer than two windows.
pub fn fano_factor(timestamps: &[u64], window_seconds: u64) -> Option<f64> {
    if timestamps.is_empty() || window_seconds == 0 {
        return None;
    }
    let lo = *timestamps.iter().min().expect("nonempty");
    let hi = *timestamps.iter().max().expect("nonempty");
    let nwin = ((hi - lo) / window_seconds + 1) as usize;
    if nwin < 2 {
        return None;
    }
    let mut counts = vec![0.0f64; nwin];
    for &t in timestamps {
        counts[((t - lo) / window_seconds) as usize] += 1.0;
    }
    let s = Summary::of(&counts);
    let mean = s.mean();
    if mean == 0.0 {
        return None;
    }
    Some(s.variance() / mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samplers::Exponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interarrival_from_unsorted() {
        let ia = InterArrival::from_timestamps(&[30, 10, 20]);
        assert_eq!(ia.gaps(), &[10.0, 10.0]);
        assert_eq!(ia.len(), 2);
    }

    #[test]
    fn mtbf_weekly_dbe() {
        // One event per week for 10 weeks → MTBF = 168 h.
        let week = 7 * 24 * 3600u64;
        let ts: Vec<u64> = (0..10).map(|i| i * week).collect();
        let m = mtbf_hours(&ts).unwrap();
        assert!((m - 168.0).abs() < 1e-9);
    }

    #[test]
    fn mtbf_needs_two_events() {
        assert!(mtbf_hours(&[]).is_none());
        assert!(mtbf_hours(&[100]).is_none());
    }

    #[test]
    fn exponential_mle_recovers_rate() {
        let d = Exponential::new(0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let gaps: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let lam = exponential_mle(&gaps).unwrap();
        assert!((lam - 0.01).abs() / 0.01 < 0.02, "lam {lam}");
    }

    #[test]
    fn exponential_mle_degenerate() {
        assert!(exponential_mle(&[]).is_none());
        assert!(exponential_mle(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn burstiness_of_periodic_is_minus_one() {
        let ts: Vec<u64> = (0..100).map(|i| i * 60).collect();
        let b = burstiness(&ts).unwrap();
        assert!((b + 1.0).abs() < 1e-9, "b {b}");
    }

    #[test]
    fn burstiness_of_poisson_near_zero() {
        let d = Exponential::new(1.0 / 100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = 0.0;
        let ts: Vec<u64> = (0..20_000)
            .map(|_| {
                t += d.sample(&mut rng);
                t as u64
            })
            .collect();
        let b = burstiness(&ts).unwrap();
        assert!(b.abs() < 0.05, "b {b}");
    }

    #[test]
    fn burstiness_of_clusters_positive() {
        // 20 bursts of 50 events within 10 s, bursts a day apart: XID-13 style.
        let mut ts = Vec::new();
        for burst in 0..20u64 {
            let base = burst * 86_400;
            for k in 0..50u64 {
                ts.push(base + k / 5);
            }
        }
        let b = burstiness(&ts).unwrap();
        assert!(b > 0.5, "b {b}");
    }

    #[test]
    fn fano_poisson_near_one() {
        let d = Exponential::new(1.0 / 50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut t = 0.0;
        let ts: Vec<u64> = (0..20_000)
            .map(|_| {
                t += d.sample(&mut rng);
                t as u64
            })
            .collect();
        let f = fano_factor(&ts, 1000).unwrap();
        assert!((f - 1.0).abs() < 0.15, "fano {f}");
    }

    #[test]
    fn fano_clustered_much_greater_than_one() {
        let mut ts = Vec::new();
        for burst in 0..30u64 {
            let base = burst * 100_000;
            for k in 0..100u64 {
                ts.push(base + k);
            }
        }
        let f = fano_factor(&ts, 10_000).unwrap();
        assert!(f > 10.0, "fano {f}");
    }

    #[test]
    fn fano_edge_cases() {
        assert!(fano_factor(&[], 10).is_none());
        assert!(fano_factor(&[5], 10).is_none()); // single window
        assert!(fano_factor(&[5, 6], 0).is_none());
    }
}
