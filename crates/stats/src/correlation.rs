//! Pearson and Spearman correlation with two-sided p-values.
//!
//! §4 of the paper reports both coefficients for every utilization↔SBE pair
//! (with p < 0.05), and notes that Spearman captures the monotone-but-
//! nonlinear relationships better (Observation 12). We therefore implement
//! both, plus the t-approximation p-value the paper's thresholds imply.

use crate::rank::average_ranks;
use serde::{Deserialize, Serialize};

/// Result of a correlation test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrResult {
    /// Correlation coefficient in [-1, 1].
    pub r: f64,
    /// Two-sided p-value from the t approximation with n−2 d.o.f.
    pub p_value: f64,
    /// Sample size used.
    pub n: usize,
}

impl CorrResult {
    /// True when the coefficient is significant at the given level
    /// (the paper uses p < 0.05 throughout §4).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson product-moment correlation of two equal-length slices.
///
/// Returns `None` when the slices differ in length, have fewer than two
/// points, or either side has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<CorrResult> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    let r = (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0);
    Some(CorrResult {
        r,
        p_value: p_value_t(r, x.len()),
        n: x.len(),
    })
}

/// Spearman rank correlation: Pearson over mid-ranks, which handles the
/// heavy ties in SBE count data correctly.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<CorrResult> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Two-sided p-value for a correlation coefficient `r` on `n` samples via
/// the exact-under-normality t statistic t = r·√((n−2)/(1−r²)).
fn p_value_t(r: f64, n: usize) -> f64 {
    if n <= 2 {
        return 1.0;
    }
    let df = (n - 2) as f64;
    let denom = 1.0 - r * r;
    if denom <= 0.0 {
        return 0.0; // |r| == 1: as significant as it gets.
    }
    let t = r.abs() * (df / denom).sqrt();
    2.0 * student_t_sf(t, df)
}

/// Survival function P(T > t) of Student's t with `df` degrees of freedom,
/// via the regularized incomplete beta function.
fn student_t_sf(t: f64, df: f64) -> f64 {
    if t <= 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    0.5 * incomplete_beta_reg(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta I_x(a, b) by continued fraction (Lentz),
/// accurate to ~1e-12 for the parameter ranges we use (a = df/2 ≥ 0.5).
fn incomplete_beta_reg(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    // Symmetry transform for faster convergence.
    if x > (a + 1.0) / (a + b + 2.0) {
        return 1.0 - incomplete_beta_reg(b, a, 1.0 - x);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp() / a;

    // Lentz's continued fraction.
    let mut f = 1.0;
    let mut c = 1.0;
    let mut d = 0.0;
    for i in 0..200 {
        let m = i / 2;
        let numerator = if i == 0 {
            1.0
        } else if i % 2 == 0 {
            let m = m as f64;
            m * (b - m) * x / ((a + 2.0 * m - 1.0) * (a + 2.0 * m))
        } else {
            let m = m as f64;
            -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0))
        };
        d = 1.0 + numerator * d;
        if d.abs() < 1e-30 {
            d = 1e-30;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < 1e-30 {
            c = 1e-30;
        }
        let cd = c * d;
        f *= cd;
        if (1.0 - cd).abs() < 1e-12 {
            break;
        }
    }
    (front * (f - 1.0)).clamp(0.0, 1.0)
}

fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Lanczos approximation of ln Γ(x), |error| < 1e-10 for x > 0.
pub(crate) fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r.r - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6);
        let s = spearman(&x, &y).unwrap();
        assert!((s.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y).unwrap().r + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap().r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_spearman_beats_pearson() {
        // Exactly the Observation-12 situation: monotone but convex.
        let x: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(6)).collect();
        let p = pearson(&x, &y).unwrap().r;
        let s = spearman(&x, &y).unwrap().r;
        assert!((s - 1.0).abs() < 1e-12, "spearman should be exactly 1");
        assert!(p < 0.95, "pearson should be visibly below 1, got {p}");
        assert!(s > p);
    }

    #[test]
    fn zero_variance_is_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).is_none());
    }

    #[test]
    fn mismatched_or_short_is_none() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(spearman(&[], &[]).is_none());
    }

    #[test]
    fn known_pearson_value() {
        // Anscombe's quartet, set I: r ≈ 0.81642.
        let x = [10.0, 8.0, 13.0, 9.0, 11.0, 14.0, 6.0, 4.0, 12.0, 7.0, 5.0];
        let y = [
            8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68,
        ];
        let r = pearson(&x, &y).unwrap();
        assert!((r.r - 0.81642).abs() < 1e-4, "got {}", r.r);
        // scipy gives p ≈ 0.00217.
        assert!((r.p_value - 0.00217).abs() < 2e-4, "got {}", r.p_value);
    }

    #[test]
    fn spearman_with_ties_matches_scipy() {
        // Ranks: x -> [1, 2.5, 2.5, 4], y -> [1, 3, 2, 4];
        // Pearson over those ranks is 4.5/sqrt(4.5*5) = 0.94868…
        // (matches scipy.stats.spearmanr([1,2,2,3],[1,3,2,4])).
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let s = spearman(&x, &y).unwrap();
        assert!((s.r - 0.948_683).abs() < 1e-5, "got {}", s.r);
    }

    #[test]
    fn independent_noise_is_insignificant() {
        // Deterministic pseudo-noise; independent-ish series.
        let x: Vec<f64> = (0..60).map(|i| ((i * 7919 + 13) % 101) as f64).collect();
        let y: Vec<f64> = (0..60).map(|i| ((i * 104_729 + 31) % 97) as f64).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.r.abs() < 0.35, "got {}", r.r);
        assert!(!r.significant_at(0.01));
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn p_value_monotone_in_r() {
        let p1 = p_value_t(0.3, 50);
        let p2 = p_value_t(0.6, 50);
        let p3 = p_value_t(0.9, 50);
        assert!(p1 > p2 && p2 > p3);
    }

    #[test]
    fn p_value_monotone_in_n() {
        let p_small = p_value_t(0.5, 10);
        let p_large = p_value_t(0.5, 100);
        assert!(p_small > p_large);
    }

    #[test]
    fn incomplete_beta_bounds() {
        assert_eq!(incomplete_beta_reg(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta_reg(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform CDF).
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((incomplete_beta_reg(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }
}
