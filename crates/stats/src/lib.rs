//! # titan-stats
//!
//! Statistics substrate for the Titan GPU reliability study reproduction.
//!
//! The SC '15 paper leans on a small but specific statistical toolkit:
//! Pearson and Spearman correlation with p-values (Observations 11–13),
//! MTBF estimation from inter-arrival times (Observation 1), burstiness
//! characterization (Observation 6), and heavy-tailed "offender"
//! distributions for per-card susceptibility (Observation 10). This crate
//! implements that toolkit from scratch so the rest of the workspace has no
//! external stats dependency.
//!
//! Everything here is deterministic given its inputs; samplers take an
//! explicit [`rand::Rng`] so callers control seeding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod correlation;
pub mod ecdf;
pub mod estimators;
pub mod histogram;
pub mod rank;
pub mod samplers;
pub mod summary;

pub use bootstrap::{spearman_bootstrap, BootstrapInterval};
pub use correlation::{pearson, spearman, CorrResult};
pub use ecdf::Ecdf;
pub use estimators::{burstiness, exponential_mle, mtbf_hours, InterArrival};
pub use histogram::{Histogram, HistogramError};
pub use rank::{average_ranks, top_k_indices};
pub use samplers::{Exponential, LogNormal, Pareto, PoissonCounter, Weibull, WeightedAlias};
pub use summary::Summary;
