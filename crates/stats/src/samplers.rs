//! Random samplers for the fault and workload models.
//!
//! Implemented from first principles over [`rand::Rng`] (inverse-CDF and
//! Box–Muller) so the only randomness dependency is `rand` itself:
//!
//! * [`Exponential`] — Poisson-process inter-arrival times (DBEs are
//!   memoryless at fleet level; MTBF ≈ 160 h per Observation 1).
//! * [`Weibull`] — wear-out shapes for the off-the-bus integration epidemic.
//! * [`LogNormal`] — job sizes / durations; classic HPC workload marginals.
//! * [`Pareto`] — heavy-tailed per-card SBE susceptibility: a tiny set of
//!   "offender" cards dominates total SBE volume (Observation 10).
//! * [`PoissonCounter`] — Poisson counts for per-interval event totals.

use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates the distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Option<Self> {
        (lambda > 0.0 && lambda.is_finite()).then_some(Exponential { lambda })
    }

    /// Mean inter-arrival time.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one sample by inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - U in (0,1] avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// `k < 1` gives infant-mortality behaviour (a decreasing hazard — the
/// off-the-bus cards failed early then stopped), `k > 1` wear-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates the distribution; both parameters must be positive and finite.
    pub fn new(shape: f64, scale: f64) -> Option<Self> {
        (shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite())
            .then_some(Weibull { shape, scale })
    }

    /// Draws one sample by inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    /// Distribution mean, `scale · Γ(1 + 1/shape)`.
    pub fn mean(&self) -> f64 {
        self.scale * (crate::correlation::ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `sigma` must be nonnegative and finite.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (sigma >= 0.0 && mu.is_finite() && sigma.is_finite()).then_some(LogNormal { mu, sigma })
    }

    /// Convenience constructor from the desired *median* and sigma:
    /// median of LogNormal(mu, sigma) is exp(mu).
    pub fn from_median(median: f64, sigma: f64) -> Option<Self> {
        (median > 0.0).then(|| LogNormal::new(median.ln(), sigma)).flatten()
    }

    /// Draws one sample (Box–Muller under the hood).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Distribution mean exp(mu + sigma²/2).
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Pareto (Type I) distribution with minimum `x_min` and tail index `alpha`.
/// Small `alpha` (≈1) concentrates mass in a few extreme draws — the
/// "top-10 offender cards dominate" phenomenon of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates the distribution; both parameters must be positive and finite.
    pub fn new(x_min: f64, alpha: f64) -> Option<Self> {
        (x_min > 0.0 && alpha > 0.0 && x_min.is_finite() && alpha.is_finite())
            .then_some(Pareto { x_min, alpha })
    }

    /// Draws one sample by inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Poisson count sampler.
///
/// Uses Knuth's product method for small means and a normal approximation
/// with continuity correction above `mean > 30` (fleet-day SBE totals are
/// in the hundreds, so the approximation path is the hot one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonCounter {
    mean: f64,
}

impl PoissonCounter {
    /// Creates the sampler; `mean` must be nonnegative and finite.
    pub fn new(mean: f64) -> Option<Self> {
        (mean >= 0.0 && mean.is_finite()).then_some(PoissonCounter { mean })
    }

    /// Draws one count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean == 0.0 {
            return 0;
        }
        if self.mean > 30.0 {
            let z = standard_normal(rng);
            let x = self.mean + self.mean.sqrt() * z + 0.5;
            return x.max(0.0) as u64;
        }
        let l = (-self.mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            // Defensive cap: probability of reaching this is ~0 for mean<=30.
            if k > 10_000 {
                return k;
            }
        }
    }
}

/// One standard-normal draw via Box–Muller (single value; the pair's twin
/// is discarded for simplicity — sampling is not a bottleneck here).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exponential::new(0.0).is_none());
        assert!(Exponential::new(-1.0).is_none());
        assert!(Exponential::new(f64::NAN).is_none());
        assert!(Weibull::new(0.0, 1.0).is_none());
        assert!(Weibull::new(1.0, f64::INFINITY).is_none());
        assert!(LogNormal::new(f64::NAN, 1.0).is_none());
        assert!(LogNormal::from_median(0.0, 1.0).is_none());
        assert!(Pareto::new(1.0, 0.0).is_none());
        assert!(PoissonCounter::new(-0.5).is_none());
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(1.0 / 160.0).unwrap(); // MTBF 160 h
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(d.sample(&mut r));
        }
        assert!((s.mean() - 160.0).abs() < 5.0, "mean {}", s.mean());
        // Exponential: CV = 1.
        assert!((s.cv() - 1.0).abs() < 0.05, "cv {}", s.cv());
    }

    #[test]
    fn weibull_reduces_to_exponential_at_shape_one() {
        let d = Weibull::new(1.0, 10.0).unwrap();
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(d.sample(&mut r));
        }
        assert!((s.mean() - 10.0).abs() < 0.5);
        assert!((d.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn weibull_infant_mortality_cv_exceeds_one() {
        let d = Weibull::new(0.5, 10.0).unwrap();
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(d.sample(&mut r));
        }
        assert!(s.cv() > 1.5, "shape<1 should be overdispersed, cv={}", s.cv());
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::from_median(100.0, 0.5).unwrap();
        let mut r = rng();
        let mut v: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let med = v[v.len() / 2];
        assert!((med - 100.0).abs() < 5.0, "median {med}");
        let mean = Summary::of(&v).mean();
        assert!((mean - d.mean()).abs() / d.mean() < 0.05);
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = Pareto::new(1.0, 1.1).unwrap();
        let mut r = rng();
        let mut v: Vec<f64> = (0..10_000).map(|_| d.sample(&mut r)).collect();
        v.sort_by(|a, b| b.total_cmp(a));
        let total: f64 = v.iter().sum();
        let top10: f64 = v[..10].iter().sum();
        // With alpha=1.1 the top-10 of 10k draws should carry a large share.
        assert!(top10 / total > 0.15, "top10 share {}", top10 / total);
        assert!(v.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn poisson_small_mean() {
        let d = PoissonCounter::new(3.0).unwrap();
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(d.sample(&mut r) as f64);
        }
        assert!((s.mean() - 3.0).abs() < 0.1);
        assert!((s.variance() - 3.0).abs() < 0.2); // Poisson: var == mean
    }

    #[test]
    fn poisson_large_mean_normal_path() {
        let d = PoissonCounter::new(400.0).unwrap();
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(d.sample(&mut r) as f64);
        }
        assert!((s.mean() - 400.0).abs() < 2.0);
        assert!((s.variance() - 400.0).abs() < 30.0);
    }

    #[test]
    fn poisson_zero_mean() {
        let d = PoissonCounter::new(0.0).unwrap();
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..50_000 {
            s.push(standard_normal(&mut r));
        }
        assert!(s.mean().abs() < 0.02);
        assert!((s.variance() - 1.0).abs() < 0.03);
    }
}

/// Walker alias table: O(1) sampling of an index `0..n` proportional to a
/// static weight vector. Zero-weight entries are never returned.
///
/// Used for the fleet's weighted card/slot picks (per-card SBE
/// susceptibility, per-cage thermal acceleration), which happen hundreds
/// of thousands of times per simulated study.
#[derive(Debug, Clone)]
pub struct WeightedAlias {
    items: Vec<usize>,
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl WeightedAlias {
    /// Builds the table. Returns `None` when no weight is positive or any
    /// weight is negative/non-finite.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.iter().any(|w| *w < 0.0 || !w.is_finite()) {
            return None;
        }
        let entries: Vec<(usize, f64)> = weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, &w)| (i, w))
            .collect();
        if entries.is_empty() {
            return None;
        }
        let n = entries.len();
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        let mut prob: Vec<f64> = entries.iter().map(|&(_, w)| w * n as f64 / total).collect();
        let items: Vec<usize> = entries.iter().map(|&(i, _)| i).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = (0..n).filter(|&i| prob[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| prob[i] >= 1.0).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = prob[l] + prob[s] - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Some(WeightedAlias { items, prob, alias })
    }

    /// Number of positive-weight entries.
    pub fn support(&self) -> usize {
        self.items.len()
    }

    /// Draws one original-vector index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.items.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            self.items[i]
        } else {
            self.items[self.alias[i]]
        }
    }
}

#[cfg(test)]
mod alias_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_weights() {
        assert!(WeightedAlias::new(&[]).is_none());
        assert!(WeightedAlias::new(&[0.0, 0.0]).is_none());
        assert!(WeightedAlias::new(&[1.0, -0.5]).is_none());
        assert!(WeightedAlias::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn matches_weights_empirically() {
        let w = [1.0, 0.0, 3.0, 6.0];
        let a = WeightedAlias::new(&w).unwrap();
        assert_eq!(a.support(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u64; 4];
        const N: u64 = 100_000;
        for _ in 0..N {
            counts[a.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item sampled");
        for (i, &wi) in w.iter().enumerate() {
            if wi > 0.0 {
                let got = counts[i] as f64 / N as f64;
                let want = wi / 10.0;
                assert!((got - want).abs() < 0.01, "item {i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn single_item_always_returned() {
        let a = WeightedAlias::new(&[0.0, 5.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(a.sample(&mut rng), 1);
        }
    }
}
