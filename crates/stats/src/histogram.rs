//! Fixed-bin histograms used for the paper's monthly frequency figures
//! (Figs. 2, 4, 6, 9–11) and the retirement-delay buckets of Fig. 8.

use serde::{Deserialize, Serialize};

/// Errors constructing or filling a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// `lo >= hi` or zero bins requested.
    BadRange,
    /// Edges for a custom-edge histogram were not strictly increasing.
    EdgesNotIncreasing,
}

impl std::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistogramError::BadRange => write!(f, "histogram range is empty or bin count is zero"),
            HistogramError::EdgesNotIncreasing => {
                write!(f, "histogram edges must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

/// A histogram over explicit bin edges `e0 < e1 < … < ek`; bin *i* covers
/// `[e_i, e_{i+1})`, with the last bin closed on the right. Values outside
/// the range are counted separately as underflow/overflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
}

impl Histogram {
    /// Uniform-width histogram with `bins` bins over `[lo, hi]`.
    pub fn uniform(lo: f64, hi: f64, bins: usize) -> Result<Self, HistogramError> {
        if !(lo < hi) || bins == 0 {
            return Err(HistogramError::BadRange);
        }
        let w = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + w * i as f64).collect();
        Ok(Self::from_edges_unchecked(edges))
    }

    /// Histogram over caller-supplied edges (e.g. Fig. 8's irregular
    /// delay buckets: ≤10 min, 10 min–6 h, …).
    pub fn with_edges(edges: Vec<f64>) -> Result<Self, HistogramError> {
        if edges.len() < 2 {
            return Err(HistogramError::BadRange);
        }
        if edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(HistogramError::EdgesNotIncreasing);
        }
        Ok(Self::from_edges_unchecked(edges))
    }

    fn from_edges_unchecked(edges: Vec<f64>) -> Self {
        let n = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
            nan: 0,
        }
    }

    /// Adds one observation. `NaN`s are counted separately (they belong
    /// to no bin) rather than panicking — histogram inputs are often
    /// derived ratios where 0/0 can slip through.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        let x = x + 0.0; // normalize -0.0 so it lands with +0.0 edges
        let lo = self.edges[0];
        let hi = *self.edges.last().expect("edges nonempty");
        if x < lo {
            self.underflow += 1;
            return;
        }
        if x > hi {
            self.overflow += 1;
            return;
        }
        if x == hi {
            // Last bin is closed on the right.
            let last = self.counts.len() - 1;
            self.counts[last] += 1;
            return;
        }
        // Binary search for the bin: largest i with edges[i] <= x.
        let i = match self.edges.binary_search_by(|e| e.total_cmp(&x)) {
            Ok(i) => i.min(self.counts.len() - 1),
            Err(i) => i - 1,
        };
        self.counts[i] += 1;
    }

    /// Fills from a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin edges (`counts().len() + 1` of them).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// `NaN` observations, which belong to no bin.
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// (bin center, count) pairs, handy for rendering.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        self.edges
            .windows(2)
            .zip(&self.counts)
            .map(|(w, &c)| ((w[0] + w[1]) / 2.0, c))
            .collect()
    }

    /// Index of the fullest bin (first one on ties), or `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total() == 0 {
            return None;
        }
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_construction() {
        let h = Histogram::uniform(0.0, 10.0, 5).unwrap();
        assert_eq!(h.counts().len(), 5);
        assert_eq!(h.edges(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn bad_ranges_rejected() {
        assert_eq!(
            Histogram::uniform(1.0, 1.0, 3).unwrap_err(),
            HistogramError::BadRange
        );
        assert_eq!(
            Histogram::uniform(0.0, 1.0, 0).unwrap_err(),
            HistogramError::BadRange
        );
        assert_eq!(
            Histogram::with_edges(vec![0.0, 0.0, 1.0]).unwrap_err(),
            HistogramError::EdgesNotIncreasing
        );
        assert_eq!(
            Histogram::with_edges(vec![0.0]).unwrap_err(),
            HistogramError::BadRange
        );
    }

    #[test]
    fn binning_semantics() {
        let mut h = Histogram::uniform(0.0, 10.0, 5).unwrap();
        h.extend(&[0.0, 1.9, 2.0, 9.9, 10.0, -0.1, 10.1]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn irregular_edges_fig8_style() {
        // Fig. 8 buckets in seconds: [0, 600), [600, 21600), [21600, 86400].
        let mut h = Histogram::with_edges(vec![0.0, 600.0, 21_600.0, 86_400.0]).unwrap();
        h.extend(&[30.0, 599.0, 600.0, 3_600.0, 50_000.0]);
        assert_eq!(h.counts(), &[2, 2, 1]);
    }

    #[test]
    fn centers_and_mode() {
        let mut h = Histogram::uniform(0.0, 4.0, 2).unwrap();
        h.extend(&[0.5, 0.6, 3.0]);
        let c = h.centers();
        assert_eq!(c, vec![(1.0, 2), (3.0, 1)]);
        assert_eq!(h.mode_bin(), Some(0));
        let empty = Histogram::uniform(0.0, 1.0, 2).unwrap();
        assert_eq!(empty.mode_bin(), None);
    }

    #[test]
    fn exact_edge_values_go_right_bin() {
        let mut h = Histogram::uniform(0.0, 3.0, 3).unwrap();
        h.extend(&[1.0, 2.0]);
        assert_eq!(h.counts(), &[0, 1, 1]);
    }

    #[test]
    fn nan_is_counted_not_panicked() {
        let mut h = Histogram::uniform(0.0, 3.0, 3).unwrap();
        h.extend(&[f64::NAN, 1.5, f64::NAN]);
        assert_eq!(h.nan(), 2);
        assert_eq!(h.counts(), &[0, 1, 0]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn negative_zero_lands_in_first_bin() {
        // -0.0 == 0.0 numerically but sorts below it in the IEEE total
        // order; push must normalize it or the bin search underflows.
        let mut h = Histogram::uniform(0.0, 2.0, 2).unwrap();
        h.push(-0.0);
        assert_eq!(h.counts(), &[1, 0]);
        assert_eq!(h.underflow(), 0);
    }
}
