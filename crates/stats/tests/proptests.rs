//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use titan_stats::{average_ranks, pearson, spearman, Ecdf, Histogram, Summary};

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, min_len..64)
}

proptest! {
    /// Correlation coefficients are always within [-1, 1] and p in [0, 1].
    #[test]
    fn correlation_bounds(x in finite_vec(2), y in finite_vec(2)) {
        let n = x.len().min(y.len());
        if let Some(r) = pearson(&x[..n], &y[..n]) {
            prop_assert!((-1.0..=1.0).contains(&r.r));
            prop_assert!((0.0..=1.0).contains(&r.p_value));
        }
        if let Some(r) = spearman(&x[..n], &y[..n]) {
            prop_assert!((-1.0..=1.0).contains(&r.r));
        }
    }

    /// Pearson is symmetric: r(x, y) == r(y, x).
    #[test]
    fn pearson_symmetric(x in finite_vec(3), y in finite_vec(3)) {
        let n = x.len().min(y.len());
        let a = pearson(&x[..n], &y[..n]);
        let b = pearson(&y[..n], &x[..n]);
        match (a, b) {
            (Some(a), Some(b)) => prop_assert!((a.r - b.r).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric None"),
        }
    }

    /// Pearson is invariant under positive affine transforms of either side.
    #[test]
    fn pearson_affine_invariant(x in finite_vec(3), y in finite_vec(3),
                                a in 0.1..10.0f64, b in -100.0..100.0f64) {
        let n = x.len().min(y.len());
        let y2: Vec<f64> = y[..n].iter().map(|v| a * v + b).collect();
        if let (Some(r1), Some(r2)) = (pearson(&x[..n], &y[..n]), pearson(&x[..n], &y2)) {
            prop_assert!((r1.r - r2.r).abs() < 1e-6, "{} vs {}", r1.r, r2.r);
        }
    }

    /// Spearman depends only on ranks: any strictly monotone transform of
    /// y leaves it unchanged.
    #[test]
    fn spearman_monotone_invariant(x in finite_vec(3), y in finite_vec(3)) {
        let n = x.len().min(y.len());
        // Cubing is strictly monotone over all of f64's finite range (no
        // saturation, unlike exp, which would introduce artificial ties).
        let y2: Vec<f64> = y[..n].iter().map(|v| v * v * v).collect();
        if let (Some(r1), Some(r2)) = (spearman(&x[..n], &y[..n]), spearman(&x[..n], &y2)) {
            prop_assert!((r1.r - r2.r).abs() < 1e-6);
        }
    }

    /// Rank sum is always n(n+1)/2 and every rank is within [1, n].
    #[test]
    fn ranks_invariants(x in finite_vec(1)) {
        let r = average_ranks(&x);
        let n = x.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(r.iter().all(|&v| v >= 1.0 && v <= n));
    }

    /// Histogram conserves observations: in-range + under + over == pushed.
    #[test]
    fn histogram_conservation(xs in finite_vec(1), bins in 1usize..20) {
        let mut h = Histogram::uniform(-1000.0, 1000.0, bins).unwrap();
        h.extend(&xs);
        prop_assert_eq!(h.total() + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// Summary::merge is associative with single-pass computation.
    #[test]
    fn summary_merge_consistent(xs in finite_vec(2), split in 0usize..64) {
        let split = split.min(xs.len());
        let whole = Summary::of(&xs);
        let mut a = Summary::of(&xs[..split]);
        a.merge(&Summary::of(&xs[split..]));
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.sum() - whole.sum()).abs() < 1.0);
    }

    /// ECDF is monotone nondecreasing and within [0, 1].
    #[test]
    fn ecdf_monotone(xs in finite_vec(1), probes in finite_vec(2)) {
        let e = Ecdf::new(&xs);
        let mut ps = probes.clone();
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for p in ps {
            let v = e.eval(p);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= last - 1e-12);
            last = v;
        }
    }

    /// Gini is within [0, 1) for nonnegative samples, and top-k share is
    /// monotone in k.
    #[test]
    fn concentration_invariants(xs in prop::collection::vec(0.0..1e6f64, 1..64)) {
        let e = Ecdf::new(&xs);
        let g = e.gini();
        prop_assert!((0.0..1.0 + 1e-9).contains(&g));
        let mut last = 0.0;
        for k in 1..=xs.len() {
            let s = e.share_of_top(k);
            prop_assert!(s >= last - 1e-12);
            prop_assert!(s <= 1.0 + 1e-12);
            last = s;
        }
    }
}
