//! K20X (GK110) architectural constants, straight from paper §2.1.

use serde::{Deserialize, Serialize};

/// The Tesla K20X accelerator as configured on Titan.
///
/// All figures come from §2.1 of the paper: "the K20X GPU has 2688 CUDA
/// cores (28nm process technology). There are a total of 14 SMs and 192
/// CUDA cores within each SM. A single GPU has 3.95 Tflops single
/// precision peak performance and 1.31 Tflops double precision peak
/// performance. The on-chip memory hierarchy on a GPU consists of each SM
/// having 64K registers, 64KB of combined shared memory and L1 cache, and
/// 48KB of read-only data cache. All SMs on the GPU share a 1536 KB L2
/// cache and 6GB GDDR5 memory."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct K20X;

impl K20X {
    /// Streaming multiprocessors per GPU.
    pub const SM_COUNT: u32 = 14;
    /// CUDA cores per SM.
    pub const CORES_PER_SM: u32 = 192;
    /// Total CUDA cores (14 × 192 = 2688).
    pub const CUDA_CORES: u32 = Self::SM_COUNT * Self::CORES_PER_SM;
    /// 32-bit registers per SM (64 K entries).
    pub const REGISTERS_PER_SM: u32 = 64 * 1024;
    /// Combined shared memory + L1 per SM, bytes (64 KB).
    pub const SHMEM_L1_PER_SM: u64 = 64 * 1024;
    /// Read-only data cache per SM, bytes (48 KB).
    pub const READONLY_PER_SM: u64 = 48 * 1024;
    /// Shared L2 cache, bytes (1536 KB).
    pub const L2_BYTES: u64 = 1536 * 1024;
    /// GDDR5 device memory, bytes (6 GB).
    pub const DEVICE_MEMORY_BYTES: u64 = 6 * 1024 * 1024 * 1024;
    /// Single-precision peak, Gflop/s.
    pub const PEAK_SP_GFLOPS: f64 = 3950.0;
    /// Double-precision peak, Gflop/s.
    pub const PEAK_DP_GFLOPS: f64 = 1310.0;
    /// Process technology, nanometres.
    pub const PROCESS_NM: u32 = 28;

    /// Total register-file bytes across the chip: 14 SMs × 64 K × 4 B.
    pub const fn register_file_bytes() -> u64 {
        (Self::SM_COUNT as u64) * (Self::REGISTERS_PER_SM as u64) * 4
    }

    /// Total shared-memory+L1 bytes across the chip.
    pub const fn shmem_l1_bytes() -> u64 {
        (Self::SM_COUNT as u64) * Self::SHMEM_L1_PER_SM
    }

    /// Total read-only cache bytes across the chip.
    pub const fn readonly_bytes() -> u64 {
        (Self::SM_COUNT as u64) * Self::READONLY_PER_SM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_figures() {
        assert_eq!(K20X::CUDA_CORES, 2688);
        assert_eq!(K20X::SM_COUNT, 14);
        assert_eq!(K20X::L2_BYTES, 1_572_864);
        assert_eq!(K20X::DEVICE_MEMORY_BYTES, 6_442_450_944);
        assert!((K20X::PEAK_SP_GFLOPS - 3950.0).abs() < 1e-9);
        assert!((K20X::PEAK_DP_GFLOPS - 1310.0).abs() < 1e-9);
        assert_eq!(K20X::PROCESS_NM, 28);
    }

    #[test]
    fn derived_capacities() {
        // 14 × 64K × 4B = 3.5 MiB of registers.
        assert_eq!(K20X::register_file_bytes(), 3_670_016);
        assert_eq!(K20X::shmem_l1_bytes(), 14 * 64 * 1024);
        assert_eq!(K20X::readonly_bytes(), 14 * 48 * 1024);
    }

    #[test]
    fn device_memory_dwarfs_on_chip_structures() {
        // The paper's Observation 3 hinges on this ordering: device memory
        // is "larger than other memory structures by orders of magnitude".
        let on_chip = K20X::register_file_bytes()
            + K20X::shmem_l1_bytes()
            + K20X::readonly_bytes()
            + K20X::L2_BYTES;
        assert!(K20X::DEVICE_MEMORY_BYTES > 500 * on_chip);
    }
}
