//! A physical GPU card: identity that survives slot moves.
//!
//! Titan's operators "identify cards which incur double bit errors and put
//! them out of the production use (such cards undergo further rigorous
//! testing in a hot-spare cluster before being returned to the vendor
//! after encountering a threshold number of DBEs)" (§3.1). That policy —
//! and the paper's distinct-cards-vs-total-events analyses (Figs. 3(b),
//! 5, 15) — only makes sense if a card's history follows the *card*, not
//! the slot. [`GpuCard`] is that unit of identity.

use serde::{Deserialize, Serialize};

use crate::inforom::InfoRom;
use crate::pages::{PageAddress, PageRetirement, RetireDecision};
use crate::structures::MemoryStructure;

/// Card serial number, unique across the fleet including spares.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct CardSerial(pub u32);

impl std::fmt::Display for CardSerial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Vendor-style serial: constant prefix + zero-padded number.
        write!(f, "032351{:07}", self.0)
    }
}

/// Lifecycle state of a card.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CardState {
    /// Serving in a production slot.
    #[default]
    Production,
    /// Pulled into the hot-spare cluster for stress testing after DBEs.
    HotSpare,
    /// Failed hot-spare stress testing; returned to the vendor.
    ReturnedToVendor,
}

/// One physical K20X card with its persistent error history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuCard {
    /// Serial number.
    pub serial: CardSerial,
    /// Persistent/volatile ECC counters.
    pub inforom: InfoRom,
    /// Dynamic page retirement state.
    pub retirement: PageRetirement,
    /// Lifecycle state.
    pub state: CardState,
    /// Lifetime DBEs observed (production + hot-spare), the operators'
    /// replacement-policy input.
    pub lifetime_dbe: u32,
}

impl GpuCard {
    /// A fresh card.
    pub fn new(serial: CardSerial) -> Self {
        GpuCard {
            serial,
            inforom: InfoRom::new(),
            retirement: PageRetirement::new(),
            state: CardState::Production,
            lifetime_dbe: 0,
        }
    }

    /// Applies a corrected SBE in `structure`; if it struck device memory,
    /// page-retirement bookkeeping runs too (only device-memory pages are
    /// retirable). Returns the retirement decision.
    ///
    /// `retirement_active` gates the dynamic-page-retirement state itself:
    /// before the Jan'14 driver shipped the feature, the driver kept no
    /// per-page bookkeeping at all, so a pre-cutover error must leave the
    /// card's page table untouched — not merely suppress the XID 63
    /// record downstream. ECC counters persist either way; they predate
    /// retirement by years.
    pub fn apply_sbe(
        &mut self,
        structure: MemoryStructure,
        page: Option<PageAddress>,
        retirement_active: bool,
    ) -> RetireDecision {
        self.inforom.record_sbe(structure);
        match (structure, page) {
            (MemoryStructure::DeviceMemory, Some(p)) if retirement_active => {
                self.retirement.record_sbe(p)
            }
            _ => RetireDecision::None,
        }
    }

    /// Applies a DBE. `inforom_persisted` is false when the node crashed
    /// before the NVML write (Observation 2). Returns the retirement
    /// decision for device-memory strikes; `retirement_active` gates the
    /// page-retirement state as in [`GpuCard::apply_sbe`].
    pub fn apply_dbe(
        &mut self,
        structure: MemoryStructure,
        page: Option<PageAddress>,
        inforom_persisted: bool,
        retirement_active: bool,
    ) -> RetireDecision {
        self.lifetime_dbe += 1;
        self.inforom.record_dbe(structure, inforom_persisted);
        match (structure, page) {
            (MemoryStructure::DeviceMemory, Some(p)) if retirement_active => {
                self.retirement.record_dbe(p)
            }
            _ => RetireDecision::None,
        }
    }

    /// Operator policy: pull the card to the hot-spare cluster.
    pub fn move_to_hot_spare(&mut self) {
        self.state = CardState::HotSpare;
    }

    /// Operator policy: card failed hot-spare stress testing.
    pub fn return_to_vendor(&mut self) {
        self.state = CardState::ReturnedToVendor;
    }

    /// Whether this card is currently usable in production.
    pub fn in_production(&self) -> bool {
        self.state == CardState::Production
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::RetirementCause;

    #[test]
    fn serial_format() {
        assert_eq!(format!("{}", CardSerial(42)), "0323510000042");
    }

    #[test]
    fn fresh_card() {
        let c = GpuCard::new(CardSerial(1));
        assert!(c.in_production());
        assert_eq!(c.lifetime_dbe, 0);
    }

    #[test]
    fn dbe_on_device_memory_retires_page() {
        let mut c = GpuCard::new(CardSerial(1));
        let d = c.apply_dbe(MemoryStructure::DeviceMemory, Some(PageAddress(10)), true, true);
        assert_eq!(d, RetireDecision::Retired(RetirementCause::DoubleBitError));
        assert_eq!(c.lifetime_dbe, 1);
        assert_eq!(c.inforom.aggregate_dbe(MemoryStructure::DeviceMemory), 1);
    }

    #[test]
    fn dbe_on_register_file_does_not_retire() {
        let mut c = GpuCard::new(CardSerial(1));
        let d = c.apply_dbe(MemoryStructure::RegisterFile, None, true, true);
        assert_eq!(d, RetireDecision::None);
        assert_eq!(c.lifetime_dbe, 1);
        assert_eq!(c.retirement.retired_pages().len(), 0);
    }

    #[test]
    fn unpersisted_dbe_still_counts_lifetime() {
        let mut c = GpuCard::new(CardSerial(1));
        c.apply_dbe(MemoryStructure::DeviceMemory, Some(PageAddress(3)), false, true);
        assert_eq!(c.lifetime_dbe, 1);
        assert_eq!(c.inforom.aggregate_dbe(MemoryStructure::DeviceMemory), 0);
        // The page still retires — retirement happens in the driver before
        // the node goes down; the InfoROM write is the racy part.
        assert_eq!(c.retirement.retired_pages().len(), 1);
    }

    #[test]
    fn sbe_pair_retires_via_card_api() {
        let mut c = GpuCard::new(CardSerial(9));
        assert_eq!(
            c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(77)), true),
            RetireDecision::None
        );
        assert_eq!(
            c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(77)), true),
            RetireDecision::Retired(RetirementCause::MultipleSingleBitErrors)
        );
    }

    #[test]
    fn l2_sbe_never_touches_pages() {
        let mut c = GpuCard::new(CardSerial(9));
        for _ in 0..10 {
            assert_eq!(
                c.apply_sbe(MemoryStructure::L2Cache, Some(PageAddress(1)), true),
                RetireDecision::None
            );
        }
        assert_eq!(c.retirement.retired_pages().len(), 0);
        assert_eq!(c.inforom.volatile_sbe(MemoryStructure::L2Cache), 10);
    }

    /// Regression: with retirement inactive (pre-Jan'14 driver), errors
    /// must leave the page table untouched while ECC counters still
    /// accumulate — previously the state mutated unconditionally.
    #[test]
    fn inactive_retirement_leaves_page_state_untouched() {
        let mut c = GpuCard::new(CardSerial(2));
        let d = c.apply_dbe(MemoryStructure::DeviceMemory, Some(PageAddress(10)), true, false);
        assert_eq!(d, RetireDecision::None);
        for _ in 0..5 {
            assert_eq!(
                c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(10)), false),
                RetireDecision::None
            );
        }
        assert_eq!(c.retirement.retired_pages().len(), 0);
        // The counters are older than the retirement feature.
        assert_eq!(c.lifetime_dbe, 1);
        assert_eq!(c.inforom.aggregate_dbe(MemoryStructure::DeviceMemory), 1);
        assert_eq!(c.inforom.volatile_sbe(MemoryStructure::DeviceMemory), 5);
        // Once the driver ships, the same page retires normally: the
        // pre-cutover strikes left no half-recorded SBE pair behind.
        assert_eq!(
            c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(10)), true),
            RetireDecision::None
        );
        assert_eq!(
            c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(10)), true),
            RetireDecision::Retired(RetirementCause::MultipleSingleBitErrors)
        );
    }

    #[test]
    fn lifecycle_transitions() {
        let mut c = GpuCard::new(CardSerial(5));
        c.move_to_hot_spare();
        assert!(!c.in_production());
        assert_eq!(c.state, CardState::HotSpare);
        c.return_to_vendor();
        assert_eq!(c.state, CardState::ReturnedToVendor);
    }
}
