//! The InfoROM: the card's persistent error-counter store, with the
//! logging pathology the paper spends half of §3.1 on.
//!
//! nvidia-smi reads aggregate ECC counters and retired-page addresses from
//! NVML, which persists them in the card's InfoROM. Two real-world quirks
//! are modelled faithfully because the paper's Observation 2 is *about*
//! them:
//!
//! 1. **DBE loss on crash** — "a double bit error causes the node to shut
//!    down before the DBE incident is logged in the NVML InfoROM … Our
//!    interaction with the vendor confirmed this explanation." A DBE write
//!    is only persisted when the caller says the node survived long enough.
//! 2. **SBE > DBE inversions** — because SBE aggregation happens lazily,
//!    some cards report more DBEs than SBEs over the same window ("it can
//!    be attributed to inconsistency in logging"). We model lazy SBE
//!    flushes: volatile SBE counts persist only at periodic flush points,
//!    so a crash can lose the volatile tail.

use serde::{Deserialize, Serialize};

use crate::structures::MemoryStructure;

/// Number of ECC-counted structures (see [`MemoryStructure::ECC_COUNTED`]).
const N_COUNTED: usize = MemoryStructure::ECC_COUNTED.len();

/// Index of a structure in the counted arrays, or `None` if nvidia-smi
/// does not report it.
fn counted_index(s: MemoryStructure) -> Option<usize> {
    MemoryStructure::ECC_COUNTED.iter().position(|&m| m == s)
}

/// Persistent + volatile ECC counters for one card.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InfoRom {
    /// Persisted (aggregate) counters, survive reboot.
    agg_sbe: [u64; N_COUNTED],
    agg_dbe: [u64; N_COUNTED],
    /// Volatile counters since the last driver reload.
    vol_sbe: [u64; N_COUNTED],
    vol_dbe: [u64; N_COUNTED],
    /// Volatile SBEs not yet flushed into the aggregate store.
    unflushed_sbe: [u64; N_COUNTED],
}

impl InfoRom {
    /// Fresh card.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a corrected SBE. Always lands in the volatile counter;
    /// reaches the persistent aggregate only at the next [`flush_sbe`].
    ///
    /// [`flush_sbe`]: InfoRom::flush_sbe
    pub fn record_sbe(&mut self, s: MemoryStructure) {
        if let Some(i) = counted_index(s) {
            self.vol_sbe[i] += 1;
            self.unflushed_sbe[i] += 1;
        }
    }

    /// Records a DBE. `persisted` is false when the node crashed before
    /// NVML could write the InfoROM — the Observation 2 undercount path.
    pub fn record_dbe(&mut self, s: MemoryStructure, persisted: bool) {
        if let Some(i) = counted_index(s) {
            self.vol_dbe[i] += 1;
            if persisted {
                self.agg_dbe[i] += 1;
            }
        }
    }

    /// Flushes volatile SBE counts into the persistent aggregates (the
    /// driver does this periodically and at orderly shutdown).
    pub fn flush_sbe(&mut self) {
        for i in 0..N_COUNTED {
            self.agg_sbe[i] += self.unflushed_sbe[i];
            self.unflushed_sbe[i] = 0;
        }
    }

    /// Driver reload / node reboot: volatile counters clear. When
    /// `orderly` the pending SBEs are flushed first; on a crash they are
    /// lost (producing the SBE-undercount inconsistency).
    pub fn driver_reload(&mut self, orderly: bool) {
        if orderly {
            self.flush_sbe();
        }
        self.vol_sbe = [0; N_COUNTED];
        self.vol_dbe = [0; N_COUNTED];
        self.unflushed_sbe = [0; N_COUNTED];
    }

    /// Aggregate (persistent) SBE count for one structure.
    pub fn aggregate_sbe(&self, s: MemoryStructure) -> u64 {
        counted_index(s).map_or(0, |i| self.agg_sbe[i])
    }

    /// The aggregate SBE count *as NVML reports it*: persisted plus
    /// pending-flush. This is what nvidia-smi prints; the pending part is
    /// what a crash loses (the undercount pathology).
    pub fn reported_sbe(&self, s: MemoryStructure) -> u64 {
        counted_index(s).map_or(0, |i| self.agg_sbe[i] + self.unflushed_sbe[i])
    }

    /// Aggregate (persistent) DBE count for one structure.
    pub fn aggregate_dbe(&self, s: MemoryStructure) -> u64 {
        counted_index(s).map_or(0, |i| self.agg_dbe[i])
    }

    /// Volatile SBE count for one structure.
    pub fn volatile_sbe(&self, s: MemoryStructure) -> u64 {
        counted_index(s).map_or(0, |i| self.vol_sbe[i])
    }

    /// Volatile DBE count for one structure.
    pub fn volatile_dbe(&self, s: MemoryStructure) -> u64 {
        counted_index(s).map_or(0, |i| self.vol_dbe[i])
    }

    /// Total aggregate SBEs across structures.
    pub fn total_aggregate_sbe(&self) -> u64 {
        self.agg_sbe.iter().sum()
    }

    /// Total aggregate DBEs across structures.
    pub fn total_aggregate_dbe(&self) -> u64 {
        self.agg_dbe.iter().sum()
    }

    /// Total volatile SBEs across structures.
    pub fn total_volatile_sbe(&self) -> u64 {
        self.vol_sbe.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::MemoryStructure::*;

    #[test]
    fn sbe_needs_flush_to_persist() {
        let mut ir = InfoRom::new();
        ir.record_sbe(L2Cache);
        ir.record_sbe(L2Cache);
        assert_eq!(ir.volatile_sbe(L2Cache), 2);
        assert_eq!(ir.aggregate_sbe(L2Cache), 0);
        ir.flush_sbe();
        assert_eq!(ir.aggregate_sbe(L2Cache), 2);
        // Flushing twice must not double count.
        ir.flush_sbe();
        assert_eq!(ir.aggregate_sbe(L2Cache), 2);
    }

    #[test]
    fn dbe_persistence_flag() {
        let mut ir = InfoRom::new();
        ir.record_dbe(DeviceMemory, true);
        ir.record_dbe(DeviceMemory, false); // node died first
        assert_eq!(ir.volatile_dbe(DeviceMemory), 2);
        assert_eq!(ir.aggregate_dbe(DeviceMemory), 1);
    }

    #[test]
    fn crash_reload_loses_unflushed_sbes() {
        let mut ir = InfoRom::new();
        ir.record_sbe(DeviceMemory);
        ir.record_sbe(DeviceMemory);
        ir.record_sbe(DeviceMemory);
        ir.driver_reload(false); // crash
        assert_eq!(ir.aggregate_sbe(DeviceMemory), 0);
        assert_eq!(ir.volatile_sbe(DeviceMemory), 0);
    }

    #[test]
    fn orderly_reload_keeps_sbes() {
        let mut ir = InfoRom::new();
        ir.record_sbe(RegisterFile);
        ir.driver_reload(true);
        assert_eq!(ir.aggregate_sbe(RegisterFile), 1);
        assert_eq!(ir.volatile_sbe(RegisterFile), 0);
    }

    #[test]
    fn observation2_inversion_is_representable() {
        // A card whose SBEs are always lost to crashes but whose DBEs are
        // persisted shows DBE > SBE — the inconsistency the paper calls out.
        let mut ir = InfoRom::new();
        ir.record_sbe(DeviceMemory);
        ir.driver_reload(false); // SBE lost
        ir.record_dbe(DeviceMemory, true);
        ir.record_dbe(DeviceMemory, true);
        assert!(ir.total_aggregate_dbe() > ir.total_aggregate_sbe());
        // The volatile view forgot the pre-reload SBE entirely.
        assert_eq!(ir.total_volatile_sbe(), 0);
    }

    #[test]
    fn uncounted_structures_ignored() {
        let mut ir = InfoRom::new();
        ir.record_sbe(ControlLogic);
        ir.record_dbe(ReadOnlyCache, true);
        assert_eq!(ir.total_aggregate_sbe(), 0);
        assert_eq!(ir.total_aggregate_dbe(), 0);
        assert_eq!(ir.aggregate_sbe(ControlLogic), 0);
    }

    #[test]
    fn per_structure_isolation() {
        let mut ir = InfoRom::new();
        ir.record_sbe(L2Cache);
        ir.record_sbe(DeviceMemory);
        ir.flush_sbe();
        assert_eq!(ir.aggregate_sbe(L2Cache), 1);
        assert_eq!(ir.aggregate_sbe(DeviceMemory), 1);
        assert_eq!(ir.aggregate_sbe(RegisterFile), 0);
        assert_eq!(ir.total_aggregate_sbe(), 2);
    }
}
