//! The GPU error taxonomy of the paper's Tables 1 and 2, keyed by NVIDIA
//! XID code.
//!
//! Two deliberate subtleties carried over from the paper:
//!
//! * single-bit errors and off-the-bus events have *no* XID — SBEs never
//!   reach the console log at all (they are only visible through
//!   nvidia-smi), and off-the-bus events are logged by the host side;
//! * XIDs 57/58 appear in both tables ("some errors may appear in both
//!   tables since determining precise source of a particular error is not
//!   always possible"), so [`GpuErrorKind::category`] returns
//!   [`ErrorCategory::Ambiguous`] for them.

use serde::{Deserialize, Serialize};

/// NVIDIA XID code (the "Xid" field of a console-log error line).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Xid(pub u8);

impl std::fmt::Display for Xid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Source attribution per the paper's two tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCategory {
    /// Table 1: caused by hardware or cosmic rays.
    Hardware,
    /// Table 2: application, driver, firmware or thermal causes.
    SoftwareFirmware,
    /// Listed in both tables (XIDs 57 and 58).
    Ambiguous,
}

/// Every GPU-related error event the study tracks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum GpuErrorKind {
    /// Single bit error, corrected by SECDED. No XID; invisible to the
    /// console log (nvidia-smi only).
    SingleBitError,
    /// Double bit error, detected but uncorrectable — SECDED always
    /// crashes the program. XID 48.
    DoubleBitError,
    /// "Off the bus": host lost the PCIe connection to the GPU. A system
    /// integration issue, not GPU micro-architecture. No XID.
    OffTheBus,
    /// Display engine error. XID 56.
    DisplayEngine,
    /// Error programming the video memory interface. XID 57 (both tables).
    VideoMemoryProgramming,
    /// Unstable video memory interface detected. XID 58 (both tables).
    UnstableVideoMemory,
    /// ECC page retirement recording event. XID 63.
    EccPageRetirement,
    /// ECC page retirement/remapping failure. XID 64.
    EccPageRetirementFailure,
    /// Video processor exception (hardware attribution). XID 65.
    VideoProcessorHw,
    /// Graphics engine exception — driver, user app, FB corruption, bus or
    /// thermal. The paper's canonical bursty application error. XID 13.
    GraphicsEngineException,
    /// GPU memory page fault (driver or user app). XID 31.
    GpuMemoryPageFault,
    /// Invalid or corrupted push buffer stream. XID 32.
    PushBufferStream,
    /// Driver firmware error. XID 38.
    DriverFirmware,
    /// Video processor exception (driver attribution). XID 42 — the paper
    /// notes it never occurred on Titan.
    VideoProcessorSw,
    /// GPU stopped processing (driver). XID 43.
    GpuStoppedProcessing,
    /// Graphics engine fault during context switch (driver). XID 44.
    ContextSwitchFault,
    /// Preemptive cleanup, due to previous errors (driver). XID 45.
    PreemptiveCleanup,
    /// Internal micro-controller halt — the *old* driver's code. XID 59.
    MicrocontrollerHaltOld,
    /// Internal micro-controller halt — new driver, thermal causes. XID 62.
    MicrocontrollerHaltNew,
}

impl GpuErrorKind {
    /// All kinds in stable reporting order.
    pub const ALL: [GpuErrorKind; 19] = [
        GpuErrorKind::SingleBitError,
        GpuErrorKind::DoubleBitError,
        GpuErrorKind::OffTheBus,
        GpuErrorKind::DisplayEngine,
        GpuErrorKind::VideoMemoryProgramming,
        GpuErrorKind::UnstableVideoMemory,
        GpuErrorKind::EccPageRetirement,
        GpuErrorKind::EccPageRetirementFailure,
        GpuErrorKind::VideoProcessorHw,
        GpuErrorKind::GraphicsEngineException,
        GpuErrorKind::GpuMemoryPageFault,
        GpuErrorKind::PushBufferStream,
        GpuErrorKind::DriverFirmware,
        GpuErrorKind::VideoProcessorSw,
        GpuErrorKind::GpuStoppedProcessing,
        GpuErrorKind::ContextSwitchFault,
        GpuErrorKind::PreemptiveCleanup,
        GpuErrorKind::MicrocontrollerHaltOld,
        GpuErrorKind::MicrocontrollerHaltNew,
    ];

    /// XID code, when the event has one.
    pub fn xid(self) -> Option<Xid> {
        use GpuErrorKind::*;
        let x = match self {
            SingleBitError | OffTheBus => return None,
            DoubleBitError => 48,
            DisplayEngine => 56,
            VideoMemoryProgramming => 57,
            UnstableVideoMemory => 58,
            EccPageRetirement => 63,
            EccPageRetirementFailure => 64,
            VideoProcessorHw => 65,
            GraphicsEngineException => 13,
            GpuMemoryPageFault => 31,
            PushBufferStream => 32,
            DriverFirmware => 38,
            VideoProcessorSw => 42,
            GpuStoppedProcessing => 43,
            ContextSwitchFault => 44,
            PreemptiveCleanup => 45,
            MicrocontrollerHaltOld => 59,
            MicrocontrollerHaltNew => 62,
        };
        Some(Xid(x))
    }

    /// Reverse lookup from an XID code. XIDs 65 and 42 are distinct codes
    /// so the mapping is unambiguous.
    pub fn from_xid(xid: Xid) -> Option<GpuErrorKind> {
        GpuErrorKind::ALL
            .into_iter()
            .find(|k| k.xid() == Some(xid))
    }

    /// Table attribution.
    pub fn category(self) -> ErrorCategory {
        use GpuErrorKind::*;
        match self {
            SingleBitError | DoubleBitError | OffTheBus | DisplayEngine | EccPageRetirement
            | EccPageRetirementFailure | VideoProcessorHw => ErrorCategory::Hardware,
            VideoMemoryProgramming | UnstableVideoMemory => ErrorCategory::Ambiguous,
            GraphicsEngineException | GpuMemoryPageFault | PushBufferStream | DriverFirmware
            | VideoProcessorSw | GpuStoppedProcessing | ContextSwitchFault | PreemptiveCleanup
            | MicrocontrollerHaltOld | MicrocontrollerHaltNew => ErrorCategory::SoftwareFirmware,
        }
    }

    /// Whether the event terminates the application running on the node.
    ///
    /// SBEs are corrected transparently; a retirement *recording* (two-SBE
    /// path) does not crash ("the application crashes in the first
    /// \[DBE\] case, but not in the second"); everything else interrupts
    /// execution.
    pub fn crashes_application(self) -> bool {
        use GpuErrorKind::*;
        !matches!(self, SingleBitError | EccPageRetirement)
    }

    /// Human-readable description, as would appear in vendor docs.
    pub fn description(self) -> &'static str {
        use GpuErrorKind::*;
        match self {
            SingleBitError => "Single Bit Error (corrected by the SECDED ECC)",
            DoubleBitError => "Double Bit Error (detected by the SECDED ECC, but not corrected)",
            OffTheBus => "GPU off the bus",
            DisplayEngine => "Display Engine error",
            VideoMemoryProgramming => "Error programming video memory interface",
            UnstableVideoMemory => "Unstable video memory interface detected",
            EccPageRetirement => "ECC page retirement event",
            EccPageRetirementFailure => "ECC page retirement or row remapper failure",
            VideoProcessorHw => "Video processor exception",
            GraphicsEngineException => "Graphics Engine Exception",
            GpuMemoryPageFault => "GPU memory page fault",
            PushBufferStream => "Invalid or corrupted push buffer stream",
            DriverFirmware => "Driver firmware error",
            VideoProcessorSw => "Video processor exception",
            GpuStoppedProcessing => "GPU stopped processing",
            ContextSwitchFault => "Graphics Engine fault during context switch",
            PreemptiveCleanup => "Preemptive cleanup, due to previous errors",
            MicrocontrollerHaltOld => "Internal micro-controller halt (legacy driver)",
            MicrocontrollerHaltNew => "Internal micro-controller halt",
        }
    }

    /// Stable snake_case label for telemetry keys (health-doc class
    /// names, counter suffixes). Frozen alongside `titan-health/1`:
    /// renaming one is a schema change.
    pub fn short_name(self) -> &'static str {
        use GpuErrorKind::*;
        match self {
            SingleBitError => "sbe",
            DoubleBitError => "dbe",
            OffTheBus => "otb",
            DisplayEngine => "display_engine",
            VideoMemoryProgramming => "video_memory_programming",
            UnstableVideoMemory => "unstable_video_memory",
            EccPageRetirement => "ecc_page_retirement",
            EccPageRetirementFailure => "ecc_page_retirement_failure",
            VideoProcessorHw => "video_processor_hw",
            GraphicsEngineException => "graphics_engine_exception",
            GpuMemoryPageFault => "gpu_memory_page_fault",
            PushBufferStream => "push_buffer_stream",
            DriverFirmware => "driver_firmware",
            VideoProcessorSw => "video_processor_sw",
            GpuStoppedProcessing => "gpu_stopped_processing",
            ContextSwitchFault => "context_switch_fault",
            PreemptiveCleanup => "preemptive_cleanup",
            MicrocontrollerHaltOld => "microcontroller_halt_old",
            MicrocontrollerHaltNew => "microcontroller_halt_new",
        }
    }

    /// True for errors whose *possible causes* include the user
    /// application (per NVIDIA's XID documentation, reflected in Table 2).
    /// These are the bursty ones of Observation 6.
    pub fn user_application_possible(self) -> bool {
        use GpuErrorKind::*;
        matches!(
            self,
            GraphicsEngineException | GpuMemoryPageFault | PushBufferStream
        )
    }
}

impl std::fmt::Display for GpuErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.xid() {
            Some(x) => write!(f, "{} (Xid {})", self.description(), x),
            None => f.write_str(self.description()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xid_codes_match_tables() {
        use GpuErrorKind::*;
        assert_eq!(DoubleBitError.xid(), Some(Xid(48)));
        assert_eq!(GraphicsEngineException.xid(), Some(Xid(13)));
        assert_eq!(GpuMemoryPageFault.xid(), Some(Xid(31)));
        assert_eq!(PushBufferStream.xid(), Some(Xid(32)));
        assert_eq!(DriverFirmware.xid(), Some(Xid(38)));
        assert_eq!(VideoProcessorSw.xid(), Some(Xid(42)));
        assert_eq!(GpuStoppedProcessing.xid(), Some(Xid(43)));
        assert_eq!(ContextSwitchFault.xid(), Some(Xid(44)));
        assert_eq!(PreemptiveCleanup.xid(), Some(Xid(45)));
        assert_eq!(DisplayEngine.xid(), Some(Xid(56)));
        assert_eq!(VideoMemoryProgramming.xid(), Some(Xid(57)));
        assert_eq!(UnstableVideoMemory.xid(), Some(Xid(58)));
        assert_eq!(MicrocontrollerHaltOld.xid(), Some(Xid(59)));
        assert_eq!(MicrocontrollerHaltNew.xid(), Some(Xid(62)));
        assert_eq!(EccPageRetirement.xid(), Some(Xid(63)));
        assert_eq!(EccPageRetirementFailure.xid(), Some(Xid(64)));
        assert_eq!(VideoProcessorHw.xid(), Some(Xid(65)));
        assert_eq!(SingleBitError.xid(), None);
        assert_eq!(OffTheBus.xid(), None);
    }

    #[test]
    fn from_xid_roundtrip() {
        for k in GpuErrorKind::ALL {
            if let Some(x) = k.xid() {
                assert_eq!(GpuErrorKind::from_xid(x), Some(k), "{k:?}");
            }
        }
        assert_eq!(GpuErrorKind::from_xid(Xid(99)), None);
    }

    #[test]
    fn ambiguous_errors_in_both_tables() {
        assert_eq!(
            GpuErrorKind::VideoMemoryProgramming.category(),
            ErrorCategory::Ambiguous
        );
        assert_eq!(
            GpuErrorKind::UnstableVideoMemory.category(),
            ErrorCategory::Ambiguous
        );
    }

    #[test]
    fn crash_semantics() {
        assert!(!GpuErrorKind::SingleBitError.crashes_application());
        assert!(!GpuErrorKind::EccPageRetirement.crashes_application());
        assert!(GpuErrorKind::DoubleBitError.crashes_application());
        assert!(GpuErrorKind::OffTheBus.crashes_application());
        assert!(GpuErrorKind::GraphicsEngineException.crashes_application());
    }

    #[test]
    fn user_app_kinds_are_table2() {
        for k in GpuErrorKind::ALL {
            if k.user_application_possible() {
                assert_eq!(k.category(), ErrorCategory::SoftwareFirmware);
            }
        }
    }

    #[test]
    fn short_names_are_unique_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for k in GpuErrorKind::ALL {
            let n = k.short_name();
            assert!(!n.is_empty());
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{n}"
            );
            assert!(seen.insert(n), "duplicate short name {n}");
        }
    }

    #[test]
    fn display_includes_xid() {
        let s = format!("{}", GpuErrorKind::DoubleBitError);
        assert!(s.contains("Xid 48"), "{s}");
        let s = format!("{}", GpuErrorKind::OffTheBus);
        assert!(!s.contains("Xid"), "{s}");
    }
}
