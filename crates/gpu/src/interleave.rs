//! ECC interleaving: the mechanism behind Observation 3.
//!
//! The paper finds 86% of DBEs in device memory and 14% in the register
//! file "despite it being a much smaller structure", and speculates:
//! "a less effective interleaving technique may be employed … More
//! effective interleaving techniques may cause more area and time
//! overhead — causing them to be less attractive in fabrication and from
//! the access-latency standpoint."
//!
//! This module makes that speculation a model. A physical upset flips a
//! *cluster* of adjacent bits (particle strikes deposit charge across
//! neighbouring cells). With bit interleaving of degree *I*, adjacent
//! physical bits belong to *I* different ECC words, so a cluster of
//! `k ≤ I` bits lands as `k` correctable single-bit errors; only
//! clusters wider than `I` put two bits in one word and defeat SECDED.
//!
//! * Device memory (DRAM): high interleaving is cheap across chips —
//!   large `I`, so almost every cluster is correctable; DBEs there come
//!   from its sheer area.
//! * Register file (SRAM, latency-critical): interleaving costs wiring
//!   and access time — small `I`, so even 2-bit clusters become DBEs.
//!
//! With cluster statistics from beam studies and real area ratios, the
//! 86/14 split *emerges* (see `derived_split_matches_paper`), instead of
//! being injected.

use serde::{Deserialize, Serialize};

use crate::structures::MemoryStructure;

/// Distribution of upset cluster widths (bits flipped by one strike).
/// Probabilities over widths `1..=MAX_CLUSTER`, from neutron-beam
/// characterizations of 28 nm SRAM/DRAM: mostly single-bit, with a
/// geometric-ish multi-bit tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDistribution {
    /// `p[k-1]` = probability of a k-bit cluster. Sums to 1.
    pub p: Vec<f64>,
}

impl Default for ClusterDistribution {
    fn default() -> Self {
        ClusterDistribution {
            p: vec![0.55, 0.30, 0.09, 0.04, 0.015, 0.005],
        }
    }
}

impl ClusterDistribution {
    /// Probability a cluster is wider than `i` bits.
    pub fn tail_beyond(&self, i: u32) -> f64 {
        self.p.iter().skip(i as usize).sum()
    }

    /// Checks normalization.
    pub fn is_normalized(&self) -> bool {
        (self.p.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

/// Interleaving degree per structure on the K20X (model values: the real
/// floorplans are proprietary, which is exactly why the paper could only
/// speculate — these are chosen from the physics constraints it cites).
pub fn interleave_degree(s: MemoryStructure) -> u32 {
    match s {
        // DRAM: words striped across chips/banks — solid interleaving,
        // though bounded by burst-access granularity.
        MemoryStructure::DeviceMemory => 4,
        // Large on-chip SRAM arrays afford moderate interleaving.
        MemoryStructure::L2Cache => 4,
        MemoryStructure::SharedL1 => 4,
        MemoryStructure::TextureMemory => 4,
        MemoryStructure::ReadOnlyCache => 4,
        MemoryStructure::InstructionCache => 4,
        // Register file: single-cycle access, heavily banked and ported —
        // interleaving is the expensive "area and time overhead" the
        // paper names. Minimal degree.
        MemoryStructure::RegisterFile => 1,
        MemoryStructure::ControlLogic => 1,
    }
}

/// Probability that one physical upset in `s` defeats SECDED (≥2 bits in
/// one ECC word), under `clusters`.
pub fn dbe_probability(s: MemoryStructure, clusters: &ClusterDistribution) -> f64 {
    clusters.tail_beyond(interleave_degree(s))
}

/// Expected share of fleet DBEs per structure, derived from area-weighted
/// strike rates × per-strike DBE probability. Returns `(structure,
/// share)` pairs over the SECDED structures, descending.
pub fn derived_dbe_split(clusters: &ClusterDistribution) -> Vec<(MemoryStructure, f64)> {
    let structures = [
        MemoryStructure::DeviceMemory,
        MemoryStructure::L2Cache,
        MemoryStructure::RegisterFile,
        MemoryStructure::SharedL1,
    ];
    // Strike rate ∝ capacity; SRAM cells are several times larger and
    // more charge-sensitive per bit than DRAM at the same node, so their
    // per-bit upset cross-section is higher.
    let per_bit_sensitivity = |s: MemoryStructure| match s {
        MemoryStructure::DeviceMemory => 1.0,
        // 28 nm SRAM latches flip on far less deposited charge than DRAM
        // storage capacitors; beam studies put the per-bit cross-section
        // ratio around an order of magnitude.
        _ => 12.0,
    };
    let weights: Vec<f64> = structures
        .iter()
        .map(|&s| {
            s.capacity_bytes() as f64
                * per_bit_sensitivity(s)
                * dbe_probability(s, clusters)
        })
        .collect();
    let total: f64 = weights.iter().sum();
    let mut out: Vec<(MemoryStructure, f64)> = structures
        .iter()
        .zip(&weights)
        .map(|(&s, &w)| (s, if total > 0.0 { w / total } else { 0.0 }))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

/// The ablation the paper implicitly recommends: give the register file
/// the same interleaving as the caches and recompute its DBE share.
pub fn regfile_fix_ablation(clusters: &ClusterDistribution) -> (f64, f64) {
    let baseline = derived_dbe_split(clusters)
        .into_iter()
        .find(|&(s, _)| s == MemoryStructure::RegisterFile)
        .map(|(_, f)| f)
        .unwrap_or(0.0);
    // Re-derive with the register file at degree 4: its DBE probability
    // falls to the >4-bit tail.
    let structures = [
        (MemoryStructure::DeviceMemory, 4u32, 1.0),
        (MemoryStructure::L2Cache, 4, 12.0),
        (MemoryStructure::RegisterFile, 4, 12.0),
        (MemoryStructure::SharedL1, 4, 12.0),
    ];
    let weights: Vec<f64> = structures
        .iter()
        .map(|&(s, i, sens)| s.capacity_bytes() as f64 * sens * clusters.tail_beyond(i))
        .collect();
    let total: f64 = weights.iter().sum();
    let fixed = weights[2] / total;
    (baseline, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_distribution_normalized() {
        let c = ClusterDistribution::default();
        assert!(c.is_normalized());
        assert!((c.tail_beyond(0) - 1.0).abs() < 1e-9);
        assert_eq!(c.tail_beyond(10), 0.0);
        // Tail is monotone nonincreasing.
        for i in 0..8 {
            assert!(c.tail_beyond(i) >= c.tail_beyond(i + 1));
        }
    }

    #[test]
    fn regfile_dbe_probability_far_exceeds_dram() {
        let c = ClusterDistribution::default();
        let rf = dbe_probability(MemoryStructure::RegisterFile, &c);
        let dm = dbe_probability(MemoryStructure::DeviceMemory, &c);
        assert!(rf > 20.0 * dm, "rf {rf} vs dm {dm}");
        // Register file: every ≥2-bit cluster defeats it.
        assert!((rf - 0.45).abs() < 1e-9);
    }

    #[test]
    fn derived_split_matches_paper() {
        // Observation 3's 86/14 must *emerge* from area × interleaving.
        let split = derived_dbe_split(&ClusterDistribution::default());
        let dm = split
            .iter()
            .find(|&&(s, _)| s == MemoryStructure::DeviceMemory)
            .unwrap()
            .1;
        let rf = split
            .iter()
            .find(|&&(s, _)| s == MemoryStructure::RegisterFile)
            .unwrap()
            .1;
        assert!((0.75..0.95).contains(&dm), "device memory share {dm}");
        assert!((0.04..0.22).contains(&rf), "register file share {rf}");
        // Device memory first, register file second — caches negligible.
        assert_eq!(split[0].0, MemoryStructure::DeviceMemory);
        assert_eq!(split[1].0, MemoryStructure::RegisterFile);
        assert!(split[2].1 < 0.05, "cache share {:?}", split[2]);
    }

    #[test]
    fn fixing_regfile_interleaving_collapses_its_share() {
        let (baseline, fixed) = regfile_fix_ablation(&ClusterDistribution::default());
        assert!(baseline > 0.05);
        assert!(
            fixed < baseline / 5.0,
            "degree-4 interleaving should slash the share: {baseline} -> {fixed}"
        );
    }
}
