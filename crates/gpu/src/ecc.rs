//! SECDED outcome state machine.
//!
//! Translates a raw bit-upset (where it struck and how many bits flipped)
//! into the observable consequence on a K20X:
//!
//! * SECDED structure, 1 bit  → corrected; SBE counter increments; the
//!   application never notices.
//! * SECDED structure, ≥2 bits → detected, uncorrectable; "when a DBE is
//!   encountered, SECDED mechanism always crashes the program" (§3.1).
//! * Parity structure, 1 bit  → detected; the read-only cache recovers by
//!   refetching (clean data exists upstream), so no crash, but the event
//!   is counted.
//! * Parity structure, ≥2 bits → an even number of flips can defeat
//!   parity: silent data corruption; odd counts detect and refetch.
//! * Unprotected logic → the paper: "this opens up the possibility of a
//!   soft-error causing side-effects (crash or silent data corruption),
//!   but still not being caught by the ECC mechanism."

use serde::{Deserialize, Serialize};

use crate::structures::{MemoryStructure, Protection};

/// A raw upset: the physical strike before ECC interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccEvent {
    /// Structure struck.
    pub structure: MemoryStructure,
    /// Number of bits flipped within one ECC word.
    pub flipped_bits: u8,
}

/// Observable consequence of an upset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccOutcome {
    /// Corrected single-bit error; counted, harmless.
    CorrectedSbe,
    /// Detected, uncorrectable double-bit error; the program is killed.
    UncorrectedDbe,
    /// Parity detected the flip and the structure refetched clean data.
    ParityRecovered,
    /// The upset escaped detection entirely.
    SilentCorruption,
    /// Upset in unprotected logic that manifested as a crash.
    LogicCrash,
}

impl EccOutcome {
    /// Whether the running application is terminated.
    pub fn crashes_application(self) -> bool {
        matches!(self, EccOutcome::UncorrectedDbe | EccOutcome::LogicCrash)
    }

    /// Whether the outcome is visible to *any* counter or log. Silent
    /// corruption is, definitionally, not.
    pub fn observable(self) -> bool {
        !matches!(self, EccOutcome::SilentCorruption)
    }
}

/// Resolves an upset through the structure's protection.
///
/// `logic_crash` decides the crash-vs-silent coin for unprotected logic;
/// callers pass a pre-drawn boolean so this function stays deterministic
/// and RNG-free.
pub fn resolve(event: EccEvent, logic_crash: bool) -> EccOutcome {
    match event.structure.protection() {
        Protection::Secded => {
            if event.flipped_bits <= 1 {
                EccOutcome::CorrectedSbe
            } else {
                EccOutcome::UncorrectedDbe
            }
        }
        Protection::Parity => {
            if event.flipped_bits % 2 == 1 {
                EccOutcome::ParityRecovered
            } else {
                EccOutcome::SilentCorruption
            }
        }
        Protection::Unprotected => {
            if logic_crash {
                EccOutcome::LogicCrash
            } else {
                EccOutcome::SilentCorruption
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures::MemoryStructure::*;

    fn ev(structure: MemoryStructure, bits: u8) -> EccEvent {
        EccEvent {
            structure,
            flipped_bits: bits,
        }
    }

    #[test]
    fn secded_single_bit_corrected() {
        for s in [DeviceMemory, L2Cache, RegisterFile, SharedL1, TextureMemory] {
            assert_eq!(resolve(ev(s, 1), false), EccOutcome::CorrectedSbe);
        }
    }

    #[test]
    fn secded_double_bit_always_crashes() {
        let out = resolve(ev(DeviceMemory, 2), false);
        assert_eq!(out, EccOutcome::UncorrectedDbe);
        assert!(out.crashes_application());
        // Triple-bit upsets in a SECDED word are also uncorrectable.
        assert_eq!(resolve(ev(RegisterFile, 3), false), EccOutcome::UncorrectedDbe);
    }

    #[test]
    fn parity_odd_recovers_even_escapes() {
        assert_eq!(resolve(ev(ReadOnlyCache, 1), false), EccOutcome::ParityRecovered);
        assert_eq!(
            resolve(ev(ReadOnlyCache, 2), false),
            EccOutcome::SilentCorruption
        );
        assert_eq!(resolve(ev(ReadOnlyCache, 3), false), EccOutcome::ParityRecovered);
    }

    #[test]
    fn unprotected_logic_flips_coin() {
        assert_eq!(resolve(ev(ControlLogic, 1), true), EccOutcome::LogicCrash);
        assert_eq!(
            resolve(ev(ControlLogic, 1), false),
            EccOutcome::SilentCorruption
        );
    }

    #[test]
    fn observability() {
        assert!(EccOutcome::CorrectedSbe.observable());
        assert!(EccOutcome::UncorrectedDbe.observable());
        assert!(!EccOutcome::SilentCorruption.observable());
        assert!(!EccOutcome::CorrectedSbe.crashes_application());
        assert!(!EccOutcome::ParityRecovered.crashes_application());
        assert!(EccOutcome::LogicCrash.crashes_application());
    }

    #[test]
    fn zero_bit_event_is_noop_correction() {
        // Degenerate input: zero flipped bits is treated as corrected.
        assert_eq!(resolve(ev(L2Cache, 0), false), EccOutcome::CorrectedSbe);
    }
}
