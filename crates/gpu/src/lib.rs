//! # titan-gpu
//!
//! Device model of the NVIDIA Tesla K20X (GK110) as deployed on Titan —
//! the hardware substrate of the paper's §2.1:
//!
//! * [`arch`] — the chip inventory: 14 SMs × 192 CUDA cores, 6 GB GDDR5,
//!   1536 KB shared L2, per-SM register file / shared memory / L1 /
//!   read-only cache, with peak-rate constants.
//! * [`structures`] — the memory-structure taxonomy with sizes and
//!   protection class (SECDED, parity, or unprotected), matching the
//!   paper's protection inventory ("register files, shared-memory, L1 and
//!   L2 caches are SECDED ECC protected, while the read-only data cache is
//!   parity protected").
//! * [`errors`] — the GPU error taxonomy of Tables 1 and 2, keyed by
//!   NVIDIA XID code.
//! * [`ecc`] — the SECDED outcome state machine: single-bit upsets are
//!   corrected and counted, double-bit upsets are detected and crash the
//!   executing application, upsets in unprotected logic escape as crashes
//!   or silent data corruption.
//! * [`pages`] — dynamic page retirement: a device-memory page is retired
//!   after one DBE or two SBEs, addresses persist in the InfoROM, and the
//!   framebuffer excludes them at the next driver load (paper §3.1).
//! * [`inforom`] — the InfoROM counter store with its documented
//!   pathology: a DBE that brings the node down before the NVML write
//!   completes is never persisted, which is why nvidia-smi undercounts
//!   DBEs relative to the console log (Observation 2).
//! * [`interleave`] — the ECC-interleaving model behind Observation 3:
//!   the 86%/14% device-memory/register-file DBE split *derived* from
//!   upset-cluster statistics, structure areas, and per-structure
//!   interleaving degrees (the register file's being minimal — the
//!   "area and time overhead" trade the paper names).
//! * [`card`] — a physical card: serial number + InfoROM + page state,
//!   which keeps its history when operators move it between slots and the
//!   hot-spare cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod card;
pub mod ecc;
pub mod errors;
pub mod inforom;
pub mod interleave;
pub mod pages;
pub mod structures;

pub use arch::K20X;
pub use card::{CardSerial, GpuCard};
pub use ecc::{EccEvent, EccOutcome};
pub use errors::{ErrorCategory, GpuErrorKind, Xid};
pub use inforom::InfoRom;
pub use interleave::{dbe_probability, derived_dbe_split, ClusterDistribution};
pub use pages::{PageAddress, PageRetirement, RetirementCause};
pub use structures::{MemoryStructure, Protection};
