//! Dynamic page retirement, paper §3.1:
//!
//! > "ECC page retirement error is supposed to happen under two
//! > circumstances: (1) one double bit error or (2) two single bit errors
//! > in the same page. Page address is stored in the InfoROM and when the
//! > driver loads it can get to know these page addresses and framebuffer
//! > can ensure that these pages are not used by the application. This
//! > essentially improves the life of the card. The application crashes in
//! > the first case, but not in the second case."
//!
//! The feature (and its XID 63/64) only exists from the Jan 2014 driver
//! onwards — the fleet simulator gates retirement behind the driver epoch,
//! which is what makes Fig. 6 empty before Jan'14.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::arch::K20X;

/// Device-memory page index (4 KiB pages over the 6 GB framebuffer).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PageAddress(pub u32);

/// Bytes per retirable page.
pub const PAGE_BYTES: u64 = 4096;

/// Number of retirable pages on a K20X.
pub const PAGE_COUNT: u32 = (K20X::DEVICE_MEMORY_BYTES / PAGE_BYTES) as u32;

/// Why a page was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetirementCause {
    /// One double-bit error on the page (application crashed).
    DoubleBitError,
    /// Two single-bit errors accumulated on the same page (no crash).
    MultipleSingleBitErrors,
}

/// Outcome of feeding an ECC event into the retirement engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetireDecision {
    /// Nothing to do yet.
    None,
    /// Page crossed its threshold and was retired.
    Retired(RetirementCause),
    /// Threshold crossed but the InfoROM retirement table is full — the
    /// real driver raises XID 64 in this situation.
    TableFull,
}

/// Maximum retired-page entries the InfoROM can hold. The K20X-era
/// driver reserved space for 64 dynamically retired pages.
pub const RETIREMENT_TABLE_CAPACITY: usize = 64;

/// SBEs on the same page needed to trigger retirement.
pub const SBE_RETIRE_THRESHOLD: u32 = 2;

/// Per-card dynamic page retirement state.
///
/// Sparse: a card sees at most a handful of error-touched pages over its
/// life, so per-page counters live in a small map rather than a 1.5 M
/// entry array per card (there are 18,688 cards).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PageRetirement {
    sbe_counts: BTreeMap<PageAddress, u32>,
    retired: Vec<(PageAddress, RetirementCause)>,
}

impl PageRetirement {
    /// Fresh card with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a single-bit error on `page`. Retires the page on the
    /// second SBE (if capacity remains).
    pub fn record_sbe(&mut self, page: PageAddress) -> RetireDecision {
        if self.is_retired(page) {
            // Retired pages are excluded by the framebuffer; a new SBE on
            // one indicates the driver has not yet reloaded. Count nothing.
            return RetireDecision::None;
        }
        let c = self.sbe_counts.entry(page).or_insert(0);
        *c += 1;
        if *c >= SBE_RETIRE_THRESHOLD {
            self.retire(page, RetirementCause::MultipleSingleBitErrors)
        } else {
            RetireDecision::None
        }
    }

    /// Records a double-bit error on `page`: immediate retirement.
    pub fn record_dbe(&mut self, page: PageAddress) -> RetireDecision {
        if self.is_retired(page) {
            return RetireDecision::None;
        }
        self.retire(page, RetirementCause::DoubleBitError)
    }

    fn retire(&mut self, page: PageAddress, cause: RetirementCause) -> RetireDecision {
        if self.retired.len() >= RETIREMENT_TABLE_CAPACITY {
            return RetireDecision::TableFull;
        }
        self.sbe_counts.remove(&page);
        self.retired.push((page, cause));
        RetireDecision::Retired(cause)
    }

    /// Whether `page` is already excluded from the framebuffer.
    pub fn is_retired(&self, page: PageAddress) -> bool {
        self.retired.iter().any(|&(p, _)| p == page)
    }

    /// Retired pages with causes, in retirement order (as nvidia-smi
    /// `--query-retired-pages` would list them).
    pub fn retired_pages(&self) -> &[(PageAddress, RetirementCause)] {
        &self.retired
    }

    /// Count of retired pages by cause — nvidia-smi reports the
    /// "double bit ecc" and "single bit ecc" retirement tallies separately.
    pub fn retired_counts(&self) -> (u32, u32) {
        let dbe = self
            .retired
            .iter()
            .filter(|(_, c)| *c == RetirementCause::DoubleBitError)
            .count() as u32;
        let sbe = self.retired.len() as u32 - dbe;
        (dbe, sbe)
    }

    /// Pages currently carrying exactly one SBE (one more retires them).
    pub fn pages_at_risk(&self) -> usize {
        self.sbe_counts
            .values()
            .filter(|&&c| c == SBE_RETIRE_THRESHOLD - 1)
            .count()
    }

    /// Framebuffer bytes lost to retirement.
    pub fn retired_bytes(&self) -> u64 {
        self.retired.len() as u64 * PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_count_matches_capacity() {
        assert_eq!(PAGE_COUNT as u64 * PAGE_BYTES, K20X::DEVICE_MEMORY_BYTES);
        assert_eq!(PAGE_COUNT, 1_572_864);
    }

    #[test]
    fn dbe_retires_immediately() {
        let mut pr = PageRetirement::new();
        let d = pr.record_dbe(PageAddress(100));
        assert_eq!(d, RetireDecision::Retired(RetirementCause::DoubleBitError));
        assert!(pr.is_retired(PageAddress(100)));
        assert_eq!(pr.retired_counts(), (1, 0));
    }

    #[test]
    fn two_sbes_same_page_retire() {
        let mut pr = PageRetirement::new();
        assert_eq!(pr.record_sbe(PageAddress(7)), RetireDecision::None);
        assert_eq!(pr.pages_at_risk(), 1);
        assert_eq!(
            pr.record_sbe(PageAddress(7)),
            RetireDecision::Retired(RetirementCause::MultipleSingleBitErrors)
        );
        assert_eq!(pr.retired_counts(), (0, 1));
        assert_eq!(pr.pages_at_risk(), 0);
    }

    #[test]
    fn sbes_on_different_pages_do_not_retire() {
        let mut pr = PageRetirement::new();
        for i in 0..100 {
            assert_eq!(pr.record_sbe(PageAddress(i)), RetireDecision::None);
        }
        assert_eq!(pr.retired_pages().len(), 0);
        assert_eq!(pr.pages_at_risk(), 100);
    }

    #[test]
    fn events_on_retired_page_ignored() {
        let mut pr = PageRetirement::new();
        pr.record_dbe(PageAddress(5));
        assert_eq!(pr.record_sbe(PageAddress(5)), RetireDecision::None);
        assert_eq!(pr.record_dbe(PageAddress(5)), RetireDecision::None);
        assert_eq!(pr.retired_pages().len(), 1);
    }

    #[test]
    fn table_capacity_enforced() {
        let mut pr = PageRetirement::new();
        for i in 0..RETIREMENT_TABLE_CAPACITY as u32 {
            assert!(matches!(
                pr.record_dbe(PageAddress(i)),
                RetireDecision::Retired(_)
            ));
        }
        assert_eq!(
            pr.record_dbe(PageAddress(9999)),
            RetireDecision::TableFull
        );
        assert_eq!(pr.retired_pages().len(), RETIREMENT_TABLE_CAPACITY);
        assert_eq!(pr.retired_bytes(), RETIREMENT_TABLE_CAPACITY as u64 * 4096);
    }

    #[test]
    fn mixed_causes_counted_separately() {
        let mut pr = PageRetirement::new();
        pr.record_dbe(PageAddress(1));
        pr.record_sbe(PageAddress(2));
        pr.record_sbe(PageAddress(2));
        pr.record_dbe(PageAddress(3));
        assert_eq!(pr.retired_counts(), (2, 1));
    }
}
