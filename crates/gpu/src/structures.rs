//! Memory-structure taxonomy with capacities and protection classes.
//!
//! Paper §2.1: "Major structures of a GPU, such as device memory, L2
//! cache, instruction cache, register files, shared memory, and L1 cache
//! region, are typically protected by a Single Error Correction Double
//! Error Detection (SECDED) ECC. … In K20X GPU architecture, the register
//! files, shared-memory, L1 and L2 caches are SECDED ECC protected, while
//! the read-only data cache is parity protected." Logic, queues,
//! schedulers and the interconnect are unprotected.

use serde::{Deserialize, Serialize};

use crate::arch::K20X;

/// ECC protection class of a structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// Single-error-correct, double-error-detect ECC.
    Secded,
    /// Parity: detects single-bit flips but cannot correct them. The
    /// read-only data cache can recover by refetching clean data.
    Parity,
    /// No protection: upsets escape as crashes or silent corruption.
    Unprotected,
}

/// Storage and logic structures of the K20X that faults can strike.
///
/// The SECDED-protected memory structures are the ones that appear in the
/// paper's per-structure breakdowns (Fig. 3(c) for DBEs; §4 notes most
/// SBEs land in the L2 despite its small size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemoryStructure {
    /// 6 GB GDDR5 framebuffer.
    DeviceMemory,
    /// 1536 KB chip-wide L2.
    L2Cache,
    /// Per-SM register files, 3.5 MiB total.
    RegisterFile,
    /// Per-SM shared memory / L1 split, 896 KiB total.
    SharedL1,
    /// Per-SM read-only (texture/const) data cache, 672 KiB total.
    /// Parity-protected only.
    ReadOnlyCache,
    /// Texture memory path (the paper's Fig. 3(c) lists texture memory as
    /// a DBE-able structure).
    TextureMemory,
    /// Instruction cache.
    InstructionCache,
    /// Unprotected control logic: queues, thread-block & warp schedulers,
    /// instruction dispatch, interconnect.
    ControlLogic,
}

impl MemoryStructure {
    /// All structures, in a stable order used for reporting.
    pub const ALL: [MemoryStructure; 8] = [
        MemoryStructure::DeviceMemory,
        MemoryStructure::L2Cache,
        MemoryStructure::RegisterFile,
        MemoryStructure::SharedL1,
        MemoryStructure::ReadOnlyCache,
        MemoryStructure::TextureMemory,
        MemoryStructure::InstructionCache,
        MemoryStructure::ControlLogic,
    ];

    /// The SECDED-protected subset whose SBE/DBE counters nvidia-smi
    /// reports.
    pub const ECC_COUNTED: [MemoryStructure; 5] = [
        MemoryStructure::DeviceMemory,
        MemoryStructure::L2Cache,
        MemoryStructure::RegisterFile,
        MemoryStructure::SharedL1,
        MemoryStructure::TextureMemory,
    ];

    /// Protection class on the K20X.
    pub fn protection(self) -> Protection {
        match self {
            MemoryStructure::DeviceMemory
            | MemoryStructure::L2Cache
            | MemoryStructure::RegisterFile
            | MemoryStructure::SharedL1
            | MemoryStructure::TextureMemory
            | MemoryStructure::InstructionCache => Protection::Secded,
            MemoryStructure::ReadOnlyCache => Protection::Parity,
            MemoryStructure::ControlLogic => Protection::Unprotected,
        }
    }

    /// Capacity in bytes (0 for pure logic).
    pub fn capacity_bytes(self) -> u64 {
        match self {
            MemoryStructure::DeviceMemory => K20X::DEVICE_MEMORY_BYTES,
            MemoryStructure::L2Cache => K20X::L2_BYTES,
            MemoryStructure::RegisterFile => K20X::register_file_bytes(),
            MemoryStructure::SharedL1 => K20X::shmem_l1_bytes(),
            MemoryStructure::ReadOnlyCache => K20X::readonly_bytes(),
            // Texture path shares the read-only cache arrays on GK110; we
            // model a nominal distinct capacity for accounting.
            MemoryStructure::TextureMemory => K20X::readonly_bytes(),
            MemoryStructure::InstructionCache => 8 * 1024 * (K20X::SM_COUNT as u64),
            MemoryStructure::ControlLogic => 0,
        }
    }

    /// Short label used in logs and reports (matches nvidia-smi wording
    /// where one exists).
    pub fn label(self) -> &'static str {
        match self {
            MemoryStructure::DeviceMemory => "Device Memory",
            MemoryStructure::L2Cache => "L2 Cache",
            MemoryStructure::RegisterFile => "Register File",
            MemoryStructure::SharedL1 => "Shared/L1",
            MemoryStructure::ReadOnlyCache => "Read-Only Cache",
            MemoryStructure::TextureMemory => "Texture Memory",
            MemoryStructure::InstructionCache => "Instruction Cache",
            MemoryStructure::ControlLogic => "Control Logic",
        }
    }

    /// Parses a [`MemoryStructure::label`] back; used by the log parser.
    pub fn from_label(s: &str) -> Option<MemoryStructure> {
        MemoryStructure::ALL.into_iter().find(|m| m.label() == s)
    }
}

impl std::fmt::Display for MemoryStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_matches_paper() {
        use MemoryStructure::*;
        assert_eq!(RegisterFile.protection(), Protection::Secded);
        assert_eq!(SharedL1.protection(), Protection::Secded);
        assert_eq!(L2Cache.protection(), Protection::Secded);
        assert_eq!(DeviceMemory.protection(), Protection::Secded);
        assert_eq!(ReadOnlyCache.protection(), Protection::Parity);
        assert_eq!(ControlLogic.protection(), Protection::Unprotected);
    }

    #[test]
    fn label_roundtrip() {
        for m in MemoryStructure::ALL {
            assert_eq!(MemoryStructure::from_label(m.label()), Some(m));
            assert_eq!(format!("{m}"), m.label());
        }
        assert_eq!(MemoryStructure::from_label("bogus"), None);
    }

    #[test]
    fn ecc_counted_are_all_secded() {
        for m in MemoryStructure::ECC_COUNTED {
            assert_eq!(m.protection(), Protection::Secded);
        }
    }

    #[test]
    fn device_memory_is_largest() {
        let dm = MemoryStructure::DeviceMemory.capacity_bytes();
        for m in MemoryStructure::ALL {
            if m != MemoryStructure::DeviceMemory {
                assert!(dm > m.capacity_bytes());
            }
        }
    }

    #[test]
    fn control_logic_has_no_capacity() {
        assert_eq!(MemoryStructure::ControlLogic.capacity_bytes(), 0);
    }
}
