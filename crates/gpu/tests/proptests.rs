//! Property-based tests for the GPU device model.

use proptest::prelude::*;
use titan_gpu::ecc::{resolve, EccEvent};
use titan_gpu::pages::{
    PageAddress, PageRetirement, RetireDecision, RETIREMENT_TABLE_CAPACITY,
};
use titan_gpu::{EccOutcome, GpuErrorKind, InfoRom, MemoryStructure, Protection, Xid};

fn any_structure() -> impl Strategy<Value = MemoryStructure> {
    prop::sample::select(MemoryStructure::ALL.to_vec())
}

proptest! {
    /// SECDED never lets a multi-bit error pass silently and never crashes
    /// on a single bit — the two halves of its contract.
    #[test]
    fn secded_contract(s in any_structure(), bits in 0u8..8, coin in any::<bool>()) {
        let out = resolve(EccEvent { structure: s, flipped_bits: bits }, coin);
        if s.protection() == Protection::Secded {
            if bits <= 1 {
                prop_assert_eq!(out, EccOutcome::CorrectedSbe);
            } else {
                prop_assert_eq!(out, EccOutcome::UncorrectedDbe);
            }
            prop_assert!(out.observable());
        }
    }

    /// Parity detects exactly the odd flip counts.
    #[test]
    fn parity_detects_odd(bits in 1u8..8, coin in any::<bool>()) {
        let out = resolve(EccEvent {
            structure: MemoryStructure::ReadOnlyCache,
            flipped_bits: bits,
        }, coin);
        if bits % 2 == 1 {
            prop_assert_eq!(out, EccOutcome::ParityRecovered);
        } else {
            prop_assert_eq!(out, EccOutcome::SilentCorruption);
        }
    }

    /// XID mapping is a partial bijection: from_xid(xid(k)) == k.
    #[test]
    fn xid_bijection(code in 0u8..=255) {
        if let Some(k) = GpuErrorKind::from_xid(Xid(code)) {
            prop_assert_eq!(k.xid(), Some(Xid(code)));
        }
    }

    /// Page retirement: the retired set never exceeds capacity, never
    /// contains duplicates, and a page needs ≥2 SBEs or 1 DBE to get there.
    #[test]
    fn retirement_invariants(ops in prop::collection::vec(
        (any::<bool>(), 0u32..32), 0..400))
    {
        let mut pr = PageRetirement::new();
        let mut sbe_seen = std::collections::HashMap::<u32, u32>::new();
        for (is_dbe, page) in &ops {
            let d = if *is_dbe {
                pr.record_dbe(PageAddress(*page))
            } else {
                let e = sbe_seen.entry(*page).or_insert(0);
                *e += 1;
                pr.record_sbe(PageAddress(*page))
            };
            if let RetireDecision::Retired(_) = d {
                prop_assert!(pr.is_retired(PageAddress(*page)));
            }
        }
        let retired = pr.retired_pages();
        prop_assert!(retired.len() <= RETIREMENT_TABLE_CAPACITY);
        let mut pages: Vec<u32> = retired.iter().map(|(p, _)| p.0).collect();
        pages.sort_unstable();
        let before = pages.len();
        pages.dedup();
        prop_assert_eq!(pages.len(), before, "duplicate retirement");
    }

    /// InfoROM conservation: aggregate + unflushed-at-crash-loss accounting
    /// never exceeds what was recorded, and flush is idempotent.
    #[test]
    fn inforom_conservation(events in prop::collection::vec(
        (0usize..5, any::<bool>(), any::<bool>()), 0..200))
    {
        let mut ir = InfoRom::new();
        let mut recorded_sbe = 0u64;
        let mut persisted_dbe = 0u64;
        for (si, is_dbe, flag) in &events {
            let s = MemoryStructure::ECC_COUNTED[*si];
            if *is_dbe {
                ir.record_dbe(s, *flag);
                if *flag { persisted_dbe += 1; }
            } else {
                ir.record_sbe(s);
                recorded_sbe += 1;
            }
        }
        prop_assert_eq!(ir.total_aggregate_dbe(), persisted_dbe);
        prop_assert!(ir.total_aggregate_sbe() <= recorded_sbe);
        ir.flush_sbe();
        let after_first = ir.total_aggregate_sbe();
        prop_assert_eq!(after_first, recorded_sbe);
        ir.flush_sbe();
        prop_assert_eq!(ir.total_aggregate_sbe(), after_first);
    }
}
