//! Benches for the extension analyses: checkpoint-policy replay and
//! precursor-based failure prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use titan_analysis::checkpoint::{
    evaluate_policy, interval_sweep, young_interval, CheckpointPolicy,
};
use titan_analysis::prediction::train_and_evaluate;
use titan_bench::{fixture, FIXTURE_DAYS};

fn failure_trace() -> Vec<u64> {
    // Hardware/driver failure *incidents*: exclude application-caused
    // XIDs and collapse per-node re-reports to one event per job, the
    // same trace definition the checkpoint_advisor example uses.
    let study = fixture();
    let mut seen_apids = std::collections::HashSet::new();
    let mut failures: Vec<u64> = study
        .data
        .console
        .iter()
        .filter(|e| {
            e.kind.crashes_application()
                && e.kind != titan_gpu::GpuErrorKind::EccPageRetirement
                && !e.kind.user_application_possible()
        })
        .filter(|e| match e.apid {
            Some(a) => seen_apids.insert(a),
            None => true,
        })
        .map(|e| e.time)
        .collect();
    failures.sort_unstable();
    failures.dedup();
    failures
}

fn bench_checkpoint(c: &mut Criterion) {
    let failures = failure_trace();
    let span = FIXTURE_DAYS * 86_400;
    let mtbf = (failures.last().unwrap() - failures[0]) as f64 / (failures.len() - 1) as f64;
    let young = young_interval(mtbf, 300.0);
    println!(
        "[checkpoint] {} failures, MTBF {:.1} h, Young interval {:.0} s",
        failures.len(),
        mtbf / 3600.0,
        young
    );
    let sweep = interval_sweep(
        &failures,
        span,
        300.0,
        600.0,
        &[young / 4.0, young, young * 4.0],
    );
    for (iv, out) in &sweep {
        println!("  tau {iv:>9.0} s -> efficiency {:.4}", out.efficiency);
    }
    c.bench_function("checkpoint_policy_replay", |b| {
        b.iter(|| {
            evaluate_policy(
                black_box(&failures),
                span,
                300.0,
                600.0,
                CheckpointPolicy::Periodic { interval: young },
            )
        })
    });
}

fn bench_prediction(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let split = FIXTURE_DAYS / 2 * 86_400;
    let (model, score) = train_and_evaluate(events, split, 300, 0.4);
    println!(
        "[prediction] learned {} precursor kinds; precision {:.2}, recall {:.2}",
        model.follow_prob.len(),
        score.precision,
        score.recall
    );
    let mut g = c.benchmark_group("prediction");
    g.sample_size(10); // train+evaluate scans every event's window twice
    g.bench_function("train_and_evaluate", |b| {
        b.iter(|| train_and_evaluate(black_box(events), split, 300, 0.4))
    });
    g.finish();
}

criterion_group!(benches, bench_checkpoint, bench_prediction);
criterion_main!(benches);
