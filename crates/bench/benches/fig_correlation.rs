//! Benches for the correlation figures: Figs. 16–19 (utilization ↔ SBE),
//! Fig. 20 (per-user proxy), and Fig. 21 (workload characterization).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use titan_analysis::correlation::{job_sbe_correlations, JobMetric};
use titan_analysis::user_proxy::user_level_correlation;
use titan_analysis::workload_charac::workload_characterization;
use titan_bench::fixture;

fn bench_fig16_19(c: &mut Criterion) {
    let study = fixture();
    let (jobs, deltas, snaps) = (
        &study.data.jobs,
        &study.data.job_sbe,
        &study.data.snapshots,
    );
    let s = job_sbe_correlations(jobs, deltas, snaps);
    for m in JobMetric::ALL {
        println!(
            "[fig16-19] {}: Spearman {:?} (excl. top-10 {:?})",
            m.label(),
            s.spearman_of(m, false).map(|r| (r * 100.0).round() / 100.0),
            s.spearman_of(m, true).map(|r| (r * 100.0).round() / 100.0),
        );
    }
    c.bench_function("fig16_19_correlation", |b| {
        b.iter(|| job_sbe_correlations(black_box(jobs), black_box(deltas), black_box(snaps)))
    });
}

fn bench_fig20(c: &mut Criterion) {
    let study = fixture();
    let s = user_level_correlation(&study.data.jobs, &study.data.job_sbe, &study.data.snapshots);
    println!(
        "[fig20] user Spearman {:?} (excl. top-10 {:?}) over {} users",
        s.spearman_all.map(|r| (r.r * 100.0).round() / 100.0),
        s.spearman_excluding_top10.map(|r| (r.r * 100.0).round() / 100.0),
        s.rows.len()
    );
    c.bench_function("fig20_user", |b| {
        b.iter(|| {
            user_level_correlation(
                black_box(&study.data.jobs),
                black_box(&study.data.job_sbe),
                black_box(&study.data.snapshots),
            )
        })
    });
}

fn bench_fig21(c: &mut Criterion) {
    let study = fixture();
    let w = workload_characterization(&study.data.jobs);
    println!(
        "[fig21] {} jobs; Spearman(ch,nodes) {:?}; mem-heavy core-hour ratio {:.2}; longest-small {:.2}",
        w.n_jobs,
        w.corehours_nodes_spearman.map(|r| (r * 100.0).round() / 100.0),
        w.memheavy_corehours_ratio,
        w.longest_jobs_small_fraction
    );
    c.bench_function("fig21_workload", |b| {
        b.iter(|| workload_characterization(black_box(&study.data.jobs)))
    });
}

criterion_group!(benches, bench_fig16_19, bench_fig20, bench_fig21);
criterion_main!(benches);
