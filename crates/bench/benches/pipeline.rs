//! Pipeline-throughput benches: the engineering numbers a downstream
//! site would care about — console-log render/parse rates, SEC rule
//! throughput, simulation speed, and the full figure computation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use titan_bench::fixture;
use titan_conlog::format::{parse_stream, render_stream};
use titan_conlog::sec::SecEngine;
use titan_reliability::{Figures, Study, StudyConfig};
use titan_sim::{SimConfig, Simulator};

fn bench_console_render(c: &mut Criterion) {
    let study = fixture();
    let events = &study.sim.console;
    let mut g = c.benchmark_group("console");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("render", |b| {
        b.iter(|| render_stream(black_box(events)).len())
    });
    let text = study.sim.render_console_log();
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse", |b| {
        b.iter(|| parse_stream(black_box(&text)).0.len())
    });
    g.finish();
}

fn bench_sec_engine(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let mut g = c.benchmark_group("sec");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("olcf_rules", |b| {
        b.iter(|| {
            let mut sec = SecEngine::olcf_default();
            sec.ingest_all(black_box(events)).len()
        })
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    // A short window so the bench stays in seconds; throughput is in
    // simulated node-days.
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    g.throughput(Throughput::Elements(30 * 18_688));
    g.bench_function("30_days", |b| {
        b.iter(|| {
            let sim = Simulator::new(SimConfig::quick(30, 0xBE11)).expect("valid");
            sim.run().console.len()
        })
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let study = fixture();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("compute_all", |b| {
        b.iter(|| Figures::compute(black_box(&study.data)))
    });
    g.finish();
}

fn bench_study_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("study");
    g.sample_size(10);
    g.bench_function("quick30_end_to_end", |b| {
        b.iter(|| {
            let s = Study::new(StudyConfig::quick(30, 0xE2E)).run();
            s.figures().fig02_dbe_monthly.total()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_console_render,
    bench_sec_engine,
    bench_simulation,
    bench_figures,
    bench_study_roundtrip
);
criterion_main!(benches);
