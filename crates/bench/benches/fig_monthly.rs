//! Benches for the monthly-frequency figures: Fig. 2 (DBE), Fig. 4
//! (off-the-bus), Fig. 6 (page retirement), Fig. 9 (driver XIDs),
//! Fig. 10 (XID 13), Fig. 11 (micro-controller halts).
//!
//! Each bench regenerates the figure's data series from the fixture's
//! console log and prints the headline numbers once, so `cargo bench`
//! doubles as a figure regeneration harness.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use titan_analysis::filtering::dedup_by_job;
use titan_analysis::timeseries::{burstiness, monthly_counts, mtbf_hours};
use titan_bench::fixture;
use titan_gpu::GpuErrorKind;

fn bench_fig02(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let series = monthly_counts(events, GpuErrorKind::DoubleBitError);
    println!(
        "[fig02] {} DBEs, MTBF {:?} h, burstiness {:?}",
        series.total(),
        mtbf_hours(events, GpuErrorKind::DoubleBitError).map(|h| h.round()),
        burstiness(events, GpuErrorKind::DoubleBitError).map(|b| (b * 100.0).round() / 100.0),
    );
    c.bench_function("fig02_dbe_monthly", |b| {
        b.iter(|| monthly_counts(black_box(events), GpuErrorKind::DoubleBitError))
    });
    c.bench_function("fig02_dbe_mtbf", |b| {
        b.iter(|| mtbf_hours(black_box(events), GpuErrorKind::DoubleBitError))
    });
}

fn bench_fig04(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let series = monthly_counts(events, GpuErrorKind::OffTheBus);
    println!(
        "[fig04] {} OTB events; {} before Jan'14, {} after",
        series.total(),
        series.total_before(7),
        series.total_from(7)
    );
    c.bench_function("fig04_otb_monthly", |b| {
        b.iter(|| monthly_counts(black_box(events), GpuErrorKind::OffTheBus))
    });
}

fn bench_fig06(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let series = monthly_counts(events, GpuErrorKind::EccPageRetirement);
    println!(
        "[fig06] {} retirement records ({} before Jan'14)",
        series.total(),
        series.total_before(7)
    );
    c.bench_function("fig06_retire_monthly", |b| {
        b.iter(|| monthly_counts(black_box(events), GpuErrorKind::EccPageRetirement))
    });
}

fn bench_fig09(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    for kind in [
        GpuErrorKind::GpuMemoryPageFault,
        GpuErrorKind::PushBufferStream,
        GpuErrorKind::GpuStoppedProcessing,
        GpuErrorKind::ContextSwitchFault,
    ] {
        let n = if kind.user_application_possible() {
            dedup_by_job(events, kind, 5).parents.iter().filter(|e| e.kind == kind).count()
        } else {
            events.iter().filter(|e| e.kind == kind).count()
        };
        println!("[fig09] {kind:?}: {n} incidents");
    }
    c.bench_function("fig09_xid_incident_dedup", |b| {
        b.iter(|| dedup_by_job(black_box(events), GpuErrorKind::GpuMemoryPageFault, 5))
    });
}

fn bench_fig10_11(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    println!(
        "[fig10] XID 13: {} raw events, burstiness {:?}",
        events
            .iter()
            .filter(|e| e.kind == GpuErrorKind::GraphicsEngineException)
            .count(),
        burstiness(events, GpuErrorKind::GraphicsEngineException)
            .map(|b| (b * 100.0).round() / 100.0)
    );
    c.bench_function("fig10_xid13_burstiness", |b| {
        b.iter(|| burstiness(black_box(events), GpuErrorKind::GraphicsEngineException))
    });
    c.bench_function("fig11_uchalt_monthly", |b| {
        b.iter(|| {
            (
                monthly_counts(black_box(events), GpuErrorKind::MicrocontrollerHaltOld),
                monthly_counts(black_box(events), GpuErrorKind::MicrocontrollerHaltNew),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_fig02,
    bench_fig04,
    bench_fig06,
    bench_fig09,
    bench_fig10_11
);
criterion_main!(benches);
