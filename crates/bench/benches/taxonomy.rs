//! Benches for Tables 1 & 2 (the XID taxonomy) and Fig. 1 (the physical
//! organization): constant-time invariants plus the cost of the
//! coordinate machinery every spatial analysis rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use titan_gpu::{ErrorCategory, GpuErrorKind, Xid};
use titan_topology::{NodeId, Torus, COMPUTE_NODES, TOTAL_SLOTS};

fn bench_taxonomy(c: &mut Criterion) {
    // Print the tables once: this *is* the T1/T2 artifact.
    println!("[T1] hardware errors:");
    for k in GpuErrorKind::ALL {
        if k.category() == ErrorCategory::Hardware || k.category() == ErrorCategory::Ambiguous {
            println!(
                "  {:?} -> {}",
                k.xid().map(|x| x.0),
                k.description()
            );
        }
    }
    println!("[T2] software/firmware errors:");
    for k in GpuErrorKind::ALL {
        if k.category() == ErrorCategory::SoftwareFirmware
            || k.category() == ErrorCategory::Ambiguous
        {
            println!("  {:?} -> {}", k.xid().map(|x| x.0), k.description());
        }
    }
    c.bench_function("taxonomy_xid_lookup", |b| {
        b.iter(|| {
            let mut hits = 0;
            for code in 0u8..=255 {
                if GpuErrorKind::from_xid(black_box(Xid(code))).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_topology(c: &mut Criterion) {
    println!(
        "[F1] {} slots, {} compute nodes, {} routers",
        TOTAL_SLOTS,
        COMPUTE_NODES,
        titan_topology::GEMINI_ROUTERS
    );
    c.bench_function("topology_location_decode_fleet", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..TOTAL_SLOTS as u32 {
                acc = acc.wrapping_add(NodeId(black_box(i)).location().cage as u32);
            }
            acc
        })
    });
    c.bench_function("topology_cname_roundtrip", |b| {
        let names: Vec<String> = (0..1000u32)
            .map(|i| NodeId(i * 19).location().cname())
            .collect();
        b.iter(|| {
            names
                .iter()
                .filter(|n| titan_topology::Location::parse_cname(black_box(n)).is_ok())
                .count()
        })
    });
    c.bench_function("topology_allocation_order", |b| {
        b.iter(|| Torus.allocation_order().len())
    });
}

criterion_group!(benches, bench_taxonomy, bench_topology);
criterion_main!(benches);
