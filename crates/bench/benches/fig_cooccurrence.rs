//! Benches for the temporal-correlation figures: Fig. 8 (retirement
//! delay after DBE) and Fig. 13 (the 300 s co-occurrence heatmap).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use titan_analysis::cooccurrence::cooccurrence_heatmap;
use titan_analysis::interarrival::retirement_delays;
use titan_bench::fixture;
use titan_faults::calibration;
use titan_gpu::GpuErrorKind;

fn bench_fig08(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let since = calibration::retirement_xid_introduced();
    let d = retirement_delays(events, since);
    println!(
        "[fig08] ≤10min {}, 10min–6h {}, later {}, no-DBE {}, pairs-w/o-retirement {}",
        d.within_10min, d.min10_to_6h, d.later, d.no_preceding_dbe,
        d.dbe_pairs_without_retirement
    );
    c.bench_function("fig08_retire_after_dbe", |b| {
        b.iter(|| retirement_delays(black_box(events), since))
    });
}

fn bench_fig13(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let h = cooccurrence_heatmap(events);
    println!(
        "[fig13] P(48→45)={:?} P(13→43)={:?} diag(13)={:?}",
        h.get(GpuErrorKind::DoubleBitError, GpuErrorKind::PreemptiveCleanup),
        h.get(GpuErrorKind::GraphicsEngineException, GpuErrorKind::GpuStoppedProcessing),
        h.get(
            GpuErrorKind::GraphicsEngineException,
            GpuErrorKind::GraphicsEngineException
        ),
    );
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10); // each pass scans every event's 300 s window
    g.bench_function("heatmap", |b| {
        b.iter(|| cooccurrence_heatmap(black_box(events)))
    });
    g.bench_function("heatmap_no_diagonal", |b| {
        b.iter(|| cooccurrence_heatmap(black_box(events)).without_diagonal())
    });
    g.finish();
}

criterion_group!(benches, bench_fig08, bench_fig13);
criterion_main!(benches);
