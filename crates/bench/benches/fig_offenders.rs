//! Benches for the SBE offender figures: Fig. 14 (spatial skew under
//! top-K exclusion) and Fig. 15 (cage distributions).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use titan_analysis::offenders::sbe_offender_analysis;
use titan_bench::fixture;

fn bench_fig14_15(c: &mut Criterion) {
    let study = fixture();
    let snaps = &study.data.snapshots;
    let a = sbe_offender_analysis(snaps);
    println!(
        "[fig14] {} cards with SBEs ({:.1}%); top-10 share {:.0}%; CV {:.2}→{:.2}→{:.2}",
        a.cards_with_sbe,
        a.affected_fraction * 100.0,
        a.top10_share * 100.0,
        a.levels[0].spatial_cv,
        a.levels[1].spatial_cv,
        a.levels[2].spatial_cv,
    );
    println!(
        "[fig15] distinct-card cage distribution (top-0 removed): {:?}",
        a.levels[0].cage_distinct.by_cage
    );
    c.bench_function("fig14_sbe_spatial", |b| {
        b.iter(|| sbe_offender_analysis(black_box(snaps)))
    });
}

criterion_group!(benches, bench_fig14_15);
criterion_main!(benches);
