//! Benches for the spatial figures: Fig. 3 (DBE grid + cage + structure
//! breakdown), Fig. 5 (OTB), Fig. 7 (retirement), Fig. 12 (XID 13 under
//! the three filterings).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use titan_analysis::consistency::dbe_accounting;
use titan_analysis::spatial::{cage_tally, spatial_grid, spatial_with_filtering};
use titan_bench::fixture;
use titan_gpu::GpuErrorKind;

fn bench_fig03(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let (all, distinct) = cage_tally(events, GpuErrorKind::DoubleBitError);
    let acc = dbe_accounting(events, &study.data.snapshots);
    println!(
        "[fig03] DBE cage {:?} (distinct {:?}); device-memory share {:.0}%; console {} vs nvsmi {}",
        all.by_cage,
        distinct.by_cage,
        acc.device_memory_fraction * 100.0,
        acc.console_dbe,
        acc.nvsmi_dbe
    );
    c.bench_function("fig03a_dbe_grid", |b| {
        b.iter(|| spatial_grid(black_box(events), GpuErrorKind::DoubleBitError, false))
    });
    c.bench_function("fig03b_dbe_cage", |b| {
        b.iter(|| cage_tally(black_box(events), GpuErrorKind::DoubleBitError))
    });
    c.bench_function("fig03c_dbe_accounting", |b| {
        b.iter(|| dbe_accounting(black_box(events), black_box(&study.data.snapshots)))
    });
}

fn bench_fig05_07(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    c.bench_function("fig05_otb_spatial", |b| {
        b.iter(|| {
            (
                spatial_grid(black_box(events), GpuErrorKind::OffTheBus, false),
                cage_tally(black_box(events), GpuErrorKind::OffTheBus),
            )
        })
    });
    c.bench_function("fig07_retire_spatial", |b| {
        b.iter(|| spatial_grid(black_box(events), GpuErrorKind::EccPageRetirement, false))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    let f = spatial_with_filtering(events, GpuErrorKind::GraphicsEngineException);
    println!(
        "[fig12] stripe contrast: unfiltered {:.3}, filtered {:.3}, children {:.3}",
        f.unfiltered.stripe_contrast().unwrap_or(0.0),
        f.filtered.stripe_contrast().unwrap_or(0.0),
        f.children.stripe_contrast().unwrap_or(0.0),
    );
    c.bench_function("fig12_xid13_spatial_filtering", |b| {
        b.iter(|| {
            spatial_with_filtering(black_box(events), GpuErrorKind::GraphicsEngineException)
        })
    });
}

criterion_group!(benches, bench_fig03, bench_fig05_07, bench_fig12);
criterion_main!(benches);
