//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the 5-second dedup window (what happens to the Fig. 12 incident
//!   count as the window sweeps 1 s → 60 s);
//! * the 300-second co-occurrence window of Fig. 13;
//! * cascades on/off (how much of the console volume is children);
//! * the statistical kernels underlying §4 at fleet scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use titan_analysis::filtering::dedup_job_level;
use titan_analysis::spatial::spatial_with_filtering_window;
use titan_bench::fixture;
use titan_gpu::GpuErrorKind;
use titan_stats::{pearson, spearman};

fn bench_dedup_window_sweep(c: &mut Criterion) {
    let study = fixture();
    let events = &study.data.console;
    println!("[ablation] 5 s-window sweep for XID 13 incident counting:");
    for window in [1u64, 2, 5, 10, 30, 60] {
        let out = dedup_job_level(events, GpuErrorKind::GraphicsEngineException, window);
        let x13 = out
            .parents
            .iter()
            .filter(|e| e.kind == GpuErrorKind::GraphicsEngineException)
            .count();
        println!("  window {window:>2}s -> {x13} incidents ({} children)", out.children.len());
    }
    let mut g = c.benchmark_group("dedup_window");
    for window in [1u64, 5, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                spatial_with_filtering_window(
                    black_box(events),
                    GpuErrorKind::GraphicsEngineException,
                    w,
                )
            })
        });
    }
    g.finish();
}

fn bench_cascade_share(c: &mut Criterion) {
    // Compare console volume with and without cascades (fresh small sims).
    use titan_reliability::{Study, StudyConfig};
    let mut with_cfg = StudyConfig::quick(30, 0xCA5);
    with_cfg.skip_text_roundtrip = true;
    let mut without_cfg = with_cfg.clone();
    without_cfg.sim.enable_cascades = false;
    let with = Study::new(with_cfg.clone()).run().data.console.len();
    let without = Study::new(without_cfg).run().data.console.len();
    println!(
        "[ablation] cascades contribute {} of {} console events ({:.1}%)",
        with - without,
        with,
        100.0 * (with - without) as f64 / with as f64
    );
    let mut g = c.benchmark_group("cascade");
    g.sample_size(10);
    g.bench_function("sim30_with_cascades", |b| {
        b.iter(|| Study::new(black_box(with_cfg.clone())).run().data.console.len())
    });
    g.finish();
}

fn bench_interleave_ablation(c: &mut Criterion) {
    use titan_gpu::interleave::{derived_dbe_split, regfile_fix_ablation, ClusterDistribution};
    let clusters = ClusterDistribution::default();
    println!("[ablation] derived DBE split (area x interleaving):");
    for (s, share) in derived_dbe_split(&clusters) {
        println!("  {:<16} {:.1}%", s.label(), share * 100.0);
    }
    let (baseline, fixed) = regfile_fix_ablation(&clusters);
    println!(
        "[ablation] register-file share with degree-4 interleaving: {:.1}% -> {:.1}%",
        baseline * 100.0,
        fixed * 100.0
    );
    c.bench_function("interleave_derived_split", |b| {
        b.iter(|| derived_dbe_split(black_box(&clusters)))
    });
}

fn bench_stats_kernels(c: &mut Criterion) {
    let study = fixture();
    // Fleet-scale series: per-job core-hours and SBE counts.
    let x: Vec<f64> = study.data.jobs.iter().map(|j| j.gpu_core_hours).collect();
    let y: Vec<f64> = study
        .data
        .job_sbe
        .iter()
        .map(|d| d.total_sbe() as f64)
        .collect();
    let n = x.len().min(y.len());
    let mut g = c.benchmark_group("stats");
    g.bench_function(format!("spearman_{n}_jobs"), |b| {
        b.iter(|| spearman(black_box(&x[..n]), black_box(&y[..n])))
    });
    g.bench_function(format!("pearson_{n}_jobs"), |b| {
        b.iter(|| pearson(black_box(&x[..n]), black_box(&y[..n])))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dedup_window_sweep,
    bench_cascade_share,
    bench_interleave_ablation,
    bench_stats_kernels
);
criterion_main!(benches);
