//! # titan-bench
//!
//! Criterion benchmark harness: one bench target per paper table/figure
//! (regenerating the figure data and measuring the analysis cost) plus
//! pipeline-throughput and ablation benches.
//!
//! All figure benches share one simulated fixture so the comparison is
//! apples-to-apples: a 120-day study at a fixed seed, built once per
//! bench binary. `cargo bench -p titan-bench` regenerates every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

use titan_reliability::study::CompletedStudy;
use titan_reliability::{Study, StudyConfig};

/// Days in the shared bench fixture. Long enough for every figure to be
/// populated (page retirement needs the Jan'14 driver, i.e. >214 days).
pub const FIXTURE_DAYS: u64 = 300;

/// Fixed fixture seed.
pub const FIXTURE_SEED: u64 = 0xBE4C;

/// The shared study fixture, built on first use.
pub fn fixture() -> &'static CompletedStudy {
    static FIXTURE: OnceLock<CompletedStudy> = OnceLock::new();
    FIXTURE.get_or_init(|| Study::new(StudyConfig::quick(FIXTURE_DAYS, FIXTURE_SEED)).run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_is_populated() {
        let f = fixture();
        assert!(!f.data.console.is_empty());
        assert!(!f.data.jobs.is_empty());
        assert_eq!(f.data.snapshots.len(), 18_688);
    }
}
