//! `bench_pr2` — machine-readable performance snapshot for the PR 2
//! trajectory: single-run wall time + events/sec, and replication
//! scaling (threaded vs sequential multi-seed fan-out).
//!
//! ```text
//! cargo run --release -p titan-bench --bin bench_pr2 -- [--quick] [--out BENCH_PR2.json]
//! ```
//!
//! `--quick` shrinks the windows so CI can afford the run; the JSON
//! schema is identical, with `"mode"` marking which one produced it.
//! The speedup number is only meaningful on multi-core hosts —
//! `host_threads` is recorded so a reader can tell.

use std::process::ExitCode;
use std::time::Instant;

use titan_reliability::StudyConfig;
use titan_runner::{replicate, run_seed, ReplicateOptions};
use titan_sim::{SimConfig, Simulator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_PR2.json");
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` (expected --quick, --out FILE)");
                return ExitCode::from(2);
            }
        }
    }
    match emit(quick, &out_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_pr2: {e}");
            ExitCode::FAILURE
        }
    }
}

fn emit(quick: bool, out_path: &str) -> Result<(), String> {
    let seed = 0xBE4C;
    // Single-run measurement: the full study window unless --quick.
    let single_cfg = if quick {
        SimConfig::quick(30, seed)
    } else {
        SimConfig::default()
    };
    let single_days = single_cfg.window / 86_400;
    let sim = Simulator::new(single_cfg)?;
    let t0 = Instant::now();
    let output = sim.run();
    let single_wall = t0.elapsed().as_secs_f64();

    // "Events" = everything the loop dequeued that left a trace: job
    // starts+ends, every console line, and every SBE draw (accepted or
    // thinned). An honest floor on heap traffic, stable across PRs.
    let sbe_total: u64 = output.truth.sbe_by_card.iter().sum();
    let events = output.console.len() as u64
        + 2 * output.jobs.len() as u64
        + sbe_total
        + output.truth.sbe_rejected;
    let events_per_sec = events as f64 / single_wall.max(1e-9);

    // Replication scaling: the same seed set sequentially and threaded.
    // Short windows even in full mode — scaling is a ratio, it does not
    // need the 21-month window the wall-time number above uses.
    let rep_days = if quick { 10 } else { 60 };
    let rep_seeds = 4u64;
    let base = StudyConfig::quick(rep_days, seed);
    let mut seq_opts = ReplicateOptions::consecutive(base.clone(), seed, rep_seeds, 1);
    seq_opts.skip_expectations = true;
    let t1 = Instant::now();
    let seq = replicate(&seq_opts)?;
    let seq_wall = t1.elapsed().as_secs_f64();

    let par_threads = titan_runner::recommended_threads().min(rep_seeds as usize).max(1);
    let mut par_opts = ReplicateOptions::consecutive(base.clone(), seed, rep_seeds, par_threads);
    par_opts.skip_expectations = true;
    let t2 = Instant::now();
    let par = replicate(&par_opts)?;
    let par_wall = t2.elapsed().as_secs_f64();

    // Byte-identity across widths, and against a direct run.
    let digests_match = seq.runs == par.runs
        && seq
            .runs
            .iter()
            .all(|r| run_seed(&base, r.seed, true).output_digest == r.output_digest);
    if !digests_match {
        return Err("replication digests diverged between thread widths".into());
    }

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"pr\": 2,\n  \"mode\": \"{mode}\",\n  \"host_threads\": {host_threads},\n  \
         \"single_run\": {{\n    \"window_days\": {single_days},\n    \"seed\": {seed},\n    \
         \"wall_seconds\": {single_wall:.3},\n    \"events\": {events},\n    \
         \"events_per_sec\": {events_per_sec:.0},\n    \
         \"console_events\": {console},\n    \"jobs\": {jobs},\n    \
         \"sbe_total\": {sbe_total}\n  }},\n  \
         \"replication\": {{\n    \"window_days\": {rep_days},\n    \"seeds\": {rep_seeds},\n    \
         \"sequential_wall_seconds\": {seq_wall:.3},\n    \
         \"parallel_threads\": {par_threads},\n    \
         \"parallel_wall_seconds\": {par_wall:.3},\n    \
         \"speedup\": {speedup:.2},\n    \"digests_match\": true\n  }}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        console = output.console.len(),
        jobs = output.jobs.len(),
        speedup = seq_wall / par_wall.max(1e-9),
    );
    std::fs::write(out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("{json}");
    println!("wrote {out_path}");
    Ok(())
}
