//! `bench_pr2` — machine-readable performance snapshot for the PR 2
//! trajectory: single-run wall time + events/sec, replication scaling
//! (threaded vs sequential multi-seed fan-out), and the telemetry
//! overhead of running with metrics collection enabled.
//!
//! ```text
//! cargo run --release -p titan-bench --bin bench_pr2 -- \
//!     [--quick] [--out BENCH_PR2.json] [--gate-metrics-overhead PCT]
//! ```
//!
//! `--quick` shrinks the windows so CI can afford the run; the JSON
//! schema is identical, with `"mode"` marking which one produced it.
//! The speedup number is only meaningful on multi-core hosts, so the
//! report records both `host_cores_detected` (what the machine has)
//! and `pool_threads` (what the pool actually uses — the
//! `TITAN_NUM_THREADS` override wins when set); earlier revisions
//! conflated the two as "host_threads".
//!
//! `--gate-metrics-overhead PCT` exits nonzero when the metrics-on
//! wall time exceeds metrics-off by more than PCT percent (min-of-3
//! each) — CI uses this to keep the observability layer near-free.

use std::process::ExitCode;
use std::time::Instant;

use titan_reliability::StudyConfig;
use titan_runner::{replicate, run_seed, run_seed_obs, ReplicateOptions};
use titan_sim::{SimConfig, Simulator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_PR2.json");
    let mut gate_pct: Option<f64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--gate-metrics-overhead" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(p)) if p >= 0.0 => gate_pct = Some(p),
                _ => {
                    eprintln!("--gate-metrics-overhead needs a non-negative percent");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --quick, --out FILE, \
                     --gate-metrics-overhead PCT)"
                );
                return ExitCode::from(2);
            }
        }
    }
    match emit(quick, &out_path, gate_pct) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_pr2: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimum wall time over `n` runs of `f` — min, not mean, because
/// scheduling noise only ever adds time.
fn min_wall<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("n >= 1"))
}

fn emit(quick: bool, out_path: &str, gate_pct: Option<f64>) -> Result<(), String> {
    let seed = 0xBE4C;
    // Single-run measurement: the full study window unless --quick.
    let single_cfg = if quick {
        SimConfig::quick(30, seed)
    } else {
        SimConfig::default()
    };
    let single_days = single_cfg.window / 86_400;
    let sim = Simulator::new(single_cfg)?;
    let t0 = Instant::now();
    let output = sim.run();
    let single_wall = t0.elapsed().as_secs_f64();

    // "Events" = everything the loop dequeued that left a trace: job
    // starts+ends, every console line, and every SBE draw (accepted or
    // thinned). An honest floor on heap traffic, stable across PRs.
    let sbe_total: u64 = output.truth.sbe_by_card.iter().sum();
    let events = output.console.len() as u64
        + 2 * output.jobs.len() as u64
        + sbe_total
        + output.truth.sbe_rejected;
    let events_per_sec = events as f64 / single_wall.max(1e-9);

    // Replication scaling: the same seed set sequentially and threaded.
    // Short windows even in full mode — scaling is a ratio, it does not
    // need the 21-month window the wall-time number above uses.
    let rep_days = if quick { 10 } else { 60 };
    let rep_seeds = 4u64;
    let base = StudyConfig::quick(rep_days, seed);
    let mut seq_opts = ReplicateOptions::consecutive(base.clone(), seed, rep_seeds, 1);
    seq_opts.skip_expectations = true;
    let t1 = Instant::now();
    let seq = replicate(&seq_opts)?;
    let seq_wall = t1.elapsed().as_secs_f64();

    let par_threads = titan_runner::recommended_threads().min(rep_seeds as usize).max(1);
    let mut par_opts = ReplicateOptions::consecutive(base.clone(), seed, rep_seeds, par_threads);
    par_opts.skip_expectations = true;
    let t2 = Instant::now();
    let par = replicate(&par_opts)?;
    let par_wall = t2.elapsed().as_secs_f64();

    // Byte-identity across widths, and against a direct run.
    let digests_match = seq.runs == par.runs
        && seq
            .runs
            .iter()
            .all(|r| run_seed(&base, r.seed, true).output_digest == r.output_digest);
    if !digests_match {
        return Err("replication digests diverged between thread widths".into());
    }

    // Telemetry overhead: the same seed with the obs sink disabled vs
    // enabled (full pipeline incl. SEC replay + document build),
    // min-of-3 each so scheduler noise cannot fake a regression.
    let ov_days = if quick { 15 } else { 60 };
    let ov_cfg = StudyConfig::quick(ov_days, seed);
    let runs_each = 3;
    let (off_wall, off_run) = min_wall(runs_each, || run_seed(&ov_cfg, seed, true));
    let (on_wall, on_run) = min_wall(runs_each, || run_seed_obs(&ov_cfg, seed, true, true));
    if off_run.output_digest != on_run.output_digest {
        return Err("metrics collection perturbed the simulation output".into());
    }
    let overhead_pct = (on_wall - off_wall) / off_wall.max(1e-9) * 100.0;

    let host_cores_detected = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool_threads = rayon::current_num_threads();
    let json = format!(
        "{{\n  \"pr\": 2,\n  \"mode\": \"{mode}\",\n  \
         \"host_cores_detected\": {host_cores_detected},\n  \
         \"pool_threads\": {pool_threads},\n  \
         \"single_run\": {{\n    \"window_days\": {single_days},\n    \"seed\": {seed},\n    \
         \"wall_seconds\": {single_wall:.3},\n    \"events\": {events},\n    \
         \"events_per_sec\": {events_per_sec:.0},\n    \
         \"console_events\": {console},\n    \"jobs\": {jobs},\n    \
         \"sbe_total\": {sbe_total}\n  }},\n  \
         \"replication\": {{\n    \"window_days\": {rep_days},\n    \"seeds\": {rep_seeds},\n    \
         \"sequential_wall_seconds\": {seq_wall:.3},\n    \
         \"parallel_threads\": {par_threads},\n    \
         \"parallel_wall_seconds\": {par_wall:.3},\n    \
         \"speedup\": {speedup:.2},\n    \"digests_match\": true\n  }},\n  \
         \"metrics_overhead\": {{\n    \"window_days\": {ov_days},\n    \
         \"runs_each\": {runs_each},\n    \
         \"metrics_off_wall_seconds\": {off_wall:.3},\n    \
         \"metrics_on_wall_seconds\": {on_wall:.3},\n    \
         \"overhead_pct\": {overhead_pct:.2},\n    \"digests_match\": true\n  }}\n}}\n",
        mode = if quick { "quick" } else { "full" },
        console = output.console.len(),
        jobs = output.jobs.len(),
        speedup = seq_wall / par_wall.max(1e-9),
    );
    std::fs::write(out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("{json}");
    println!("wrote {out_path}");
    if let Some(gate) = gate_pct {
        if overhead_pct > gate {
            return Err(format!(
                "metrics overhead {overhead_pct:.2}% exceeds the {gate:.2}% gate \
                 (off {off_wall:.3}s, on {on_wall:.3}s)"
            ));
        }
        println!("metrics overhead {overhead_pct:.2}% within the {gate:.2}% gate");
    }
    Ok(())
}
