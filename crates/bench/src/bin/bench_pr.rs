//! `bench_pr` — machine-readable performance snapshot for the PR
//! trajectory: single-run wall time + events/sec, replication scaling
//! (threaded vs sequential multi-seed fan-out), and the overhead of
//! the metrics and health observability layers. Generalizes the old
//! `bench_pr2` binary: `--pr N` stamps the snapshot and picks the
//! default output name, so each PR commits its own `BENCH_PR<N>.json`
//! and the throughput gate can diff against the previous one.
//!
//! ```text
//! cargo run --release -p titan-bench --bin bench_pr -- \
//!     [--quick] [--pr N] [--out FILE] \
//!     [--gate-metrics-overhead PCT] [--gate-health-overhead PCT] \
//!     [--gate-prof-overhead PCT] [--gate-throughput-regression PCT]
//! cargo run --release -p titan-bench --bin bench_pr -- --trajectory [--out FILE]
//! ```
//!
//! `--quick` shrinks the windows so CI can afford the run; the JSON
//! schema is identical, with `"mode"` marking which one produced it.
//! The speedup number is only meaningful on multi-core hosts, so the
//! report records both `host_cores_detected` (what the machine has)
//! and `pool_threads` (what the pool actually uses — the
//! `TITAN_NUM_THREADS` override wins when set). Snapshots also embed a
//! `prof` section — the deterministic `titan-prof/2` per-scope ledger
//! of the overhead window — which `titan-repro bench diff` uses to
//! attribute an events/sec delta between two snapshots to event kinds.
//!
//! Gates (each exits nonzero on breach; CI wires all four):
//! - `--gate-metrics-overhead PCT`: metrics-on wall time vs metrics-off
//!   (min-of-3 each) must stay within PCT percent.
//! - `--gate-health-overhead PCT`: same contract for the health sink —
//!   the online analytics must stay near-free.
//! - `--gate-prof-overhead PCT`: same contract for the cost ledger —
//!   the per-event accounting must stay near-free (the ISSUE bar is 1%).
//! - `--gate-throughput-regression PCT`: `events_per_sec` must not drop
//!   more than PCT percent below the highest-numbered committed
//!   `BENCH_PR*.json` baseline. The baseline is read *before* the new
//!   snapshot is written, so regenerating in place still compares
//!   against the committed bytes. Baselines from a different `mode`
//!   (full vs quick) are incomparable and skip the gate with a note.
//!
//! `--trajectory` runs no simulation at all: it merges every committed
//! `BENCH_PR*.json` into `BENCH_TRAJECTORY.json`
//! (`titan-bench-trajectory/1`, one point per PR, ascending) and fails
//! if the newest point regressed events/sec more than 10% against the
//! previous same-mode point.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use titan_reliability::StudyConfig;
use titan_runner::{
    replicate, run_seed, run_seed_full, run_seed_obs, run_seed_prof, KindCost, ReplicateOptions,
};
use titan_sim::{SimConfig, Simulator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut pr: u64 = 10;
    let mut out_path: Option<String> = None;
    let mut trajectory_mode = false;
    let mut gate_metrics: Option<f64> = None;
    let mut gate_health: Option<f64> = None;
    let mut gate_prof: Option<f64> = None;
    let mut gate_throughput: Option<f64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--trajectory" => trajectory_mode = true,
            "--pr" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => pr = n,
                _ => {
                    eprintln!("--pr needs a number");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--gate-metrics-overhead" => match parse_pct(it.next()) {
                Some(p) => gate_metrics = Some(p),
                None => {
                    eprintln!("--gate-metrics-overhead needs a non-negative percent");
                    return ExitCode::from(2);
                }
            },
            "--gate-health-overhead" => match parse_pct(it.next()) {
                Some(p) => gate_health = Some(p),
                None => {
                    eprintln!("--gate-health-overhead needs a non-negative percent");
                    return ExitCode::from(2);
                }
            },
            "--gate-prof-overhead" => match parse_pct(it.next()) {
                Some(p) => gate_prof = Some(p),
                None => {
                    eprintln!("--gate-prof-overhead needs a non-negative percent");
                    return ExitCode::from(2);
                }
            },
            "--gate-throughput-regression" => match parse_pct(it.next()) {
                Some(p) => gate_throughput = Some(p),
                None => {
                    eprintln!("--gate-throughput-regression needs a non-negative percent");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --quick, --pr N, --out FILE, \
                     --trajectory, --gate-metrics-overhead PCT, \
                     --gate-health-overhead PCT, --gate-prof-overhead PCT, \
                     --gate-throughput-regression PCT)"
                );
                return ExitCode::from(2);
            }
        }
    }
    if trajectory_mode {
        let out = out_path.unwrap_or_else(|| "BENCH_TRAJECTORY.json".to_string());
        return match trajectory(&out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("bench_pr --trajectory: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let out_path = out_path.unwrap_or_else(|| format!("BENCH_PR{pr}.json"));
    let gates = Gates {
        metrics: gate_metrics,
        health: gate_health,
        prof: gate_prof,
        throughput: gate_throughput,
    };
    match emit(quick, pr, &out_path, &gates) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_pr: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_pct(arg: Option<&String>) -> Option<f64> {
    match arg.map(|v| v.parse::<f64>()) {
        Some(Ok(p)) if p >= 0.0 => Some(p),
        _ => None,
    }
}

struct Gates {
    metrics: Option<f64>,
    health: Option<f64>,
    prof: Option<f64>,
    throughput: Option<f64>,
}

/// One interleaved overhead measurement: minimum walls for the plain,
/// metrics-on, health-on, and prof-ledger-on variants, plus the noise
/// floor the host exhibited (relative gap between two independent
/// minima of the same plain workload).
struct OverheadMeasure {
    off: f64,
    on: f64,
    health: f64,
    prof: f64,
    noise_pct: f64,
    metrics_pct: f64,
    health_pct: f64,
    prof_pct: f64,
}

/// Minimum wall time over `n` runs of `f` — min, not mean, because
/// scheduling noise only ever adds time.
fn min_wall<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("n >= 1"))
}

/// The committed throughput baseline: the highest-numbered
/// `BENCH_PR<N>.json` in the working directory, read before the new
/// snapshot overwrites it. Returns `(path, mode, events_per_sec)`.
fn read_baseline() -> Option<(String, String, f64)> {
    let mut best: Option<(u64, String)> = None;
    let entries = std::fs::read_dir(".").ok()?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if !best.as_ref().is_some_and(|(b, _)| num <= *b) {
            best = Some((num, name));
        }
    }
    let (_, path) = best?;
    let text = std::fs::read_to_string(&path).ok()?;
    let mode = json_str_field(&text, "mode")?;
    let eps = json_num_field(&text, "events_per_sec")?;
    Some((path, mode, eps))
}

/// Pulls `"key": "value"` out of the snapshot JSON. The snapshots are
/// emitted by this binary with a fixed shape, so a substring scan is
/// enough — no JSON parser dependency.
fn json_str_field(text: &str, key: &str) -> Option<String> {
    let tail = text.split_once(&format!("\"{key}\": \""))?.1;
    Some(tail.split_once('"')?.0.to_string())
}

/// Pulls `"key": number` out of the snapshot JSON.
fn json_num_field(text: &str, key: &str) -> Option<f64> {
    let tail = text.split_once(&format!("\"{key}\": "))?.1;
    let end = tail.find([',', '\n', '}'])?;
    tail[..end].trim().parse().ok()
}

fn emit(quick: bool, pr: u64, out_path: &str, gates: &Gates) -> Result<(), String> {
    // Read the committed baseline before anything touches the file.
    let baseline = read_baseline();

    let seed = 0xBE4C;
    // Single-run measurement: the full study window unless --quick.
    let single_cfg = if quick {
        SimConfig::quick(30, seed)
    } else {
        SimConfig::default()
    };
    let single_days = single_cfg.window / 86_400;
    // Quick mode is cheap enough to take the min of three runs, which
    // is what the throughput regression gate compares — a single
    // sample would hand the gate straight to scheduler noise. Full
    // mode's 21-month window stays single-shot.
    let single_runs = if quick { 3 } else { 1 };
    let (single_wall, output) = min_wall(single_runs, || {
        let sim = Simulator::new(single_cfg.clone()).expect("bench sim config");
        sim.run()
    });

    // "Events" = everything the loop dequeued that left a trace: job
    // starts+ends, every console line, and every SBE draw (accepted or
    // thinned). An honest floor on heap traffic, stable across PRs.
    let sbe_total: u64 = output.truth.sbe_by_card.iter().sum();
    let events = output.console.len() as u64
        + 2 * output.jobs.len() as u64
        + sbe_total
        + output.truth.sbe_rejected;
    let events_per_sec = events as f64 / single_wall.max(1e-9);

    // Replication scaling: the same seed set sequentially and threaded.
    // Short windows even in full mode — scaling is a ratio, it does not
    // need the 21-month window the wall-time number above uses.
    let rep_days = if quick { 10 } else { 60 };
    let rep_seeds = 4u64;
    let base = StudyConfig::quick(rep_days, seed);
    let mut seq_opts = ReplicateOptions::consecutive(base.clone(), seed, rep_seeds, 1)?;
    seq_opts.skip_expectations = true;
    let t1 = Instant::now();
    let seq = replicate(&seq_opts)?;
    let seq_wall = t1.elapsed().as_secs_f64();

    let par_threads = titan_runner::recommended_threads().min(rep_seeds as usize).max(1);
    let mut par_opts = ReplicateOptions::consecutive(base.clone(), seed, rep_seeds, par_threads)?;
    par_opts.skip_expectations = true;
    let t2 = Instant::now();
    let par = replicate(&par_opts)?;
    let par_wall = t2.elapsed().as_secs_f64();

    // Byte-identity across widths, and against a direct run.
    let digests_match = seq.runs == par.runs
        && seq
            .runs
            .iter()
            .all(|r| run_seed(&base, r.seed, true).output_digest == r.output_digest);
    if !digests_match {
        return Err("replication digests diverged between thread widths".into());
    }

    // Observer overhead: see [`measure_overheads`]. The first
    // measurement lands in the committed snapshot; the gates below may
    // re-measure on a breach.
    let ov_days = if quick { 30 } else { 60 };
    let ov_cfg = StudyConfig::quick(ov_days, seed);
    let runs_each = 5;
    let (ov, prof_ledger) = measure_overheads(&ov_cfg, seed, runs_each)?;
    // The embedded ledger is deterministic (same seed/window every PR),
    // so `titan-repro bench diff` can attribute an events/sec delta
    // between two snapshots to the event kinds whose counts moved.
    let prof_kinds_json = serde_json::to_string(&prof_ledger)
        .map_err(|e| format!("serialize prof ledger: {e}"))?;

    let host_cores_detected = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool_threads = rayon::current_num_threads();
    let mode = if quick { "quick" } else { "full" };
    let json = format!(
        "{{\n  \"pr\": {pr},\n  \"mode\": \"{mode}\",\n  \
         \"host_cores_detected\": {host_cores_detected},\n  \
         \"pool_threads\": {pool_threads},\n  \
         \"single_run\": {{\n    \"window_days\": {single_days},\n    \"seed\": {seed},\n    \
         \"wall_seconds\": {single_wall:.3},\n    \"events\": {events},\n    \
         \"events_per_sec\": {events_per_sec:.0},\n    \
         \"console_events\": {console},\n    \"jobs\": {jobs},\n    \
         \"sbe_total\": {sbe_total}\n  }},\n  \
         \"replication\": {{\n    \"window_days\": {rep_days},\n    \"seeds\": {rep_seeds},\n    \
         \"sequential_wall_seconds\": {seq_wall:.3},\n    \
         \"parallel_threads\": {par_threads},\n    \
         \"parallel_wall_seconds\": {par_wall:.3},\n    \
         \"speedup\": {speedup:.2},\n    \"digests_match\": true\n  }},\n  \
         \"metrics_overhead\": {{\n    \"window_days\": {ov_days},\n    \
         \"runs_each\": {runs_each},\n    \
         \"off_wall_seconds\": {off_floor:.3},\n    \
         \"on_wall_seconds\": {on_wall:.3},\n    \
         \"overhead_pct\": {metrics_overhead_pct:.2},\n    \
         \"noise_floor_pct\": {noise_pct:.2},\n    \"digests_match\": true\n  }},\n  \
         \"health_overhead\": {{\n    \"window_days\": {ov_days},\n    \
         \"runs_each\": {runs_each},\n    \
         \"off_wall_seconds\": {off_floor:.3},\n    \
         \"on_wall_seconds\": {health_wall:.3},\n    \
         \"overhead_pct\": {health_overhead_pct:.2},\n    \
         \"noise_floor_pct\": {noise_pct:.2},\n    \"digests_match\": true\n  }},\n  \
         \"prof_overhead\": {{\n    \"window_days\": {ov_days},\n    \
         \"runs_each\": {runs_each},\n    \
         \"off_wall_seconds\": {off_floor:.3},\n    \
         \"on_wall_seconds\": {prof_wall:.3},\n    \
         \"overhead_pct\": {prof_overhead_pct:.2},\n    \
         \"noise_floor_pct\": {noise_pct:.2},\n    \"digests_match\": true\n  }},\n  \
         \"prof\": {{\n    \"window_days\": {ov_days},\n    \"seed\": {seed},\n    \
         \"kinds\": {prof_kinds_json}\n  }}\n}}\n",
        console = output.console.len(),
        jobs = output.jobs.len(),
        speedup = seq_wall / par_wall.max(1e-9),
        off_floor = ov.off,
        on_wall = ov.on,
        health_wall = ov.health,
        prof_wall = ov.prof,
        metrics_overhead_pct = ov.metrics_pct,
        health_overhead_pct = ov.health_pct,
        prof_overhead_pct = ov.prof_pct,
        noise_pct = ov.noise_pct,
    );
    std::fs::write(out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("{json}");
    println!("wrote {out_path}");

    // Gate evaluation with breach-retry: a wall-clock breach only
    // counts after it reproduces on GATE_ATTEMPTS independent
    // measurements — transient host noise almost never repeats, a real
    // regression always does. Each retry re-measures from scratch
    // (fresh noise floor included), and each individual check also
    // widens its gate to the noise floor the host actually exhibited.
    const GATE_ATTEMPTS: usize = 3;
    if gates.metrics.is_some() || gates.health.is_some() || gates.prof.is_some() {
        let mut cur = ov;
        for attempt in 1..=GATE_ATTEMPTS {
            let breach = overhead_breach(&cur, gates);
            match breach {
                None => {
                    println!(
                        "metrics overhead {:.2}%, health overhead {:.2}%, \
                         prof overhead {:.2}% (noise floor {:.2}%) — gates clear",
                        cur.metrics_pct, cur.health_pct, cur.prof_pct, cur.noise_pct
                    );
                    break;
                }
                Some(msg) if attempt == GATE_ATTEMPTS => {
                    return Err(format!(
                        "{msg} — reproduced on {GATE_ATTEMPTS} independent measurements"
                    ));
                }
                Some(msg) => {
                    println!("{msg} — re-measuring ({attempt}/{GATE_ATTEMPTS})");
                    cur = measure_overheads(&ov_cfg, seed, runs_each)?.0;
                }
            }
        }
    }
    if let Some(gate) = gates.throughput {
        match baseline {
            Some((path, base_mode, base_eps)) if base_mode == mode && base_eps > 0.0 => {
                let mut eps = events_per_sec;
                for attempt in 1..=GATE_ATTEMPTS {
                    let drop_pct = (base_eps - eps) / base_eps * 100.0;
                    if drop_pct <= gate {
                        println!(
                            "throughput {eps:.0} events/sec vs {path} baseline \
                             {base_eps:.0} ({drop_pct:+.1}% drop, gate {gate:.1}%)"
                        );
                        break;
                    }
                    if attempt == GATE_ATTEMPTS {
                        return Err(format!(
                            "throughput regressed {drop_pct:.1}% vs {path} \
                             ({base_eps:.0} -> {eps:.0} events/sec), gate is {gate:.1}% — \
                             reproduced on {GATE_ATTEMPTS} independent measurements"
                        ));
                    }
                    println!(
                        "throughput {eps:.0} events/sec is {drop_pct:.1}% below the {path} \
                         baseline {base_eps:.0} — re-measuring ({attempt}/{GATE_ATTEMPTS})"
                    );
                    let (wall, rerun) = min_wall(single_runs, || {
                        let sim = Simulator::new(single_cfg.clone()).expect("bench sim config");
                        sim.run()
                    });
                    let re_sbe: u64 = rerun.truth.sbe_by_card.iter().sum();
                    let re_events = rerun.console.len() as u64
                        + 2 * rerun.jobs.len() as u64
                        + re_sbe
                        + rerun.truth.sbe_rejected;
                    eps = re_events as f64 / wall.max(1e-9);
                }
            }
            Some((path, base_mode, _)) => {
                println!(
                    "throughput gate skipped: baseline {path} is `{base_mode}` mode, \
                     this run is `{mode}` — incomparable windows"
                );
            }
            None => {
                println!("throughput gate skipped: no committed BENCH_PR*.json baseline");
            }
        }
    }
    Ok(())
}

/// Interleaved overhead measurement: each round times plain, metrics-on,
/// health-on, and plain *again* — interleaving cancels slow host drift
/// (thermal, cache warmup, a neighbor starting work) that back-to-back
/// min-of-N would attribute to whichever variant ran later, and the gap
/// between the two independent plain minima is the noise floor the host
/// actually exhibited during this measurement. Also checks that neither
/// sink perturbed the output digest (the pure-observer invariant).
fn measure_overheads(
    ov_cfg: &StudyConfig,
    seed: u64,
    runs_each: usize,
) -> Result<(OverheadMeasure, BTreeMap<String, KindCost>), String> {
    let mut off_a = f64::INFINITY;
    let mut off_b = f64::INFINITY;
    let mut on_wall = f64::INFINITY;
    let mut health_wall = f64::INFINITY;
    let mut prof_wall = f64::INFINITY;
    let mut digests: Option<(u64, u64, u64, u64)> = None;
    let mut ledger = BTreeMap::new();
    for _ in 0..runs_each {
        let (w0, off_run) = min_wall(1, || run_seed(ov_cfg, seed, true));
        let (w1, on_run) = min_wall(1, || run_seed_obs(ov_cfg, seed, true, true));
        let (w2, health_run) =
            min_wall(1, || run_seed_full(ov_cfg, seed, true, false, false, true));
        // The prof arm runs with *only* the ledger armed (no metrics
        // sink, no probe, no wall hook), so its wall isolates the
        // in-loop accounting cost against the plain floor.
        let (w2b, prof_run) = min_wall(1, || run_seed_prof(ov_cfg, seed, true));
        let (w3, _) = min_wall(1, || run_seed(ov_cfg, seed, true));
        off_a = off_a.min(w0);
        on_wall = on_wall.min(w1);
        health_wall = health_wall.min(w2);
        prof_wall = prof_wall.min(w2b);
        off_b = off_b.min(w3);
        digests = Some((
            off_run.output_digest,
            on_run.output_digest,
            health_run.0.output_digest,
            prof_run.0.output_digest,
        ));
        ledger = prof_run.1;
    }
    let (off_digest, on_digest, health_digest, prof_digest) =
        digests.expect("runs_each >= 1");
    if off_digest != on_digest {
        return Err("metrics collection perturbed the simulation output".into());
    }
    if off_digest != health_digest {
        return Err("health collection perturbed the simulation output".into());
    }
    if off_digest != prof_digest {
        return Err("the cost ledger perturbed the simulation output".into());
    }
    let off = off_a.min(off_b);
    let measure = OverheadMeasure {
        off,
        on: on_wall,
        health: health_wall,
        prof: prof_wall,
        noise_pct: (off_a - off_b).abs() / off.max(1e-9) * 100.0,
        metrics_pct: (on_wall - off) / off.max(1e-9) * 100.0,
        health_pct: (health_wall - off) / off.max(1e-9) * 100.0,
        prof_pct: (prof_wall - off) / off.max(1e-9) * 100.0,
    };
    Ok((measure, ledger))
}

/// First overhead gate breached by this measurement, as a message, or
/// `None` when all requested gates clear. Each gate widens to the
/// measurement's own noise floor — the host cannot certify a
/// percentage finer than its own jitter.
fn overhead_breach(m: &OverheadMeasure, gates: &Gates) -> Option<String> {
    if let Some(gate) = gates.metrics {
        if m.metrics_pct > gate.max(m.noise_pct) {
            return Some(format!(
                "metrics overhead {:.2}% exceeds the {gate:.2}% gate \
                 (noise floor {:.2}%, off {:.3}s, on {:.3}s)",
                m.metrics_pct, m.noise_pct, m.off, m.on
            ));
        }
    }
    if let Some(gate) = gates.health {
        if m.health_pct > gate.max(m.noise_pct) {
            return Some(format!(
                "health overhead {:.2}% exceeds the {gate:.2}% gate \
                 (noise floor {:.2}%, off {:.3}s, on {:.3}s)",
                m.health_pct, m.noise_pct, m.off, m.health
            ));
        }
    }
    if let Some(gate) = gates.prof {
        if m.prof_pct > gate.max(m.noise_pct) {
            return Some(format!(
                "prof-ledger overhead {:.2}% exceeds the {gate:.2}% gate \
                 (noise floor {:.2}%, off {:.3}s, on {:.3}s)",
                m.prof_pct, m.noise_pct, m.off, m.prof
            ));
        }
    }
    None
}

/// One point of the `titan-bench-trajectory/1` document, extracted from
/// a committed `BENCH_PR<N>.json` snapshot's `single_run` section.
#[derive(serde::Serialize)]
struct TrajectoryPoint {
    pr: u64,
    mode: String,
    window_days: u64,
    events: u64,
    events_per_sec: f64,
    wall_seconds: f64,
}

/// The merged perf-trajectory document: every committed bench snapshot
/// as one point, PR-ascending, so a plot of events/sec over the PR
/// sequence is a single `jq` away.
#[derive(serde::Serialize)]
struct TrajectoryDoc {
    schema: String,
    points: Vec<TrajectoryPoint>,
}

/// `--trajectory`: merge committed `BENCH_PR*.json` snapshots into the
/// trajectory document and gate the newest point against the previous
/// same-mode point (>10% events/sec regression fails). Pure file work —
/// no simulation runs.
fn trajectory(out_path: &str) -> Result<(), String> {
    let mut found: Vec<(u64, String)> = Vec::new();
    let entries = std::fs::read_dir(".").map_err(|e| format!("read .: {e}"))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(num) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            found.push((num, name));
        }
    }
    if found.is_empty() {
        return Err("no BENCH_PR*.json snapshots in the working directory".into());
    }
    found.sort();
    let mut points = Vec::new();
    for (num, name) in &found {
        let text =
            std::fs::read_to_string(name).map_err(|e| format!("read {name}: {e}"))?;
        let Some(mode) = json_str_field(&text, "mode") else {
            println!("skipping {name}: no `mode` field (pre-schema snapshot)");
            continue;
        };
        // First occurrence wins in all of these, which is the
        // `single_run` section — the sections after it repeat
        // `window_days` but never precede it.
        let (Some(window_days), Some(events), Some(eps), Some(wall)) = (
            json_num_field(&text, "window_days"),
            json_num_field(&text, "events"),
            json_num_field(&text, "events_per_sec"),
            json_num_field(&text, "wall_seconds"),
        ) else {
            println!("skipping {name}: incomplete single_run section");
            continue;
        };
        points.push(TrajectoryPoint {
            pr: *num,
            mode,
            // lint: allow(N1, snapshot values are small non-negative integers by construction)
            window_days: window_days as u64,
            // lint: allow(N1, snapshot values are small non-negative integers by construction)
            events: events as u64,
            events_per_sec: eps,
            wall_seconds: wall,
        });
    }
    if points.is_empty() {
        return Err("no parseable BENCH_PR*.json snapshots".into());
    }
    for p in &points {
        println!(
            "pr {:>3} [{:>5}] {:>10.0} events/sec  ({} events over {} days in {:.3}s)",
            p.pr, p.mode, p.events_per_sec, p.events, p.window_days, p.wall_seconds
        );
    }
    let doc = TrajectoryDoc {
        schema: "titan-bench-trajectory/1".to_string(),
        points,
    };
    let mut json = serde_json::to_string_pretty(&doc)
        .map_err(|e| format!("serialize trajectory: {e}"))?;
    json.push('\n');
    std::fs::write(out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");

    // Regression gate: newest point vs the previous point of the same
    // mode (full and quick windows are incomparable).
    // lint: allow(P2, points.is_empty() returned an error above)
    let newest = doc.points.last().expect("points is non-empty");
    // lint: allow(P2, len - 1 is in bounds: points is non-empty)
    let prev = doc.points[..doc.points.len() - 1]
        .iter()
        .rev()
        .find(|p| p.mode == newest.mode);
    match prev {
        Some(prev) if prev.events_per_sec > 0.0 => {
            let drop_pct =
                (prev.events_per_sec - newest.events_per_sec) / prev.events_per_sec * 100.0;
            if drop_pct > 10.0 {
                return Err(format!(
                    "pr {} regressed events/sec {:.1}% vs pr {} \
                     ({:.0} -> {:.0}) — over the 10% trajectory gate",
                    newest.pr, drop_pct, prev.pr, prev.events_per_sec, newest.events_per_sec
                ));
            }
            println!(
                "trajectory gate clear: pr {} vs pr {} ({:+.1}%)",
                newest.pr, prev.pr, -drop_pct
            );
        }
        _ => println!(
            "trajectory gate skipped: no previous `{}`-mode point before pr {}",
            newest.mode, newest.pr
        ),
    }
    Ok(())
}
