//! Point-in-time per-GPU ECC snapshots.

use serde::{Deserialize, Serialize};
use titan_gpu::{CardSerial, GpuCard, MemoryStructure};
use titan_topology::NodeId;

/// SBE/DBE counters for one structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccCounts {
    /// Corrected single-bit errors.
    pub sbe: u64,
    /// Detected double-bit errors.
    pub dbe: u64,
}

/// One GPU's snapshot — what `nvidia-smi -q -d ECC,PAGE_RETIREMENT`
/// would print for the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSnapshot {
    /// Where the card sits right now.
    pub node: NodeId,
    /// Card identity (serials survive slot moves).
    pub serial: CardSerial,
    /// Snapshot time (seconds since study epoch) — the time the *tool*
    /// ran; individual errors carry no timestamps, per the paper.
    pub taken_at: u64,
    /// Aggregate (lifetime) counters per ECC-counted structure, in
    /// [`MemoryStructure::ECC_COUNTED`] order.
    pub aggregate: Vec<EccCounts>,
    /// Volatile (since driver reload) counters, same order.
    pub volatile: Vec<EccCounts>,
    /// Retired pages: (double-bit count, single-bit count).
    pub retired_pages: (u32, u32),
    /// GPU temperature at snapshot time, °F — nvidia-smi reports this and
    /// the paper's cage-gradient claim ("more than 10 °F hotter") was
    /// derived from exactly such a snapshot.
    pub temperature_f: f64,
}

impl GpuSnapshot {
    /// Reads a card. This is the *only* way the analysis side ever sees
    /// SBE information — mirroring the real pipeline. Temperature comes
    /// from the slot's steady-state thermal model.
    pub fn take(node: NodeId, card: &GpuCard, taken_at: u64) -> Self {
        Self::take_with_thermal(node, card, taken_at, &titan_topology::ThermalModel::default())
    }

    /// [`take`](Self::take) with an explicit thermal model.
    pub fn take_with_thermal(
        node: NodeId,
        card: &GpuCard,
        taken_at: u64,
        thermal: &titan_topology::ThermalModel,
    ) -> Self {
        let aggregate = MemoryStructure::ECC_COUNTED
            .iter()
            .map(|&s| EccCounts {
                // NVML reports persisted + pending-flush; a crash between
                // snapshots silently drops the pending part.
                sbe: card.inforom.reported_sbe(s),
                dbe: card.inforom.aggregate_dbe(s),
            })
            .collect();
        let volatile = MemoryStructure::ECC_COUNTED
            .iter()
            .map(|&s| EccCounts {
                sbe: card.inforom.volatile_sbe(s),
                dbe: card.inforom.volatile_dbe(s),
            })
            .collect();
        GpuSnapshot {
            node,
            serial: card.serial,
            taken_at,
            aggregate,
            volatile,
            retired_pages: card.retirement.retired_counts(),
            temperature_f: thermal.gpu_temp_f(node),
        }
    }

    /// Total aggregate SBEs across structures.
    pub fn total_sbe(&self) -> u64 {
        self.aggregate.iter().map(|c| c.sbe).sum()
    }

    /// Total aggregate DBEs across structures.
    pub fn total_dbe(&self) -> u64 {
        self.aggregate.iter().map(|c| c.dbe).sum()
    }

    /// Aggregate counts for one structure, `None` if not ECC-counted.
    pub fn counts_for(&self, s: MemoryStructure) -> Option<EccCounts> {
        MemoryStructure::ECC_COUNTED
            .iter()
            .position(|&m| m == s)
            .map(|i| self.aggregate[i])
    }

    /// The Observation 2 inconsistency check: true when this card reports
    /// more DBEs than SBEs — "Nvidia-smi reports a greater number of
    /// double bit errors than single bit errors for some cards".
    pub fn dbe_exceeds_sbe(&self) -> bool {
        self.total_dbe() > self.total_sbe()
    }
}

/// Fleet-wide rollup of a snapshot sweep, all sim-time counts. Like
/// `titan_conlog::SecStats` this is obs-independent data the
/// observability collector copies into the metrics document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetEccSummary {
    /// Snapshots in the sweep.
    pub snapshots: u64,
    /// Sum of aggregate SBEs across the fleet.
    pub total_sbe: u64,
    /// Sum of aggregate DBEs across the fleet.
    pub total_dbe: u64,
    /// Retired pages (double-bit cause) across the fleet.
    pub retired_pages_dbe: u64,
    /// Retired pages (two-SBE cause) across the fleet.
    pub retired_pages_sbe: u64,
    /// Cards showing the Observation 2 inversion (DBE > SBE).
    pub dbe_exceeds_sbe_cards: u64,
    /// Cards reporting at least one aggregate SBE.
    pub cards_with_sbe: u64,
    /// Cards reporting at least one aggregate DBE.
    pub cards_with_dbe: u64,
}

/// Folds a snapshot sweep into a [`FleetEccSummary`].
pub fn summarize(snapshots: &[GpuSnapshot]) -> FleetEccSummary {
    let mut s = FleetEccSummary {
        snapshots: snapshots.len() as u64,
        ..FleetEccSummary::default()
    };
    for snap in snapshots {
        let sbe = snap.total_sbe();
        let dbe = snap.total_dbe();
        s.total_sbe += sbe;
        s.total_dbe += dbe;
        s.retired_pages_dbe += snap.retired_pages.0 as u64;
        s.retired_pages_sbe += snap.retired_pages.1 as u64;
        if snap.dbe_exceeds_sbe() {
            s.dbe_exceeds_sbe_cards += 1;
        }
        if sbe > 0 {
            s.cards_with_sbe += 1;
        }
        if dbe > 0 {
            s.cards_with_dbe += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::PageAddress;

    fn card_with_history() -> GpuCard {
        let mut c = GpuCard::new(CardSerial(7));
        c.apply_sbe(MemoryStructure::L2Cache, None, true);
        c.apply_sbe(MemoryStructure::L2Cache, None, true);
        c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(3)), true);
        c.inforom.flush_sbe();
        c.apply_dbe(MemoryStructure::DeviceMemory, Some(PageAddress(9)), true, true);
        c
    }

    #[test]
    fn snapshot_reads_counters() {
        let c = card_with_history();
        let s = GpuSnapshot::take(NodeId(10), &c, 1000);
        assert_eq!(s.total_sbe(), 3);
        assert_eq!(s.total_dbe(), 1);
        assert_eq!(
            s.counts_for(MemoryStructure::L2Cache).unwrap().sbe,
            2
        );
        assert_eq!(
            s.counts_for(MemoryStructure::DeviceMemory).unwrap().dbe,
            1
        );
        assert_eq!(s.counts_for(MemoryStructure::ControlLogic), None);
        assert_eq!(s.retired_pages, (1, 0));
        assert!(!s.dbe_exceeds_sbe());
    }

    #[test]
    fn unpersisted_dbe_invisible_to_snapshot() {
        let mut c = GpuCard::new(CardSerial(1));
        c.apply_dbe(MemoryStructure::DeviceMemory, Some(PageAddress(1)), false, true);
        let s = GpuSnapshot::take(NodeId(0), &c, 0);
        assert_eq!(s.total_dbe(), 0, "lost InfoROM write must not appear");
        assert_eq!(c.lifetime_dbe, 1, "ground truth still knows");
    }

    #[test]
    fn observation2_inversion_detectable() {
        let mut c = GpuCard::new(CardSerial(2));
        c.apply_sbe(MemoryStructure::DeviceMemory, None, true);
        c.inforom.driver_reload(false); // crash loses the SBE
        c.apply_dbe(MemoryStructure::DeviceMemory, None, true, true);
        let s = GpuSnapshot::take(NodeId(0), &c, 0);
        assert!(s.dbe_exceeds_sbe());
    }

    #[test]
    fn fleet_summary_rolls_up_sweep() {
        let healthy = GpuCard::new(CardSerial(10));
        let mut inverted = GpuCard::new(CardSerial(11));
        inverted.apply_sbe(MemoryStructure::DeviceMemory, None, true);
        inverted.inforom.driver_reload(false); // crash loses the SBE
        inverted.apply_dbe(MemoryStructure::DeviceMemory, Some(PageAddress(4)), true, true);
        let sweep = vec![
            GpuSnapshot::take(NodeId(0), &card_with_history(), 5),
            GpuSnapshot::take(NodeId(1), &healthy, 5),
            GpuSnapshot::take(NodeId(2), &inverted, 5),
        ];
        let s = summarize(&sweep);
        assert_eq!(s.snapshots, 3);
        assert_eq!(s.total_sbe, 3);
        assert_eq!(s.total_dbe, 2);
        assert_eq!(s.retired_pages_dbe, 2);
        assert_eq!(s.dbe_exceeds_sbe_cards, 1);
        assert_eq!(s.cards_with_sbe, 1);
        assert_eq!(s.cards_with_dbe, 2);
        assert_eq!(summarize(&[]), FleetEccSummary::default());
    }

    #[test]
    fn volatile_vs_aggregate_split() {
        let mut c = GpuCard::new(CardSerial(3));
        c.apply_sbe(MemoryStructure::L2Cache, None, true);
        let s = GpuSnapshot::take(NodeId(0), &c, 0);
        // Pending-flush errors appear in both the volatile counter and
        // NVML's reported aggregate...
        assert_eq!(s.volatile[1].sbe, 1); // index 1 = L2 in ECC_COUNTED
        assert_eq!(s.aggregate[1].sbe, 1);
        // ...until a crash reload drops the pending part from both.
        c.inforom.driver_reload(false);
        let s = GpuSnapshot::take(NodeId(0), &c, 1);
        assert_eq!(s.volatile[1].sbe, 0);
        assert_eq!(s.aggregate[1].sbe, 0);
    }
}
