//! The before/after-job snapshot framework (§2.2, §4).
//!
//! "We have very recently developed a framework where we can take
//! nvidia-smi snapshots before and after each batch job. This helps in
//! identifying the single bit error counts, location and its correlation
//! with different types of jobs. … the SBE counts can not be collected on
//! a per aprun basis instead it is collected on a job basis since the
//! nvidia-smi output is run before and after the job script."

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use titan_gpu::MemoryStructure;
use titan_topology::NodeId;

use crate::snapshot::GpuSnapshot;

/// SBE delta attributed to one batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEccDelta {
    /// The job.
    pub apid: u64,
    /// Per-node SBE deltas (node, sbe gained during the job).
    pub per_node_sbe: Vec<(NodeId, u64)>,
    /// Per-structure SBE deltas in [`MemoryStructure::ECC_COUNTED`] order,
    /// summed over nodes.
    pub per_structure_sbe: Vec<u64>,
}

impl JobEccDelta {
    /// Total SBEs attributed to the job.
    pub fn total_sbe(&self) -> u64 {
        self.per_node_sbe.iter().map(|&(_, c)| c).sum()
    }

    /// Nodes that gained at least one SBE.
    pub fn affected_nodes(&self) -> usize {
        self.per_node_sbe.iter().filter(|&&(_, c)| c > 0).count()
    }

    /// SBE delta in one structure.
    pub fn structure_sbe(&self, s: MemoryStructure) -> u64 {
        MemoryStructure::ECC_COUNTED
            .iter()
            .position(|&m| m == s)
            .map_or(0, |i| self.per_structure_sbe[i])
    }
}

/// Pairs pre/post snapshots per job.
#[derive(Debug, Clone, Default)]
pub struct JobSnapshotFramework {
    pre: BTreeMap<u64, Vec<GpuSnapshot>>,
}

impl JobSnapshotFramework {
    /// Fresh framework.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the pre-job snapshots (one per allocated node, taken by
    /// the prologue).
    pub fn record_pre(&mut self, apid: u64, snapshots: Vec<GpuSnapshot>) {
        self.pre.insert(apid, snapshots);
    }

    /// Jobs with a pending prologue snapshot.
    pub fn pending(&self) -> usize {
        self.pre.len()
    }

    /// Consumes the post-job snapshots (epilogue) and produces the delta.
    /// Returns `None` when no prologue was recorded, or the node sets
    /// disagree (e.g. the job crashed nodes out from under the epilogue —
    /// real prologue/epilogue pairs do go missing).
    ///
    /// Deltas use *volatile + aggregate* totals and saturate at zero: a
    /// crash between the snapshots can reset volatile counters, which is
    /// exactly the undercount the paper describes.
    pub fn complete(&mut self, apid: u64, post: &[GpuSnapshot]) -> Option<JobEccDelta> {
        let pre = self.pre.remove(&apid)?;
        if pre.len() != post.len() {
            return None;
        }
        let mut per_node_sbe = Vec::with_capacity(pre.len());
        let mut per_structure_sbe = vec![0u64; MemoryStructure::ECC_COUNTED.len()];
        for (b, a) in pre.iter().zip(post) {
            if b.node != a.node {
                return None;
            }
            let mut node_total = 0u64;
            for i in 0..MemoryStructure::ECC_COUNTED.len() {
                // The snapshot's aggregate field is NVML's reported
                // (persisted + pending) count, so a plain difference is
                // the job's contribution; saturation covers the
                // crash-lost-pending undercount.
                let d = a.aggregate[i].sbe.saturating_sub(b.aggregate[i].sbe);
                node_total += d;
                per_structure_sbe[i] += d;
            }
            per_node_sbe.push((b.node, node_total));
        }
        Some(JobEccDelta {
            apid,
            per_node_sbe,
            per_structure_sbe,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::{CardSerial, GpuCard};

    fn snap(node: u32, card: &GpuCard, t: u64) -> GpuSnapshot {
        GpuSnapshot::take(NodeId(node), card, t)
    }

    #[test]
    fn delta_counts_sbes_during_job() {
        let mut fw = JobSnapshotFramework::new();
        let mut c0 = GpuCard::new(CardSerial(0));
        let mut c1 = GpuCard::new(CardSerial(1));
        // Pre-existing history on c0 that must NOT count.
        c0.apply_sbe(MemoryStructure::L2Cache, None, true);
        c0.inforom.flush_sbe();

        fw.record_pre(99, vec![snap(10, &c0, 100), snap(11, &c1, 100)]);
        assert_eq!(fw.pending(), 1);

        // During the job: two SBEs on c0, one on c1.
        c0.apply_sbe(MemoryStructure::L2Cache, None, true);
        c0.apply_sbe(MemoryStructure::DeviceMemory, None, true);
        c1.apply_sbe(MemoryStructure::RegisterFile, None, true);

        let d = fw
            .complete(99, &[snap(10, &c0, 200), snap(11, &c1, 200)])
            .unwrap();
        assert_eq!(d.total_sbe(), 3);
        assert_eq!(d.affected_nodes(), 2);
        assert_eq!(d.structure_sbe(MemoryStructure::L2Cache), 1);
        assert_eq!(d.structure_sbe(MemoryStructure::DeviceMemory), 1);
        assert_eq!(d.structure_sbe(MemoryStructure::RegisterFile), 1);
        assert_eq!(fw.pending(), 0);
    }

    #[test]
    fn missing_prologue_gives_none() {
        let mut fw = JobSnapshotFramework::new();
        let c = GpuCard::new(CardSerial(0));
        assert!(fw.complete(1, &[snap(0, &c, 10)]).is_none());
    }

    #[test]
    fn node_set_mismatch_gives_none() {
        let mut fw = JobSnapshotFramework::new();
        let c = GpuCard::new(CardSerial(0));
        fw.record_pre(1, vec![snap(0, &c, 10)]);
        assert!(fw.complete(1, &[snap(5, &c, 20)]).is_none());
        // And the pending entry is consumed either way.
        assert_eq!(fw.pending(), 0);
    }

    #[test]
    fn crash_reset_saturates_to_zero() {
        let mut fw = JobSnapshotFramework::new();
        let mut c = GpuCard::new(CardSerial(0));
        c.apply_sbe(MemoryStructure::L2Cache, None, true);
        fw.record_pre(1, vec![snap(0, &c, 10)]);
        // Crash loses the volatile SBE.
        c.inforom.driver_reload(false);
        let d = fw.complete(1, &[snap(0, &c, 20)]).unwrap();
        assert_eq!(d.total_sbe(), 0, "undercount, never underflow");
    }

    #[test]
    fn flush_between_snapshots_not_double_counted() {
        let mut fw = JobSnapshotFramework::new();
        let mut c = GpuCard::new(CardSerial(0));
        c.apply_sbe(MemoryStructure::L2Cache, None, true);
        fw.record_pre(1, vec![snap(0, &c, 10)]);
        // The same error flushes from volatile to aggregate mid-job:
        // total distinct errors unchanged.
        c.inforom.flush_sbe();
        let d = fw.complete(1, &[snap(0, &c, 20)]).unwrap();
        assert_eq!(d.total_sbe(), 0);
    }
}
