//! `nvidia-smi -q -d ECC,PAGE_RETIREMENT`-style text rendering and
//! parsing, so snapshot archives round-trip through the same text format
//! an operator's collection scripts would store.

use titan_gpu::MemoryStructure;
use titan_topology::NodeId;

use crate::snapshot::{EccCounts, GpuSnapshot};

/// Renders one GPU's ECC report.
pub fn render_ecc_report(s: &GpuSnapshot) -> String {
    let mut out = String::with_capacity(640);
    out.push_str(&format!(
        "==============NVSMI LOG==============\nTimestamp : {}\nNode : {}\nSerial Number : {}\n",
        s.taken_at,
        s.node.location().cname(),
        s.serial,
    ));
    out.push_str(&format!("GPU Current Temp : {} F\n", s.temperature_f));
    out.push_str("Ecc Errors\n");
    for (label, counts) in [("Volatile", &s.volatile), ("Aggregate", &s.aggregate)] {
        out.push_str(&format!("  {label}\n"));
        for (i, &m) in MemoryStructure::ECC_COUNTED.iter().enumerate() {
            out.push_str(&format!(
                "    {} : Single Bit {} : Double Bit {}\n",
                m.label(),
                counts[i].sbe,
                counts[i].dbe
            ));
        }
    }
    out.push_str(&format!(
        "Retired Pages\n  Double Bit ECC : {}\n  Single Bit ECC : {}\n",
        s.retired_pages.0, s.retired_pages.1
    ));
    out
}

/// Parses a [`render_ecc_report`] block back into a snapshot. Returns
/// `None` on any structural mismatch.
pub fn parse_ecc_report(text: &str) -> Option<GpuSnapshot> {
    let mut taken_at = None;
    let mut node = None;
    let mut serial = None;
    let mut volatile = Vec::new();
    let mut aggregate = Vec::new();
    let mut retired = (None, None);
    let mut temperature = None;
    let mut section = "";
    for line in text.lines() {
        let t = line.trim();
        if let Some(v) = t.strip_prefix("Timestamp : ") {
            taken_at = v.parse().ok();
        } else if let Some(v) = t.strip_prefix("Node : ") {
            node = titan_topology::Location::parse_cname(v).ok().map(|l| l.node_id());
        } else if let Some(v) = t.strip_prefix("Serial Number : ") {
            // Serial format: constant prefix "032351" + 7 digits.
            let digits = v.strip_prefix("032351")?;
            serial = digits.parse().ok().map(titan_gpu::CardSerial);
        } else if let Some(v) = t.strip_prefix("GPU Current Temp : ") {
            temperature = v.strip_suffix(" F").and_then(|x| x.parse().ok());
        } else if t == "Volatile" {
            section = "volatile";
        } else if t == "Aggregate" {
            section = "aggregate";
        } else if t == "Retired Pages" {
            section = "retired";
        } else if let Some(v) = t.strip_prefix("Double Bit ECC : ") {
            if section == "retired" {
                retired.0 = v.parse().ok();
            }
        } else if let Some(v) = t.strip_prefix("Single Bit ECC : ") {
            if section == "retired" {
                retired.1 = v.parse().ok();
            }
        } else if t.contains(" : Single Bit ") {
            let (_, rest) = t.split_once(" : Single Bit ")?;
            let (sbe, dbe) = rest.split_once(" : Double Bit ")?;
            let counts = EccCounts {
                sbe: sbe.trim().parse().ok()?,
                dbe: dbe.trim().parse().ok()?,
            };
            match section {
                "volatile" => volatile.push(counts),
                "aggregate" => aggregate.push(counts),
                _ => return None,
            }
        }
    }
    let n = MemoryStructure::ECC_COUNTED.len();
    if volatile.len() != n || aggregate.len() != n {
        return None;
    }
    Some(GpuSnapshot {
        node: node?,
        serial: serial?,
        taken_at: taken_at?,
        aggregate,
        volatile,
        retired_pages: (retired.0?, retired.1?),
        temperature_f: temperature?,
    })
}

/// Renders a fleet of snapshots separated by blank lines.
pub fn render_fleet(snaps: &[GpuSnapshot]) -> String {
    snaps
        .iter()
        .map(render_ecc_report)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parses a fleet archive; skips malformed blocks (operator scripts
/// truncate files at collection windows).
pub fn parse_fleet(text: &str) -> Vec<GpuSnapshot> {
    text.split("==============NVSMI LOG==============")
        .filter(|b| !b.trim().is_empty())
        .filter_map(parse_ecc_report)
        .collect()
}

/// Convenience: snapshot a card and render in one step.
pub fn report_for(node: NodeId, card: &titan_gpu::GpuCard, taken_at: u64) -> String {
    render_ecc_report(&GpuSnapshot::take(node, card, taken_at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use titan_gpu::{CardSerial, GpuCard, PageAddress};

    fn snapshot() -> GpuSnapshot {
        let mut c = GpuCard::new(CardSerial(321));
        c.apply_sbe(MemoryStructure::L2Cache, None, true);
        c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(5)), true);
        c.apply_sbe(MemoryStructure::DeviceMemory, Some(PageAddress(5)), true);
        c.inforom.flush_sbe();
        c.apply_dbe(MemoryStructure::RegisterFile, None, true, true);
        GpuSnapshot::take(NodeId(777), &c, 123_456)
    }

    #[test]
    fn report_mentions_structures_and_counts() {
        let text = render_ecc_report(&snapshot());
        assert!(text.contains("L2 Cache"), "{text}");
        assert!(text.contains("Device Memory"), "{text}");
        assert!(text.contains("Retired Pages"), "{text}");
        assert!(text.contains("Single Bit ECC : 1"), "{text}"); // 2-SBE page
    }

    #[test]
    fn roundtrip() {
        let s = snapshot();
        let text = render_ecc_report(&s);
        let back = parse_ecc_report(&text).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn fleet_roundtrip_with_garbage() {
        let a = snapshot();
        let mut b = snapshot();
        b.taken_at = 999;
        let mut text = render_fleet(&[a.clone(), b.clone()]);
        text.push_str("\n==============NVSMI LOG==============\ntruncated garbage\n");
        let parsed = parse_fleet(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], a);
        assert_eq!(parsed[1], b);
    }

    #[test]
    fn parse_rejects_missing_sections() {
        assert!(parse_ecc_report("").is_none());
        assert!(parse_ecc_report("Timestamp : 5\nNode : c0-0c0s0n0\n").is_none());
    }

    #[test]
    fn report_for_is_take_then_render() {
        let c = GpuCard::new(CardSerial(9));
        let text = report_for(NodeId(3), &c, 77);
        let s = parse_ecc_report(&text).unwrap();
        assert_eq!(s.serial, CardSerial(9));
        assert_eq!(s.total_sbe(), 0);
    }
}
