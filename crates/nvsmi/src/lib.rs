//! # titan-nvsmi
//!
//! Simulation of the `nvidia-smi` utility as the paper's second data
//! source (§2.2):
//!
//! > "In addition to console logs, the GPU errors were also collected by
//! > running nvidia-smi utility on all the GPU nodes. This is primarily
//! > because console logs do not capture the single bit error
//! > information. However, note that this utility is a snapshot
//! > information and doesn't timestamp all the single bit errors. …
//! > Furthermore, we have very recently developed a framework where we
//! > can take nvidia-smi snapshots before and after each batch job."
//!
//! Three faithful limitations:
//!
//! 1. snapshots expose *aggregate counters only* — no per-event
//!    timestamps;
//! 2. DBE counts read from the InfoROM can be lower than console-log
//!    counts (crash-before-persist, Observation 2);
//! 3. per-job SBE attribution works only at batch-job granularity, "not
//!    on a per aprun basis".
//!
//! * [`snapshot`] — point-in-time per-GPU ECC readings.
//! * [`jobdiff`] — the before/after-job snapshot framework.
//! * [`render`] — `nvidia-smi -q -d ECC`-style text output and parser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jobdiff;
pub mod render;
pub mod snapshot;

pub use jobdiff::{JobEccDelta, JobSnapshotFramework};
pub use render::{parse_ecc_report, render_ecc_report};
pub use snapshot::{summarize, EccCounts, FleetEccSummary, GpuSnapshot};
