//! Online/offline estimator equivalence: the streaming statistics the
//! `HealthSink` maintains must agree with the batch estimators in
//! `titan-analysis` when fed the same time-sorted event list.
//!
//! The online stripe score keeps the event-weighted contrast numerator
//! as an exact integer (`n·(|even−odd|/n)` collapses to `|even−odd|`),
//! while the offline `incident_stripe` accumulates the per-incident
//! float terms — so contrast/null are compared with a tight epsilon and
//! incident counts exactly.

use titan_analysis::spatial::{incident_stripe, spatial_grid};
use titan_gpu::GpuErrorKind;
use titan_obs::{parse_health, HealthEvent, HealthRec, HealthSink};
use titan_topology::{NodeId, COLS, ROWS, TOTAL_SLOTS};

const GEE: GpuErrorKind = GpuErrorKind::GraphicsEngineException;
const GEE_CLASS: &str = "graphics_engine_exception";
/// Must match the sink's `STRIPE_WINDOW_SECS`.
const WINDOW_SECS: u64 = 5;

/// Deterministic xorshift so the synthetic event list is stable across
/// runs and platforms (no `rand` dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Time-sorted GEE console events with a mix of tight bursts (same
/// incident under the 5 s window) and lone events (their own
/// incidents), over pseudo-random node slots.
fn synthetic_events(seed: u64, n: usize) -> Vec<titan_conlog::ConsoleEvent> {
    let mut rng = Lcg(seed | 1);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // ~40% of events arrive within the incident window of the
        // previous one; the rest open a new incident.
        let gap = if rng.next() % 10 < 4 {
            rng.next() % WINDOW_SECS
        } else {
            WINDOW_SECS + rng.next() % 900
        };
        t += gap;
        let node = NodeId((rng.next() % TOTAL_SLOTS as u64) as u32);
        out.push(titan_conlog::ConsoleEvent {
            time: t,
            node,
            kind: GEE,
            structure: None,
            page: None,
            apid: None,
        });
    }
    out
}

/// Feeds the same events to a `HealthSink` the way the engine does
/// (tick with the loop clock, then the console hook) and returns the
/// rendered document.
fn run_sink(events: &[titan_conlog::ConsoleEvent]) -> titan_obs::HealthDoc {
    let mut sink = HealthSink::new(true);
    for ev in events {
        sink.tick(ev.time);
        let loc = ev.node.location();
        sink.on_console(HealthEvent {
            t: ev.time,
            class: GEE_CLASS,
            hardware: true,
            row: loc.row,
            col: loc.col,
            cage: loc.cage,
            trace: 0,
        });
    }
    let t_end = events.last().map_or(0, |e| e.time) + 1;
    sink.finish(t_end);
    parse_health(&sink.render_jsonl(7, 1)).expect("rendered doc parses")
}

#[test]
fn online_stripe_matches_incident_stripe() {
    for (seed, n) in [(0xC0FFEE, 500), (42, 2000), (9_999, 37)] {
        let events = synthetic_events(seed, n);
        let doc = run_sink(&events);
        let summary = doc.summary.expect("summary present");
        let offline = incident_stripe(&events, GEE, WINDOW_SECS).expect("events exist");

        assert_eq!(
            summary.stripe_incidents, offline.incidents,
            "incident count diverged (seed {seed}, n {n})"
        );
        assert!(
            (summary.stripe_contrast - offline.contrast).abs() < 1e-12,
            "contrast diverged (seed {seed}): online {} offline {}",
            summary.stripe_contrast,
            offline.contrast
        );
        assert!(
            (summary.stripe_null - offline.null).abs() < 1e-12,
            "null diverged (seed {seed}): online {} offline {}",
            summary.stripe_null,
            offline.null
        );
    }
}

#[test]
fn online_heat_grid_matches_spatial_grid() {
    let events = synthetic_events(0xBEEF, 1200);
    let doc = run_sink(&events);
    let last = doc
        .records
        .iter()
        .rev()
        .find_map(|r| match r {
            HealthRec::Interval { v } => Some(v),
            HealthRec::Alert { .. } => None,
        })
        .expect("at least one interval");
    let grid = spatial_grid(&events, GEE, false);
    assert_eq!(last.heat_cells.len(), ROWS * COLS);
    for r in 0..ROWS {
        for c in 0..COLS {
            let online = last.heat_cells[r * COLS + c];
            let offline = grid.get(r, c);
            assert!(
                (online as f64 - offline).abs() < f64::EPSILON,
                "cell ({r},{c}) diverged: online {online} offline {offline}"
            );
        }
    }
    // Total heat equals the event count — nothing dropped or double
    // counted by either path.
    let total: u64 = last.heat_cells.iter().sum();
    assert_eq!(total as usize, events.len());
}

#[test]
fn single_event_incidents_have_unit_contrast_and_null() {
    // Lone events: every incident has n = 1, so contrast collapses to
    // exactly 1.0 and the size-matched null to √(2/π) in both
    // estimators.
    let events: Vec<_> = (0..50u64)
        .map(|i| titan_conlog::ConsoleEvent {
            time: i * 100,
            node: NodeId((i * 37 % TOTAL_SLOTS as u64) as u32),
            kind: GEE,
            structure: None,
            page: None,
            apid: None,
        })
        .collect();
    let doc = run_sink(&events);
    let summary = doc.summary.expect("summary present");
    let offline = incident_stripe(&events, GEE, WINDOW_SECS).expect("events exist");
    assert_eq!(summary.stripe_incidents, 50);
    assert_eq!(offline.incidents, 50);
    let unit_null = (2.0 / std::f64::consts::PI).sqrt();
    assert_eq!(summary.stripe_contrast, 1.0);
    assert!((summary.stripe_null - unit_null).abs() < 1e-12);
    assert_eq!(offline.contrast, 1.0);
    assert!((offline.null - unit_null).abs() < 1e-12);
}
